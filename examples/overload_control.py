#!/usr/bin/env python
"""Quickstart: overload control — shedding, credits, breakers, the governor.

The paper measures a *closed* loop: the stencil offers exactly as much
work as the machine absorbs.  This example opens the loop — tasks arrive
on a virtual-time schedule whether or not the runtime keeps up — and
walks the four overload-control layers of :mod:`repro.overload`:

1. **admission control**: an unbounded runtime accepts every task, so its
   completion time diverges with offered load; a bounded queue with the
   ``shed`` policy rejects the excess with a typed ``TaskShedError`` and
   keeps goodput at the capacity plateau;
2. **credit-based flow control**: per-destination sender windows bound
   in-flight parcels on the distributed stencil's halo exchange;
3. **circuit breakers**: on a link degraded 60x, the breaker opens after
   a few consecutive ack-timeouts and parks traffic instead of feeding
   the retransmission storm;
4. **the governor**: under sustained 3x overload it watches idle-rate
   (Eq. 1), overhead ratio and queue depth, coarsens the grain between
   epochs, and drives goodput to a plateau fine grain never reaches.

Run: ``python examples/overload_control.py``
"""

from repro.apps.stencil1d_dist import DistStencilConfig, run_dist_stencil
from repro.dist import DistConfig, FaultPlan, RetryParams
from repro.faults.plan import LinkDegradation
from repro.overload import (
    AdmissionParams,
    BreakerParams,
    CreditParams,
    GovernorSignals,
    OverloadConfig,
    OverloadGovernor,
)
from repro.overload.workload import OfferedLoad, run_offered_load
from repro.runtime.runtime import RuntimeConfig

NUM_CORES = 8
WINDOW_NS = 300_000  # open-loop arrival window
STENCIL = DistStencilConfig(
    total_points=16_384,
    partition_points=1_024,
    time_steps=8,
    decomposition="cyclic",  # every halo crosses the network
)


def offered(utilization, *, grain_ns=2_500, admission=None, seed=0):
    config = RuntimeConfig(
        platform="haswell",
        num_cores=NUM_CORES,
        seed=seed,
        overload=OverloadConfig(admission=admission) if admission else None,
    )
    load = OfferedLoad.at_utilization(
        utilization, grain_ns=grain_ns, num_cores=NUM_CORES, window_ns=WINDOW_NS
    )
    return run_offered_load(config, load)


def admission_demo() -> None:
    print("== admission control: divergence vs a typed bound ==")
    shed_params = AdmissionParams(max_depth=64, policy="shed")
    for utilization in (1.0, 4.0):
        unbounded = offered(utilization)
        shed = offered(utilization, admission=shed_params)
        print(
            f"offered {utilization:.0f}x capacity: "
            f"unbounded t={unbounded.result.execution_time_ns / 1e3:7.1f} us"
            f"  |  shed t={shed.result.execution_time_ns / 1e3:7.1f} us, "
            f"completed {shed.completed}/{shed.offered}, "
            f"shed {shed.shed} (peak depth "
            f"{shed.result.peak_queue_depth:.0f} <= 64)"
        )
    print(
        "the unbounded runtime's completion time diverges with load; "
        "shedding keeps it pinned near the arrival window"
    )


def credit_demo() -> None:
    print("\n== credit-based flow control on the halo exchange ==")

    def stencil(overload=None):
        config = DistConfig(
            num_localities=2,
            cores_per_locality=4,
            retry=RetryParams(max_retries=8),
            overload=overload,
        )
        result = run_dist_stencil(config, STENCIL).result
        result.assert_parcels_conserved()
        return result

    baseline = stencil()
    credited = stencil(OverloadConfig(credits=CreditParams(window=4)))
    print(
        f"uncontrolled: {baseline.max_unacked_in_flight} unacked parcels in "
        f"flight at peak; window=4: {credited.max_unacked_in_flight} "
        f"({credited.sends_deferred} sends parked "
        f"{credited.credits_exhausted_ns / 1e3:.1f} us total)"
    )


def breaker_demo() -> None:
    print("\n== circuit breaker on a 60x-degraded link ==")
    degraded = FaultPlan(
        degradations=(
            LinkDegradation(
                start_ns=50_000, end_ns=3_050_000, latency_factor=60.0,
                src=0, dst=1,
            ),
        )
    )

    def stencil(overload=None):
        config = DistConfig(
            num_localities=2,
            cores_per_locality=4,
            retry=RetryParams(max_retries=8),
            faults=degraded,
            overload=overload,
        )
        result = run_dist_stencil(config, STENCIL).result
        result.assert_parcels_conserved()
        return result

    storm = stencil()
    capped = stencil(
        OverloadConfig(
            breaker=BreakerParams(failure_threshold=2, cooldown_ns=400_000)
        )
    )
    print(
        f"retransmissions into the dead window: {storm.parcels_retransmitted} "
        f"without a breaker, {capped.parcels_retransmitted} with one "
        f"({capped.breaker_transitions} breaker transitions)"
    )


def governor_demo() -> None:
    print("\n== the governor: graceful degradation under 3x overload ==")
    governor = OverloadGovernor(grain_ns=1_000)
    shed_params = AdmissionParams(max_depth=64, policy="shed")
    final = None
    for epoch in range(6):
        out = offered(
            3.0, grain_ns=governor.grain_ns, admission=shed_params, seed=epoch
        )
        action = governor.observe(GovernorSignals.from_run(out.result))
        print(
            f"epoch {epoch}: grain {action.grain_ns:>5} ns, "
            f"goodput {out.goodput:.2f}, action {action.kind}"
        )
        final = out
    baseline = offered(3.0, grain_ns=1_000, admission=shed_params)
    print(
        f"goodput plateaus at {final.goodput:.2f} under the governor vs "
        f"{baseline.goodput:.2f} stuck at fine grain"
    )


def main() -> None:
    admission_demo()
    credit_demo()
    breaker_demo()
    governor_demo()


if __name__ == "__main__":
    main()
