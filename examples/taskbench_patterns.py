#!/usr/bin/env python
"""Task Bench in five minutes: patterns, METG, and distributed lowering.

A :class:`repro.taskbench.TaskBenchSpec` is a ``width x steps`` grid of
tasks plus a *dependence pattern* naming which previous-step columns feed
each task.  The same spec lowers onto every runtime in the repo; this
example:

1. runs two patterns (``trivial`` and ``stencil_1d``) on the simulated
   single-node :class:`repro.runtime.Runtime` and compares their idle-rate
   at the same grain — dependence structure alone costs efficiency;
2. measures METG(50%) for both: the minimum task grain at which the
   runtime still spends half the core-time budget inside task bodies
   (efficiency is literally ``1 - idle-rate``, the paper's Eq. 1);
3. lowers the ``fft`` butterfly onto the multi-locality
   :class:`repro.dist.DistRuntime`, where cross-locality edges become
   parcels you can count.

Run: ``python examples/taskbench_patterns.py``
"""

from repro.dist import DistConfig
from repro.runtime.runtime import RuntimeConfig
from repro.taskbench import (
    TaskBenchSpec,
    metg,
    run_taskbench,
    run_taskbench_dist,
)

WIDTH = 64
STEPS = 16
CORES = 8
GRAIN_NS = 2_000


def single_node_demo() -> None:
    print("== two patterns on the single-node runtime ==")
    config = RuntimeConfig(platform="haswell", num_cores=CORES, seed=0)
    for pattern in ("trivial", "stencil_1d"):
        spec = TaskBenchSpec(pattern=pattern, width=WIDTH, steps=STEPS)
        result = run_taskbench(config, spec.with_grain(GRAIN_NS))
        print(
            f"{pattern:12s} {spec.total_tasks} tasks @ {GRAIN_NS} ns: "
            f"time {result.execution_time_ns / 1e6:.3f} ms, "
            f"idle-rate {result.idle_rate:.3f}"
        )


def metg_demo() -> None:
    print()
    print("== METG(50%): the grain where efficiency crosses one half ==")
    for pattern in ("trivial", "stencil_1d"):
        spec = TaskBenchSpec(pattern=pattern, width=WIDTH, steps=STEPS)
        result = metg(spec, num_cores=CORES, seed=0)
        print(f"{result.summary()} ns")
    print("the dependence-free pattern tolerates the finest grain")


def distributed_demo() -> None:
    print()
    print("== the fft butterfly across 4 localities ==")
    spec = TaskBenchSpec(pattern="fft", width=WIDTH, steps=STEPS)
    config = DistConfig(
        num_localities=4, platform="haswell", cores_per_locality=2, seed=0
    )
    for placement in ("block", "cyclic"):
        result = run_taskbench_dist(config, spec, placement=placement)
        result.assert_parcels_conserved()
        print(
            f"{placement:7s} placement: parcels sent "
            f"{result.parcels_sent}, idle-rate {result.idle_rate:.3f}"
        )
    print("every cross-locality edge shipped exactly one parcel")


def main() -> None:
    single_node_demo()
    metg_demo()
    distributed_demo()


if __name__ == "__main__":
    main()
