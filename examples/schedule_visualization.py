#!/usr/bin/env python
"""Schedule visualization: traces, Gantt charts, and critical paths.

Runs HPX-Stencil twice on a simulated 8-core Haswell node — once at a good
grain and once far too coarse — with execution tracing enabled, then shows
what the counters cannot: *where* the time goes on each worker, how the
concurrency profile collapses under starvation, and how close each schedule
comes to its critical-path lower bound.

Run: ``python examples/schedule_visualization.py``
"""

from repro.apps.stencil1d import StencilConfig, build_stencil_graph
from repro.core.timeline import (
    average_concurrency,
    critical_path_ns,
    render_gantt,
    wave_count,
    worker_utilization,
)
from repro.runtime.runtime import Runtime, RuntimeConfig

CORES = 8
TOTAL_POINTS = 1 << 18
TIME_STEPS = 6


def show(partition_points: int, label: str) -> None:
    rt = Runtime(
        RuntimeConfig(platform="haswell", num_cores=CORES, seed=11, trace=True)
    )
    cfg = StencilConfig(
        total_points=TOTAL_POINTS,
        partition_points=partition_points,
        time_steps=TIME_STEPS,
    )
    build_stencil_graph(rt, cfg)
    result = rt.run()
    trace = rt.trace
    assert trace is not None and trace.validate() == []

    print(f"=== {label}: partition={partition_points} "
          f"({cfg.num_partitions} partitions/step) ===")
    print(render_gantt(trace, width=96))
    print(f"makespan:            {result.execution_time_s * 1e3:9.3f} ms")
    print(f"critical path:       {critical_path_ns(trace) / 1e6:9.3f} ms "
          f"({critical_path_ns(trace) / trace.finish_ns:.0%} of makespan)")
    print(f"avg concurrency:     {average_concurrency(trace):9.2f} of {CORES}")
    print(f"waves (>=50% busy):  {wave_count(trace):9d}")
    print(f"steals:              {len(trace.steals):9d}")
    worst = min(worker_utilization(trace), key=lambda u: u.exec_fraction)
    best = max(worker_utilization(trace), key=lambda u: u.exec_fraction)
    print(f"worker exec range:   {worst.exec_fraction:.0%} (w{worst.worker}) "
          f".. {best.exec_fraction:.0%} (w{best.worker})")
    print()


if __name__ == "__main__":
    show(partition_points=4096, label="well-chosen grain")
    show(partition_points=TOTAL_POINTS // 4, label="too coarse (starved)")
