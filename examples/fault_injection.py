#!/usr/bin/env python
"""Quickstart: deterministic fault injection and the resilient parcelport.

A :class:`repro.faults.FaultPlan` declares everything that goes wrong in a
distributed run — parcel drops, duplicates, doomed parcels, degraded links,
stragglers, crashes — all derived from one seed, so the same plan replays
the same fault schedule bit-for-bit.  This example:

1. runs the distributed stencil over a lossy network with the reliable
   (ack/timeout/retransmit) transport and reads the fault counters back;
2. shows the typed failure modes: a lost parcel raises
   :class:`repro.dist.ParcelLostError` naming the parcel and link, and a
   crashed locality raises :class:`repro.dist.LocalityCrashError` — never a
   silent hang;
3. recovers from unrecoverable parcel loss by re-executing the producer
   and proves the answer still matches the serial reference.

Run: ``python examples/fault_injection.py``
"""

import numpy as np

from repro.apps.stencil1d import initial_condition, serial_reference
from repro.apps.stencil1d_dist import DistStencilConfig, run_dist_stencil
from repro.dist import (
    CrashAt,
    DistConfig,
    FaultPlan,
    LocalityCrashError,
    ParcelLostError,
    RetryParams,
)

STENCIL = DistStencilConfig(
    total_points=1 << 12,
    partition_points=256,
    time_steps=4,
    validate=True,
    decomposition="cyclic",  # every halo crosses the network
)


def lossy_network_demo() -> None:
    print("== reliable transport over a lossy network ==")
    config = DistConfig(
        num_localities=4,
        cores_per_locality=4,
        seed=3,
        faults=FaultPlan(seed=7, drop_rate=0.05, duplicate_rate=0.02),
        retry=RetryParams(max_retries=4),
    )
    result = run_dist_stencil(config, STENCIL).result
    result.assert_parcels_conserved()
    print(
        f"parcels sent={result.parcels_sent} "
        f"dropped={result.parcels_dropped} "
        f"retransmitted={result.parcels_retransmitted} "
        f"duplicates discarded={result.duplicates_discarded}"
    )
    print(
        "parcel conservation holds: sent + retransmitted == "
        "received + dropped + duplicates"
    )
    print(
        f"cumulative retry backoff: {result.retry_backoff_ns / 1e3:.1f} us "
        f"across all parcels (run took "
        f"{result.execution_time_ns / 1e3:.1f} us virtual)"
    )


def typed_failure_demo() -> None:
    print("\n== typed failures instead of silent hangs ==")
    # Every 11th parcel is doomed: all its transmissions die, so the retry
    # budget runs out and the consuming future carries the error.
    doomed = DistConfig(
        num_localities=4,
        cores_per_locality=4,
        seed=3,
        faults=FaultPlan(seed=1, doom_every=11),
        retry=RetryParams(max_retries=2),
    )
    try:
        run_dist_stencil(doomed, STENCIL)
    except ParcelLostError as err:
        print(f"ParcelLostError: {err}")

    crashing = DistConfig(
        num_localities=4,
        cores_per_locality=4,
        seed=3,
        faults=FaultPlan(crashes=(CrashAt(2, 50_000),)),
    )
    try:
        run_dist_stencil(crashing, STENCIL)
    except LocalityCrashError as err:
        print(f"LocalityCrashError: {err}")


def recovery_demo() -> None:
    print("\n== recovery by producer re-execution ==")
    config = DistConfig(
        num_localities=4,
        cores_per_locality=4,
        seed=3,
        faults=FaultPlan(seed=1, doom_every=11),
        retry=RetryParams(max_retries=2),
        recovery="reexecute",
        max_recoveries=8,
    )
    outcome = run_dist_stencil(config, STENCIL)
    result = outcome.result
    expected = serial_reference(
        initial_condition(STENCIL.total_points),
        STENCIL.time_steps,
        STENCIL.heat_coefficient,
    )
    ok = np.allclose(outcome.final_array(), expected)
    print(
        f"parcels recovered={result.parcels_recovered} "
        f"(recovery cost {result.recovery_ns / 1e3:.1f} us)"
    )
    print(f"result matches serial reference: {ok}")


if __name__ == "__main__":
    lossy_network_demo()
    typed_failure_demo()
    recovery_demo()
