#!/usr/bin/env python
"""Quickstart: deadlines, priority inversion, and grain as preemption.

``repro.rt`` restates the paper's task-size trade-off in timeliness
units: a periodic/sporadic task set runs on the simulated HPX runtime,
each released job executes as a *chain* of subtasks, and the subtask
grain is the preemption granularity — cooperative tasks yield only at
chunk boundaries.  Three demos:

1. the deadline-miss-rate U: too-fine grains drown in per-chunk
   task-management overhead, too-coarse grains leave the urgent task
   stuck behind whole in-flight jobs — and the valley moves coarser
   when overhead grows;
2. priority inversion made observable, then bounded: protocol ``none``
   lets a LOW-priority holder starve while the urgent task's wait
   exceeds its whole deadline budget; ``inherit`` boosts (and
   re-queues) the holder; ``ceiling`` prevents the inversion outright;
3. the deterministic ledger: released == on-time + missed per task,
   and the whole window reruns bit-identically.

Run: ``python examples/realtime_tasks.py``
"""

from repro.rt import (
    PeriodicTaskSpec,
    RtServiceConfig,
    SporadicTaskSpec,
    TaskSet,
    run_rt_service,
)

NUM_CORES = 2
WINDOW_NS = 2_400_000
#: the urgent task's whole deadline budget: a longer blocked wait is,
#: by itself, a guaranteed miss
INVERSION_THRESHOLD_NS = 48_000


def taskset() -> TaskSet:
    """An urgent controller sharing a bus with a low-rate logger, plus
    two heavy in-phase spinners keeping both cores busy."""
    return TaskSet(
        seed=3,
        tasks=(
            SporadicTaskSpec(
                name="ctrl", wcet_ns=12_000, relative_deadline_ns=48_000,
                min_separation_ns=100_000, resource="bus",
                critical_section_ns=4_000,
            ),
            PeriodicTaskSpec(
                name="spin-a", wcet_ns=104_000, relative_deadline_ns=640_000,
                period_ns=160_000, exec_variation=0.15,
            ),
            PeriodicTaskSpec(
                name="spin-b", wcet_ns=104_000, relative_deadline_ns=640_000,
                period_ns=160_000, exec_variation=0.15,
            ),
            PeriodicTaskSpec(
                name="logger", wcet_ns=40_000, relative_deadline_ns=800_000,
                period_ns=320_000, phase_ns=4_000, resource="bus",
                critical_section_ns=24_000,
            ),
        ),
    )


def cell(grain_ns, *, overhead_factor=1.0, protocol="inherit"):
    return run_rt_service(
        taskset().with_grain(grain_ns),
        RtServiceConfig(
            num_cores=NUM_CORES,
            seed=1,
            window_ns=WINDOW_NS,
            protocol=protocol,
            scheduler="rm",
            overhead_factor=overhead_factor,
            inversion_threshold_ns=INVERSION_THRESHOLD_NS,
        ),
    )


def miss_rate_vs_grain_demo() -> None:
    print("== the deadline-miss-rate U, and how overhead moves it ==")
    grains = (2_000, 8_000, 32_000, 128_000)
    for factor in (1.0, 16.0):
        rates = {g: cell(g, overhead_factor=factor).miss_rate()
                 for g in grains}
        row = "  ".join(f"{g // 1000:>3}us:{rates[g]:6.1%}" for g in grains)
        best = min(grains, key=lambda g: (rates[g], g))
        print(f"overhead x{factor:<4g} {row}   best grain {best // 1000} us")
    print("finer is not safer: each chunk pays management overhead, so")
    print("the x16 regime pushes the best grain coarser")


def inversion_demo() -> None:
    print("\n== priority inversion: observed, bounded, prevented ==")
    for protocol in ("none", "inherit", "ceiling"):
        out = cell(8_000, protocol=protocol)
        res = out.resources
        ctrl = out.stats_for("ctrl")
        print(
            f"{protocol:>8}: max blocked {res.max_blocked_ns / 1e3:7.1f} us "
            f"(budget {INVERSION_THRESHOLD_NS / 1e3:.0f} us), "
            f"inversions {res.inversions}, boosts {res.inheritance_boosts}, "
            f"ctrl misses {ctrl.missed}/{ctrl.released}"
        )
    print("'none' blocks the controller past its whole deadline budget;")
    print("inheritance re-queues the boosted holder at the next chunk")
    print("boundary, the ceiling never lets the inversion begin")


def ledger_demo() -> None:
    print("\n== the deadline ledger is conserved and deterministic ==")
    first = cell(8_000)
    for index, spec in enumerate(first.taskset.tasks):
        s = first.stats[index]
        print(
            f"{spec.name:>8}: released {s.released:>2}  on-time "
            f"{s.on_time:>2}  missed {s.missed}  p99 tardiness "
            f"{s.tardiness_p(0.99) / 1e3:6.1f} us"
        )
    print(f"released == on-time + missed per task: {first.conserved()}")
    second = cell(8_000)
    identical = (
        first.missed_jobs() == second.missed_jobs()
        and first.result.execution_time_ns == second.result.execution_time_ns
        and first.result.counters.values == second.result.counters.values
    )
    print(f"reruns bit-identical (miss sets, time, counters): {identical}")


if __name__ == "__main__":
    miss_rate_vs_grain_demo()
    inversion_demo()
    ledger_demo()
