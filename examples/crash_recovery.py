#!/usr/bin/env python
"""Quickstart: surviving a locality crash with checkpoint/restart.

``DistConfig(crash_recovery=RecoveryConfig(...))`` arms three mechanisms
on top of the fault injector of ``examples/fault_injection.py``:

1. a deterministic heartbeat failure detector riding the parcel network —
   survivors declare a silent locality dead after a few missed heartbeats
   (and per-link threshold adaptation keeps a merely *slow* straggler from
   being declared dead);
2. periodic per-locality checkpoints of completed task results into a
   survivor-replicated store, costed through the network model;
3. on declaration: AGAS addresses re-home to survivors, checkpointed
   results restore from the replica, and uncheckpointed (lost) work
   re-executes from recorded lineage — completing the run with values
   bit-identical to a crash-free one.

Run: ``python examples/crash_recovery.py``
"""

from repro.dist import (
    CrashAt,
    DistConfig,
    DistRuntime,
    FaultPlan,
    RecoveryConfig,
    RetryParams,
    Straggler,
    UnrecoverableCrashError,
)
from repro.runtime.work import FixedWork

LOCALITIES = 4
STEPS = 8
GRAIN_NS = 120_000


def build_ring(runtime: DistRuntime):
    """Each step consumes a locality's own and its right neighbour's
    previous result — a crash always kills work the survivors need."""
    prev = [
        runtime.make_ready_future(float(i), locality=i, name=f"root{i}")
        for i in range(LOCALITIES)
    ]
    for step in range(STEPS):
        prev = [
            runtime.dataflow(
                (
                    lambda a, b, step=step, i=i:
                    a * 0.5 + b * 0.25 + step + i * 0.125
                ),
                [prev[i], prev[(i + 1) % LOCALITIES]],
                locality=i,
                work=FixedWork(GRAIN_NS),
                name=f"s{step}l{i}",
            )
            for i in range(LOCALITIES)
        ]
    return prev


def run_ring(config: DistConfig):
    runtime = DistRuntime(config)
    finals = build_ring(runtime)
    result = runtime.wait(finals)
    return result, [f.value for f in finals]


def base_config(**overrides) -> DistConfig:
    defaults = dict(
        num_localities=LOCALITIES,
        cores_per_locality=2,
        seed=7,
        retry=RetryParams(),
    )
    defaults.update(overrides)
    return DistConfig(**defaults)


def survive_a_crash_demo(crash_ns: int, clean_values: list) -> None:
    print("== surviving a mid-run locality crash ==")
    result, values = run_ring(
        base_config(
            faults=FaultPlan(seed=7, crashes=(CrashAt(3, crash_ns),)),
            crash_recovery=RecoveryConfig(checkpoint_interval_ns=200_000),
        )
    )
    result.assert_parcels_conserved()
    print(
        f"locality 3 crashed at {crash_ns / 1e3:.0f} us; detected after "
        f"{result.detection_ns / 1e3:.1f} us "
        f"({result.heartbeats_sent} heartbeats exchanged)"
    )
    print(
        f"checkpoints: {result.checkpoints_taken} ticks made "
        f"{result.tasks_checkpointed} results durable; at the crash "
        f"{result.tasks_restored} restored, {result.tasks_lost} lost"
    )
    print(
        f"lost work re-executed from lineage: {result.tasks_reexecuted} "
        f"task(s) (== lost: {result.tasks_reexecuted == result.tasks_lost})"
    )
    print(
        "time-to-recover "
        f"{result.recovery_total_ns / 1e3:.1f} us = detection "
        f"{result.detection_ns / 1e3:.1f} + restore "
        f"{result.restore_ns / 1e3:.1f} + re-execution "
        f"{result.reexecution_ns / 1e3:.1f}"
    )
    print(
        "recovered values bit-identical to the crash-free run: "
        f"{values == clean_values}"
    )


def slow_is_not_dead_demo() -> None:
    print("\n== slow is not dead: the detector ignores a straggler ==")
    result, _ = run_ring(
        base_config(
            faults=FaultPlan(seed=7, stragglers=(Straggler(2, 4.0),)),
            crash_recovery=RecoveryConfig(checkpoint_interval_ns=200_000),
        )
    )
    print(
        "locality 2 ran 4x slow; false positives: "
        f"{result.crashes_detected} (per-link max-gap adaptation keeps "
        "its heartbeat threshold proportionally lax)"
    )


def budget_demo(crash_ns: int) -> None:
    print("\n== the crash budget is typed, not a hang ==")
    config = base_config(
        faults=FaultPlan(
            seed=7,
            crashes=(CrashAt(1, crash_ns // 2), CrashAt(3, crash_ns)),
        ),
        crash_recovery=RecoveryConfig(checkpoint_interval_ns=200_000),
    )
    try:
        run_ring(config)
    except UnrecoverableCrashError as err:
        print(f"UnrecoverableCrashError: {err}")


if __name__ == "__main__":
    clean_result, clean_values = run_ring(base_config())
    survive_a_crash_demo(clean_result.execution_time_ns // 2, clean_values)
    slow_is_not_dead_demo()
    budget_demo(clean_result.execution_time_ns // 2)
