#!/usr/bin/env python
"""Quickstart: the multi-locality runtime (repro.dist) in five minutes.

A :class:`repro.dist.DistRuntime` composes N simulated localities — each a
full single-node runtime with its own scheduler, cores and counters — over
one virtual clock, connected by a modelled network (latency, bandwidth,
serialization) and an AGAS-lite gid resolver.  This example:

1. places work explicitly and ships a future's value across localities;
2. runs the distributed heat stencil with halo-exchange parcels and reads
   the HPX-style ``/parcels{locality#N/total}`` counters back per locality;
3. shows the figD headline effect in miniature: the same problem at 1 and
   8 localities, with the best grain moving coarser.

Run: ``python examples/distributed_stencil.py``
"""

from repro.apps.stencil1d_dist import DistStencilConfig, run_dist_stencil
from repro.dist import DistConfig, DistRuntime
from repro.runtime.work import FixedWork

TOTAL_POINTS = 1 << 20
TIME_STEPS = 3


def placement_demo() -> None:
    print("== explicit placement and one parcel ==")
    dist = DistRuntime(num_localities=2, cores_per_locality=4, seed=7)

    # Work lands on the locality you name; futures remember their home.
    left = dist.async_(
        lambda: 21, locality=0, work=FixedWork(5_000), name="left"
    )
    # A dataflow on locality 1 may depend on locality 0's future: the
    # dependency is shipped as a parcel when it becomes ready.
    doubled = dist.dataflow(
        lambda x: 2 * x, [left], locality=1, work=FixedWork(5_000), name="x2"
    )
    result = dist.run()

    print("answer computed on locality 1:", doubled.value)
    print(f"virtual execution time: {result.execution_time_ns / 1e3:.1f} us")
    print(
        f"parcels sent={result.parcels_sent} "
        f"received={result.parcels_received} "
        f"(serialization {result.serialization_time_ns / 1e3:.1f} us, "
        f"network wait {result.network_wait_ns / 1e3:.1f} us)"
    )


def stencil_demo() -> None:
    print("\n== distributed heat stencil, per-locality counters ==")
    outcome = run_dist_stencil(
        DistConfig(num_localities=4, cores_per_locality=8, seed=0),
        DistStencilConfig(
            total_points=TOTAL_POINTS,
            partition_points=8_192,
            time_steps=TIME_STEPS,
        ),
    )
    result = outcome.result
    print(f"execution time: {result.execution_time_s * 1e3:.3f} ms")
    print(
        f"idle-rate {result.idle_rate:.1%} = overhead "
        f"{result.overhead_idle_rate:.1%} + network wait "
        f"{result.network_wait_rate:.1%} + starvation (rest)"
    )
    for loc in range(result.num_localities):
        sent = result.counters.get(
            f"/parcels{{locality#{loc}/total}}/count/sent"
        )
        received = result.counters.get(
            f"/parcels{{locality#{loc}/total}}/count/received"
        )
        hits = result.counters.get(
            f"/agas{{locality#{loc}/total}}/count/cache-hits"
        )
        misses = result.counters.get(
            f"/agas{{locality#{loc}/total}}/count/cache-misses"
        )
        print(
            f"  locality#{loc}: parcels sent={sent:.0f} "
            f"received={received:.0f}; AGAS hits={hits:.0f} "
            f"misses={misses:.0f}"
        )


def best_grain_demo() -> None:
    print("\n== the figD effect: best grain moves coarser with localities ==")
    grains = [2_048, 4_096, 8_192, 16_384, 32_768]
    for num_localities in (1, 8):
        times = []
        for grain in grains:
            outcome = run_dist_stencil(
                DistConfig(
                    num_localities=num_localities,
                    cores_per_locality=8,
                    seed=0,
                ),
                DistStencilConfig(
                    total_points=TOTAL_POINTS,
                    partition_points=grain,
                    time_steps=TIME_STEPS,
                ),
            )
            times.append((grain, outcome.result.execution_time_s))
        best = min(times, key=lambda point: point[1])
        curve = "  ".join(f"{g}:{t * 1e3:.3f}ms" for g, t in times)
        print(f"  {num_localities} localities: {curve}")
        print(f"    -> best grain {best[0]}")


if __name__ == "__main__":
    placement_demo()
    stencil_demo()
    best_grain_demo()
