#!/usr/bin/env python
"""Characterize HPX-Stencil task granularity — the paper's core experiment.

Sweeps partition size on a simulated 16-core Haswell node, prints the
metric table (execution time, idle-rate, t_d, t_o, T_o, T_w, queue
accesses, region classification), renders the execution-time curve, and
applies the paper's two grain-selection rules.

Run: ``python examples/stencil_characterization.py [--cores N] [--points P]``
(defaults keep it under a minute).
"""

import argparse

from repro.apps.stencil1d import stencil_run_fn
from repro.core.characterize import characterize, default_partition_sweep
from repro.core.selection import (
    select_by_idle_rate,
    select_by_min_time,
    select_by_pending_accesses,
)
from repro.util.asciiplot import plot_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--points", type=int, default=1 << 20)
    parser.add_argument("--steps", type=int, default=5)
    parser.add_argument("--platform", default="haswell")
    args = parser.parse_args()

    run_fn = stencil_run_fn(args.points, args.steps)
    grains = default_partition_sweep(args.points, finest=256, points_per_decade=3)

    print(
        f"characterizing {len(grains)} grain sizes on {args.platform} "
        f"({args.cores} cores), {args.points} grid points x {args.steps} steps"
    )
    report = characterize(
        run_fn,
        grains,
        platform=args.platform,
        num_cores=args.cores,
        repetitions=2,
        seed=1,
    )

    print()
    print(report.to_table())
    print()
    print(
        plot_series(
            {
                "exec time (s)": report.series("execution_time_s"),
                "idle-rate": report.series("idle_rate"),
            },
            title="U-shaped execution time; idle-rate walls at both ends",
            xlabel="partition size (grid points)",
            ylabel="seconds / ratio",
        )
    )

    print("\ngrain selection (paper Sec. IV-A / IV-E):")
    for outcome in (
        select_by_min_time(report),
        select_by_idle_rate(report, threshold=0.30),
        select_by_pending_accesses(report),
    ):
        print(" ", outcome.summary())


if __name__ == "__main__":
    main()
