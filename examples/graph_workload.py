#!/usr/bin/env python
"""Irregular graph workload: why schedulers and grain size both matter.

The paper motivates granularity adaptation with "scaling impaired" graph
applications (Sec. I-A).  This example traverses a random layered DAG with
one task per vertex batch and shows two effects on a simulated 16-core
Haswell node:

1. batching (the graph analogue of partition size) trades scheduling
   overhead against load balance, and
2. work stealing is what keeps the irregular load balanced — the static
   (no-stealing) policy collapses.

Run: ``python examples/graph_workload.py``
"""

from repro.apps.graphapp import GraphAppConfig, make_layered_graph, run_graph_bfs
from repro.runtime.runtime import RuntimeConfig
from repro.util.tables import format_table

CORES = 16


def main() -> None:
    base = GraphAppConfig(
        layers=24, mean_width=96, edges_per_vertex=3, visit_ns=2_000, seed=21
    )
    g = make_layered_graph(base)
    print(
        f"layered DAG: {g.number_of_nodes()} vertices, "
        f"{g.number_of_edges()} edges, {base.layers} layers\n"
    )

    rows = []
    for batch in (1, 2, 4, 8, 16, 32, 64):
        cfg = GraphAppConfig(
            layers=base.layers,
            mean_width=base.mean_width,
            edges_per_vertex=base.edges_per_vertex,
            visit_ns=base.visit_ns,
            visits_per_task=batch,
            seed=base.seed,
        )
        result = run_graph_bfs(
            RuntimeConfig(platform="haswell", num_cores=CORES, seed=3), cfg
        )
        rows.append(
            [
                batch,
                result.tasks_executed,
                f"{result.execution_time_s * 1e3:.3f}",
                f"{result.idle_rate:.1%}",
            ]
        )
    print(
        format_table(
            ["visits/task", "tasks", "time (ms)", "idle-rate"],
            rows,
            title=f"grain (batch size) sweep, {CORES} cores, priority-local",
        )
    )

    print()
    rows = []
    for scheduler in ("priority-local", "numa-blind", "global-queue", "static"):
        result = run_graph_bfs(
            RuntimeConfig(
                platform="haswell", num_cores=CORES, scheduler=scheduler, seed=3
            ),
            GraphAppConfig(
                layers=base.layers,
                mean_width=base.mean_width,
                edges_per_vertex=base.edges_per_vertex,
                visit_ns=60_000,
                visits_per_task=4,
                seed=base.seed,
            ),
        )
        rows.append(
            [scheduler, f"{result.execution_time_s * 1e3:.3f}",
             f"{result.idle_rate:.1%}"]
        )
    print(
        format_table(
            ["scheduler", "time (ms)", "idle-rate"],
            rows,
            title="scheduler ablation on the same irregular load",
        )
    )


if __name__ == "__main__":
    main()
