#!/usr/bin/env python
"""Dynamic counter monitoring: the paper's "over any interval" methodology.

Sec. II-A stresses that every metric "can be calculated over any interval of
interest", which is what makes runtime adaptation possible.  This example
runs HPX-Stencil with periodic counter sampling and prints per-interval
idle-rate, task throughput and queue activity — the live signal the
adaptive tuner consumes.

Run: ``python examples/dynamic_monitoring.py``
"""

from repro.apps.stencil1d import StencilConfig, build_stencil_graph
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.util.tables import format_table

SAMPLE_INTERVAL_NS = 200_000  # 200 us of virtual time


def main() -> None:
    rt = Runtime(RuntimeConfig(platform="haswell", num_cores=8, seed=7))
    config = StencilConfig(
        total_points=1 << 19, partition_points=2_048, time_steps=10
    )
    build_stencil_graph(rt, config)
    result = rt.run(sample_interval_ns=SAMPLE_INTERVAL_NS)

    rows = []
    for sample in rt.sampler.samples:
        func = sample.get("/threads/time/cumulative-func")
        exec_ = sample.get("/threads/time/cumulative")
        idle = (func - exec_) / func if func > 0 else 0.0
        rows.append(
            [
                f"{sample.start_ns / 1e6:.2f}-{sample.end_ns / 1e6:.2f}",
                int(sample.get("/threads/count/cumulative")),
                f"{idle:.1%}",
                int(sample.get("/threads/count/pending-accesses")),
                int(sample.get("/threads/count/stolen")),
            ]
        )
    print(
        format_table(
            ["interval (ms)", "tasks", "idle-rate", "pendQ accesses", "stolen"],
            rows,
            title=f"per-interval counters ({SAMPLE_INTERVAL_NS / 1e3:.0f} us "
            "sampling, virtual time)",
        )
    )
    print(
        f"\nwhole run: {result.execution_time_s * 1e3:.3f} ms, "
        f"{result.tasks_executed} tasks, idle-rate {result.idle_rate:.1%}"
    )


if __name__ == "__main__":
    main()
