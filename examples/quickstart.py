#!/usr/bin/env python
"""Quickstart: the task-runtime API in five minutes.

Two executors share one programming model (futures + async + dataflow,
mirroring HPX's C++ API):

1. :class:`repro.ThreadRuntime` — real OS threads; use it to *run* code.
2. :class:`repro.Runtime` — the simulated executor used for all
   measurements in this reproduction; tasks carry work descriptors and the
   run yields HPX-style performance counters.

Run: ``python examples/quickstart.py``
"""

from repro import Runtime, StencilWork, ThreadRuntime
from repro.runtime.work import FixedWork


def real_threads_demo() -> None:
    print("== real threads (ThreadRuntime) ==")
    with ThreadRuntime(num_workers=4) as rt:
        # hpx::async analogue: returns a future immediately.
        squares = [rt.async_(lambda i=i: i * i) for i in range(10)]

        # hpx::dataflow analogue: runs when every dependency is ready.
        total = rt.dataflow(lambda *xs: sum(xs), squares)
        print("sum of squares 0..9 =", rt.wait(total))

        tasks = rt.registry.get("/threads/count/cumulative").get_value()
        print(f"tasks executed: {tasks:.0f}")


def simulated_demo() -> None:
    print("\n== simulated Haswell node (Runtime) ==")
    rt = Runtime(platform="haswell", num_cores=8, seed=42)

    # Work descriptors tell the calibrated cost model how big each task is;
    # the Python body only performs bookkeeping.
    partials = [
        rt.async_(lambda i=i: i, work=StencilWork(points=20_000), name=f"part{i}")
        for i in range(64)
    ]
    combined = rt.dataflow(
        lambda *xs: sum(xs), partials, work=FixedWork(5_000), name="reduce"
    )

    result = rt.run()
    print("combined value:", combined.value)
    print(f"virtual execution time: {result.execution_time_s * 1e3:.3f} ms")
    print(f"idle-rate (Eq. 1):      {result.idle_rate:.1%}")
    print(f"avg task duration t_d:  {result.task_duration_ns / 1e3:.1f} us")
    print(f"avg task overhead t_o:  {result.task_overhead_ns / 1e3:.2f} us")
    print(f"pending-queue accesses: {result.pending_accesses:.0f}")


if __name__ == "__main__":
    real_threads_demo()
    simulated_demo()
