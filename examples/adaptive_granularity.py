#!/usr/bin/env python
"""Adaptive grain-size tuning — the paper's future work, working.

Starts the feedback tuner from a catastrophically fine grain (64 points per
partition) and from the coarsest possible grain (one partition), and shows
both trajectories converging near the best grain size using only the
paper's dynamic metrics — no sweep.

Run: ``python examples/adaptive_granularity.py``
"""

from repro.apps.stencil1d import stencil_run_fn
from repro.core.tuner import AdaptiveGrainTuner, TunerConfig
from repro.runtime.runtime import RuntimeConfig
from repro.util.tables import format_table

TOTAL_POINTS = 1 << 19
TIME_STEPS = 5
CORES = 16


def tune(initial_grain: int, label: str) -> None:
    run_fn = stencil_run_fn(TOTAL_POINTS, TIME_STEPS)
    tuner = AdaptiveGrainTuner(
        epoch_fn=run_fn,
        runtime_config_factory=lambda epoch: RuntimeConfig(
            platform="haswell", num_cores=CORES, seed=50 + epoch
        ),
        config=TunerConfig(
            min_grain=64,
            max_grain=TOTAL_POINTS,
            initial_grain=initial_grain,
            max_epochs=25,
        ),
    )
    outcome = tuner.run()

    rows = [
        [
            s.epoch,
            s.grain,
            f"{s.execution_time_s * 1e3:.3f}",
            f"{s.idle_rate:.1%}",
            f"{s.overhead_ratio:.2f}",
            f"{s.utilization:.2f}",
            s.diagnosis,
            s.action,
        ]
        for s in outcome.steps
    ]
    print(
        format_table(
            ["epoch", "grain", "time(ms)", "idle", "t_o/t_d", "util",
             "diagnosis", "action"],
            rows,
            title=f"--- tuning {label} (start grain={initial_grain}) ---",
        )
    )
    print(
        f"=> converged={outcome.converged}; recommended grain="
        f"{outcome.final_grain} at {outcome.final_time_s * 1e3:.3f} ms "
        f"in {outcome.epochs} epochs\n"
    )


if __name__ == "__main__":
    tune(64, "from far too fine")
    tune(TOTAL_POINTS, "from far too coarse")
