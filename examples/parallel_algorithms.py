#!/usr/bin/env python
"""Parallel algorithms and automatic chunking — grain tuning as a library.

HPX exposes grain size through executor parameters on its parallel
algorithms; ``auto_chunk_size`` measures a few iterations and picks the
chunk, which is the paper's "determine granularity and adjust it at
runtime" shipped as a one-liner.  This example sweeps static chunk sizes on
a simulated 16-core Haswell node, then lets the auto policy pick — and
shows it landing near the best static choice without any sweep.

Run: ``python examples/parallel_algorithms.py``
"""

from repro import (
    AutoChunkSize,
    Runtime,
    RuntimeConfig,
    StaticChunkSize,
    parallel_for_each,
    parallel_reduce,
)
from repro.util.tables import format_table

CORES = 16
N_ITEMS = 20_000
ITEM_NS = 2_000  # ~2 us of modelled work per item


def time_for_each(chunk, seed=1) -> tuple[float, int]:
    rt = Runtime(RuntimeConfig(platform="haswell", num_cores=CORES, seed=seed))
    parallel_for_each(
        rt, lambda x: None, range(N_ITEMS), item_ns=ITEM_NS, chunk=chunk
    )
    result = rt.run()
    return result.execution_time_s, rt.executor.total_spawned


def main() -> None:
    rows = []
    best = None
    for size in (1, 8, 64, 512, 4096, N_ITEMS):
        t, tasks = time_for_each(StaticChunkSize(size))
        rows.append([f"static({size})", tasks, f"{t * 1e3:.3f}"])
        best = t if best is None else min(best, t)
    t_auto, tasks_auto = time_for_each(AutoChunkSize(target_chunk_ns=200_000))
    rows.append(["auto(200us)", tasks_auto, f"{t_auto * 1e3:.3f}"])
    print(
        format_table(
            ["chunk policy", "tasks", "time (ms)"],
            rows,
            title=f"parallel_for_each over {N_ITEMS} items x {ITEM_NS} ns, "
            f"{CORES} cores",
        )
    )
    print(f"\nauto vs best static: {t_auto / best:.2f}x (no tuning needed)")

    # A chunked tree reduction, for good measure: sum of squares.
    rt = Runtime(RuntimeConfig(platform="haswell", num_cores=CORES, seed=2))
    total = parallel_reduce(
        rt, lambda x: x * x, range(1_000), lambda a, b: a + b, 0,
        item_ns=ITEM_NS, chunk=StaticChunkSize(64),
    )
    result = rt.run()
    print(
        f"parallel_reduce: sum of squares 0..999 = {total.value} "
        f"in {result.execution_time_s * 1e3:.3f} ms "
        f"({result.tasks_executed} tasks)"
    )


if __name__ == "__main__":
    main()
