#!/usr/bin/env python
"""Quickstart: tolerating gray failure — stragglers, not crashes.

A straggling locality is the failure the crash detector of
``examples/crash_recovery.py`` must *not* act on: its heartbeats arrive,
just late.  ``DistConfig(tail=TailConfig(...))`` arms three mechanisms
for exactly that gray zone:

1. a quantile-based gray detector (heartbeat-gap and ack-RTT sketches)
   that flags a slow locality ``degraded`` — a third state between
   healthy and declared-dead that never triggers recovery;
2. hedged parcels: a send unacked past an adaptive, quantile-derived
   delay is re-sent on a second timer, first ack wins, duplicates are
   deduplicated by the reliable transport's ledger;
3. speculative task re-execution: pending tasks of a degraded locality
   are cloned onto healthy survivors, first completion wins, within a
   ``max_speculation_frac`` work budget.

When a *real* crash happens beside the straggler, partition fencing
keeps the two failure modes from blurring: the declared locality's
epoch is bumped and its stale parcels are rejected on arrival.

Run: ``python examples/tail_tolerance.py``
"""

from repro.dist import (
    CrashAt,
    DistConfig,
    DistRuntime,
    FaultPlan,
    RecoveryConfig,
    RetryParams,
    Straggler,
    TailConfig,
)
from repro.runtime.work import FixedWork

LOCALITIES = 4
STEPS = 10
WIDTH = 2
GRAIN_NS = 60_000
SLOW = 2          # the straggling locality
FACTOR = 4.0      # how slow (heartbeats stretch, but still arrive)
TAIL = TailConfig(check_interval_ns=25_000, hedge_min_delay_ns=5_000)


def build_ring(runtime: DistRuntime):
    """WIDTH ring-coupled chains per locality: every step consumes its
    own and the right neighbour's previous value, so a slow locality
    drags every chain through each rendezvous."""
    prev = [
        [
            runtime.make_ready_future(
                float(i + j), locality=i, name=f"root{i}c{j}"
            )
            for j in range(WIDTH)
        ]
        for i in range(LOCALITIES)
    ]
    for step in range(STEPS):
        prev = [
            [
                runtime.dataflow(
                    (
                        lambda a, b, step=step, i=i, j=j:
                        a * 0.5 + b * 0.25 + step * 0.001 + i + j * 0.01
                    ),
                    [prev[i][j], prev[(i + 1) % LOCALITIES][j]],
                    locality=i,
                    work=FixedWork(GRAIN_NS),
                    name=f"s{step}l{i}c{j}",
                )
                for j in range(WIDTH)
            ]
            for i in range(LOCALITIES)
        ]
    return [f for row in prev for f in row]


def serial_reference():
    vals = [[float(i + j) for j in range(WIDTH)] for i in range(LOCALITIES)]
    for step in range(STEPS):
        vals = [
            [
                vals[i][j] * 0.5
                + vals[(i + 1) % LOCALITIES][j] * 0.25
                + step * 0.001 + i + j * 0.01
                for j in range(WIDTH)
            ]
            for i in range(LOCALITIES)
        ]
    return [v for row in vals for v in row]


def run_ring(config: DistConfig):
    runtime = DistRuntime(config)
    finals = build_ring(runtime)
    result = runtime.wait(finals)
    return runtime, result, [f.value for f in finals]


def base_config(**overrides) -> DistConfig:
    defaults = dict(
        num_localities=LOCALITIES,
        cores_per_locality=2,
        seed=13,
        retry=RetryParams(),
        crash_recovery=RecoveryConfig(checkpoint_interval_ns=200_000),
    )
    defaults.update(overrides)
    return DistConfig(**defaults)


def gray_not_dead_demo(reference) -> None:
    print("== gray, not dead: the detector's third state ==")
    runtime, result, values = run_ring(
        base_config(
            faults=FaultPlan(seed=13, stragglers=(Straggler(SLOW, FACTOR),)),
            tail=TAIL,
        )
    )
    print(
        f"locality {SLOW} ran {FACTOR:g}x slow; crash declarations: "
        f"{result.crashes_detected}, degraded flags raised: "
        f"{result.degraded_events}"
    )
    for line in runtime.tail_manager.diagnose():
        print(f"  {line}")
    print(f"values match the serial reference: {values == reference}")


def rescue_demo(reference) -> None:
    print("\n== hedging + speculation absorb the straggler's tax ==")
    plan = FaultPlan(
        seed=13, drop_rate=0.02, stragglers=(Straggler(SLOW, FACTOR),)
    )
    _, off, off_values = run_ring(base_config(faults=plan, tail=None))
    _, on, on_values = run_ring(base_config(faults=plan, tail=TAIL))
    print(
        f"makespan without tail tolerance: {off.execution_time_ns / 1e3:.0f}"
        f" us; with: {on.execution_time_ns / 1e3:.0f} us"
    )
    print(
        f"hedged parcels: {on.hedges_armed} armed, {on.hedges_sent} sent, "
        f"{on.hedges_won} won, {on.hedges_cancelled} cancelled by the ack"
    )
    print(
        f"speculation: {on.tasks_speculated} clones "
        f"(budget {on.speculation_budget}), {on.speculation_wins} won, "
        f"{on.speculations_cancelled} cancelled, "
        f"{on.originals_cancelled} originals called off"
    )
    print(
        "ledger balances (wins + cancelled == speculated): "
        f"{on.speculation_wins + on.speculations_cancelled == on.tasks_speculated}"
    )
    print(
        "both legs match the serial reference: "
        f"{off_values == reference and on_values == reference}"
    )


def fencing_demo(reference) -> None:
    print("\n== a real crash beside the straggler: fencing ==")
    runtime, result, values = run_ring(
        base_config(
            faults=FaultPlan(
                seed=13,
                crashes=(CrashAt(1, 300_000),),
                stragglers=(Straggler(SLOW, FACTOR),),
            ),
            tail=TAIL,
        )
    )
    tm = runtime.tail_manager
    print(
        f"declarations: {result.crashes_detected} (the crash, exactly "
        f"once); the {FACTOR:g}x straggler stayed gray: "
        f"{tm.degraded_localities == (SLOW,)}"
    )
    print(
        f"crashed locality fenced at epoch {tm.epoch_of(1)}; its "
        f"pre-declaration parcels are stale: {tm.is_stale(1, 0)}"
    )
    print(f"recovered values match the serial reference: {values == reference}")


if __name__ == "__main__":
    reference = serial_reference()
    gray_not_dead_demo(reference)
    rescue_demo(reference)
    fencing_demo(reference)
