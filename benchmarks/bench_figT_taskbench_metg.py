"""figT: Task Bench METG(50%) across dependence patterns.

See the module docstring of ``repro.experiments.figT_taskbench_metg`` for
the claims (pattern ordering trivial < stencil_1d <= fft; METG monotone in
core count; the idle-rate rule inside the METG region; bit-identical
rerun) the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import figT_taskbench_metg


def test_figT_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, figT_taskbench_metg, bench_scale)
