"""Fig. 8: HPX-thread management + wait time decomposition on the Xeon Phi.

See the module docstring of ``repro.experiments.fig8_decomposition_phi`` for the paper
context and the claims the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import fig8_decomposition_phi


def test_fig8_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, fig8_decomposition_phi, bench_scale)
