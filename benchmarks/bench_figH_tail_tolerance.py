"""figH: tail tolerance — grain size × straggler severity.

See the module docstring of ``repro.experiments.figH_tail_tolerance`` for
the claims (the unprotected best grain coarsening monotonically with
straggler severity, the hedged/speculating leg holding p99 within 2x
fault-free and restoring the fault-free optimum, speculation staying
within budget, everything gray — never a crash declaration — and
bit-reproducible) the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import figH_tail_tolerance


def test_figH_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, figH_tail_tolerance, bench_scale)
