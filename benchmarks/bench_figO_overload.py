"""figO: overload control under an open-loop offered-load sweep.

See the module docstring of ``repro.experiments.figO_overload`` for the
claims (bounded admission keeps goodput at a plateau while the unbounded
baseline's completion time diverges; credit windows bound in-flight
parcels; breakers cap retransmission storms; the governor coarsens grain
until goodput plateaus; everything bit-reproducible and conserving) the
shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import figO_overload


def test_figO_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, figO_overload, bench_scale)
