"""Adaptive grain-size tuning (the paper's Sec. VI future work) — see
``repro.experiments.tuner_experiment``."""

from _support import run_figure_benchmark
from repro.experiments import tuner_experiment


def test_adaptive_tuner_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, tuner_experiment, bench_scale)
