"""figQ: QoS priority isolation under background overload.

See the module docstring of ``repro.experiments.figQ_qos_isolation`` for
the claims (the interactive tenant's p99 stays within 1.5x of its 1x-load
value at 4x offered load while the batch tenant absorbs the shedding; the
class-blind baseline inflates the interactive tail; everything conserving
and bit-reproducible) the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import figQ_qos_isolation


def test_figQ_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, figQ_qos_isolation, bench_scale)
