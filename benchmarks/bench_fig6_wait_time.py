"""Fig. 6: wait time per HPX-thread vs. partition size on Haswell.

See the module docstring of ``repro.experiments.fig6_wait_time`` for the paper
context and the claims the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import fig6_wait_time


def test_fig6_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, fig6_wait_time, bench_scale)
