"""Table I: platform specifications (paper Sec. III)."""

from _support import run_figure_benchmark
from repro.experiments import table1_platforms


def test_table1_platform_specifications(benchmark, bench_scale):
    run_figure_benchmark(benchmark, table1_platforms, bench_scale)
