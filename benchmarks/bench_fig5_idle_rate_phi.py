"""Fig. 5: idle-rate and execution time on the Xeon Phi (16/32/60 cores).

See the module docstring of ``repro.experiments.fig5_idle_rate_phi`` for the paper
context and the claims the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import fig5_idle_rate_phi


def test_fig5_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, fig5_idle_rate_phi, bench_scale)
