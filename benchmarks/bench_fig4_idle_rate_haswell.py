"""Fig. 4: idle-rate and execution time on Haswell (8/16/28 cores).

See the module docstring of ``repro.experiments.fig4_idle_rate_haswell`` for the paper
context and the claims the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import fig4_idle_rate_haswell


def test_fig4_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, fig4_idle_rate_haswell, bench_scale)
