"""figD: distributed grain sweep across 1/2/4/8 localities.

See the module docstring of ``repro.experiments.figD_distributed_grain``
for the claims (best grain moves coarser with locality count; parcel
conservation) the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import figD_distributed_grain


def test_figD_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, figD_distributed_grain, bench_scale)
