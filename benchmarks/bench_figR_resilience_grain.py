"""figR: resilience vs grain size under injected parcel faults.

See the module docstring of ``repro.experiments.figR_resilience_grain``
for the claims (retransmissions scale with 1/grain; per-fault recovery
cost scales with the grain; faults move the U-curve minimum coarser;
seed-exact reproducibility and bit-correct results under faults) the
shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import figR_resilience_grain


def test_figR_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, figR_resilience_grain, bench_scale)
