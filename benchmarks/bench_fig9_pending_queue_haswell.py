"""Fig. 9: pending-queue accesses on Haswell.

See the module docstring of ``repro.experiments.fig9_pending_queue_haswell`` for the paper
context and the claims the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import fig9_pending_queue_haswell


def test_fig9_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, fig9_pending_queue_haswell, bench_scale)
