"""Fig. 7: HPX-thread management + wait time decomposition on Haswell.

See the module docstring of ``repro.experiments.fig7_decomposition_haswell`` for the paper
context and the claims the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import fig7_decomposition_haswell


def test_fig7_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, fig7_decomposition_haswell, bench_scale)
