"""Micro-benchmarks of the library itself (wall-clock, multiple rounds).

Unlike the figure benchmarks (which time one deterministic simulation),
these measure the Python-level throughput of the hot paths: simulated task
execution, scheduler work-finding, future/dataflow bookkeeping, and counter
snapshots.  They exist so performance regressions in the substrate are
caught — a 2x slower event loop doubles every experiment's wall time.
"""

from repro.counters.registry import CounterRegistry
from repro.runtime.future import make_ready_future
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Task
from repro.runtime.work import FixedWork
from repro.schedulers.priority_local import PriorityLocalScheduler
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.platforms import HASWELL


def test_engine_event_throughput(benchmark):
    """Raw heap push/pop rate of the DES engine (100k events)."""

    def run():
        sim = Simulator()
        count = 100_000
        for i in range(count):
            sim.schedule(i, lambda: None)
        sim.run()
        return sim.now

    assert benchmark(run) == 99_999


def test_simulated_task_throughput(benchmark):
    """End-to-end simulated tasks per second (spawn + schedule + complete)."""

    def run():
        rt = Runtime(RuntimeConfig(platform="haswell", num_cores=8, seed=1))
        for _ in range(5_000):
            rt.spawn(Task(lambda: None, work=FixedWork(1_000)))
        return rt.run().execution_time_ns

    assert benchmark(run) > 0


def test_scheduler_find_work_hit(benchmark):
    """One find_work call against a populated local pending queue."""
    policy = PriorityLocalScheduler()
    policy.attach(Machine(HASWELL, 8))

    def run():
        policy.enqueue_pending(Task(lambda: None), 0)
        return policy.find_work(0)

    assert benchmark(run) is not None


def test_scheduler_find_work_full_miss(benchmark):
    """One find_work scan over every queue of an empty 28-worker system."""
    policy = PriorityLocalScheduler()
    policy.attach(Machine(HASWELL, 28))
    assert benchmark(lambda: policy.find_work(0)) is None


def test_dataflow_graph_construction(benchmark):
    """Build a 1000-node dependency chain (no execution)."""

    def run():
        rt = Runtime(RuntimeConfig(platform="haswell", num_cores=1))
        f = make_ready_future(0)
        for _ in range(1_000):
            f = rt.dataflow(lambda x: x + 1, [f], work=FixedWork(100))
        return f

    assert benchmark(run) is not None


def test_counter_snapshot(benchmark):
    """Snapshot of a registry the size a 28-core runtime registers."""
    reg = CounterRegistry()
    for i in range(28):
        reg.raw(f"/threads{{locality#0/worker-thread#{i}}}/count/cumulative")
        reg.average(f"/threads{{locality#0/worker-thread#{i}}}/time/average")
    for name in ("/threads/idle-rate", "/threads/count/cumulative"):
        reg.derived(name, lambda: 0.0)
    snap = benchmark(reg.snapshot)
    assert len(snap.values) + len(snap.average_pairs) == 58
