"""Fig. 10: pending-queue accesses on the Xeon Phi.

See the module docstring of ``repro.experiments.fig10_pending_queue_phi`` for the paper
context and the claims the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import fig10_pending_queue_phi


def test_fig10_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, fig10_pending_queue_phi, bench_scale)
