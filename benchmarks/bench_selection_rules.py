"""In-text grain-selection claims (Sec. IV-A idle-rate threshold, Sec. IV-E
pending-queue minimum) — see ``repro.experiments.selection_experiment``."""

from _support import run_figure_benchmark
from repro.experiments import selection_experiment


def test_selection_rules_reproduction(benchmark, bench_scale):
    fig = run_figure_benchmark(benchmark, selection_experiment, bench_scale)
    oracle, idle_rule, queue_rule = fig.outcomes  # type: ignore[attr-defined]
    print()
    for outcome in (oracle, idle_rule, queue_rule):
        print(outcome.summary())
