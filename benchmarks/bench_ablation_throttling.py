"""Adaptive concurrency throttling driven by the paper's metrics — see
``repro.experiments.throttling_experiment``."""

from _support import run_figure_benchmark
from repro.experiments import throttling_experiment


def test_throttling_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, throttling_experiment, bench_scale)
