"""Methodology generality on the 2-D wavefront workload — see
``repro.experiments.wavefront_generality``."""

from _support import run_figure_benchmark
from repro.experiments import wavefront_generality


def test_wavefront_generality(benchmark, bench_scale):
    run_figure_benchmark(benchmark, wavefront_generality, bench_scale)
