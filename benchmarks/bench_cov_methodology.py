"""COV structure of the measurements (paper Sec. IV, first paragraph) — see
``repro.experiments.cov_experiment``."""

from _support import run_figure_benchmark
from repro.experiments import cov_experiment


def test_cov_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, cov_experiment, bench_scale)
