"""Ablations: scheduler policies (regular + irregular work) and the
Sec. II-A timer-overhead note — see ``repro.experiments.ablations``."""

from _support import run_figure_benchmark
from repro.experiments import ablations


def test_ablations_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, ablations, bench_scale)
