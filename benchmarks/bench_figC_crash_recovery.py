"""figC: crash recovery — best checkpoint interval vs grain size.

See the module docstring of ``repro.experiments.figC_crash_recovery`` for
the claims (the execution-time-optimal checkpoint interval coarsens with
the grain; time-to-recover decomposes into detection + restore +
re-execution; recovered runs are bit-identical to the crash-free serial
reference with lost work conserved) the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import figC_crash_recovery


def test_figC_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, figC_crash_recovery, bench_scale)
