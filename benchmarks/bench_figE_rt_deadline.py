"""figE: deadline-miss rate vs grain across overhead regimes.

See the module docstring of ``repro.experiments.figE_rt_deadline`` for
the claims (the miss-rate U in grain, the best grain strictly coarsening
with task-management overhead, priority inversion under protocol
``none`` that inheritance bounds and the ceiling prevents, everything
conserving and bit-reproducible) the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import figE_rt_deadline


def test_figE_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, figE_rt_deadline, bench_scale)
