"""Helpers shared by the benchmark files."""

from __future__ import annotations


def run_figure_benchmark(benchmark, module, scale, **run_kwargs):
    """Run ``module.run(scale)`` under pytest-benchmark once, print the
    reproduced series, and fail on any shape-check violation."""
    fig = benchmark.pedantic(
        lambda: module.run(scale, **run_kwargs), rounds=1, iterations=1
    )
    print()
    print(fig.render(plots=False))
    problems = module.shape_checks(fig)
    assert problems == [], "shape checks failed:\n" + "\n".join(problems)
    return fig
