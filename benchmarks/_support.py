"""Helpers shared by the benchmark files."""

from __future__ import annotations

import time

from repro.experiments import benchlog
from repro.runtime.task import tasks_created


def run_figure_benchmark(benchmark, module, scale, **run_kwargs):
    """Run ``module.run(scale)`` under pytest-benchmark once, print the
    reproduced series, fail on any shape-check violation, and log wall
    time + simulated-task count to the ``BENCH_<rev>.json`` session log."""
    tasks_before = tasks_created()
    start = time.perf_counter()
    fig = benchmark.pedantic(
        lambda: module.run(scale, **run_kwargs), rounds=1, iterations=1
    )
    benchlog.record(
        getattr(module, "FIGURE_ID", module.__name__.rsplit(".", 1)[-1]),
        wall_s=time.perf_counter() - start,
        tasks=tasks_created() - tasks_before,
        scale=scale.name,
    )
    print()
    print(fig.render(plots=False))
    problems = module.shape_checks(fig)
    assert problems == [], "shape checks failed:\n" + "\n".join(problems)
    return fig
