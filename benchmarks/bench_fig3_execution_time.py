"""Fig. 3: execution time vs. task granularity, strong scaling, all four platforms.

See the module docstring of ``repro.experiments.fig3_execution_time`` for the paper
context and the claims the shape checks enforce.
"""

from _support import run_figure_benchmark
from repro.experiments import fig3_execution_time


def test_fig3_reproduction(benchmark, bench_scale):
    run_figure_benchmark(benchmark, fig3_execution_time, bench_scale)
