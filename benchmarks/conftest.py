"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact at the ``bench`` scale (see
``repro.experiments.config``), prints the reproduced rows/series, and then
asserts the figure's qualitative shape checks.  Timings are collected by
pytest-benchmark with a single round — each run is a deterministic
simulation, so repetition would only re-measure the same event stream.

Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to see the reproduced tables inline.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import get_scale


@pytest.fixture(scope="session")
def bench_scale():
    return get_scale("bench")


def pytest_sessionfinish(session, exitstatus):
    """Write the per-revision BENCH_<rev>.json performance trail."""
    from repro.experiments import benchlog

    path = benchlog.write(session.config.rootpath)
    if path is not None:
        print(f"\nwrote {path}")
