"""Repo-wide pytest configuration: a per-test wall-clock cap.

CI runs with ``pytest-timeout`` (declared in the ``test`` extra) so a hung
simulation fails with a stack dump instead of stalling the pipeline.  The
shim below keeps the ``--timeout`` option and ``timeout`` ini key working
in environments where the plugin is not installed, by arming a SIGALRM
around each test's call phase.  It registers nothing when the real plugin
is importable, so the two never fight over the option.
"""

import signal
import threading

import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False


if not _HAVE_PLUGIN:

    def pytest_addoption(parser):
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback shim)",
            default="0",
        )
        parser.addoption(
            "--timeout",
            action="store",
            default=None,
            metavar="SECONDS",
            help="per-test timeout in seconds (SIGALRM fallback shim)",
        )

    def _limit_seconds(item):
        raw = item.config.getoption("--timeout")
        if raw is None:
            raw = item.config.getini("timeout")
        try:
            return int(float(raw))
        except (TypeError, ValueError):
            return 0

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        limit = _limit_seconds(item)
        usable = (
            limit > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            yield
            return

        def on_alarm(signum, frame):
            raise pytest.fail.Exception(
                f"test exceeded the {limit}s timeout (SIGALRM fallback)"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(limit)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
