# Convenience targets; each maps to a documented command in README.md.

.PHONY: install test test-fast bench experiments experiments-report clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	repro-experiments all --scale bench --no-plots

experiments-report:
	repro-experiments all --scale bench --no-plots --markdown EXPERIMENTS.generated.md

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
