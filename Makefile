# Convenience targets; each maps to a documented command in README.md.
#
# Every target works from a clean checkout: PYTHONPATH=src puts the package
# on the path without requiring `make install` first.

.PHONY: check install test test-fast lint fuzz bench experiments experiments-report clean

# Default flow: static analysis over shipped workloads, then the test suite.
check: lint test

install:
	pip install -e . || python setup.py develop

test:
	PYTHONPATH=src pytest tests/ --timeout=600

test-fast:
	PYTHONPATH=src pytest tests/ -m "not slow" --timeout=600

# Task-graph lint (docs/analysis.md) over everything we ship as example
# code; CI requires zero findings here.
lint:
	PYTHONPATH=src python -m repro.analysis examples src/repro/apps --format text

# Differential parity fuzzing (docs/verify.md): a fixed 50-seed corpus
# through Runtime/ThreadRuntime/DistRuntime with zero PF4xx findings
# required.  Fixed seeds + fixed budget = CI failures reproduce verbatim;
# failures shrink to JSON reproducers under fuzz-reproducers/.
fuzz:
	PYTHONPATH=src python -m repro.verify fuzz --seeds 0:50 --budget-s 60 --out fuzz-reproducers

bench:
	PYTHONPATH=src pytest benchmarks/ --benchmark-only

experiments:
	PYTHONPATH=src python -m repro.experiments.cli all --scale bench --no-plots

experiments-report:
	PYTHONPATH=src python -m repro.experiments.cli all --scale bench --no-plots --markdown EXPERIMENTS.generated.md

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist *.egg-info fuzz-reproducers BENCH_*.json
	find . -name __pycache__ -type d -exec rm -rf {} +
