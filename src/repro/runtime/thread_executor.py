"""Real-thread executor: the same scheduler running on OS threads.

This is the proof that :mod:`repro.schedulers` is a real runnable runtime and
not only a simulation artifact: the identical policy objects (dual queues,
Priority Local-FIFO search order) schedule real Python callables over a pool
of ``threading.Thread`` workers.

**It is never used for quantitative experiments.**  The CPython GIL
serializes task bodies, which distorts exactly the fine-grained overheads the
paper studies (see DESIGN.md's substitution table); measurements come from
:mod:`repro.runtime.sim_executor`.  The thread executor exists for:

- runnable examples (quickstart) whose tasks do real work;
- correctness tests that the scheduler loses no tasks under true concurrency;
- a migration path for users who want the API with real execution.

Counter support mirrors the simulated executor's names where meaningful
(task counts, queue accesses, cumulative exec time measured with
``perf_counter_ns``).
"""

from __future__ import annotations

import inspect
import threading
import time
from typing import Any, Callable, Sequence

from repro.analysis.dynamic import RuntimeChecker
from repro.counters.registry import CounterRegistry
from repro.runtime.future import Future, when_all
from repro.runtime.task import Priority, Task, TaskState
from repro.runtime.work import WorkDescriptor
from repro.schedulers import make_scheduler
from repro.schedulers.base import SchedulingPolicy
from repro.sim.machine import Machine
from repro.sim.platforms import KB, MB, GB, PlatformSpec, CostParams


def host_platform(num_cores: int, numa_domains: int = 1) -> PlatformSpec:
    """A synthetic :class:`PlatformSpec` describing the host machine.

    Only the topology fields matter to the thread executor (the scheduler
    needs NUMA ordering); the calibration constants are placeholders.
    """
    return PlatformSpec(
        name=f"host-{num_cores}c",
        microarchitecture="host",
        processor="host",
        clock_ghz=1.0,
        turbo_ghz=None,
        cores=num_cores,
        numa_domains=numa_domains,
        hardware_threads_per_core=1,
        hardware_threading_active=False,
        l1_bytes=32 * KB,
        l2_bytes=256 * KB,
        shared_l3_bytes=8 * MB,
        ram_bytes=1 * GB,
        costs=CostParams(per_point_ns=1.0, task_overhead_ns=1000.0),
    )


class ThreadRuntime:
    """M:N-style task pool: M tasks over N OS worker threads.

    Usage::

        with ThreadRuntime(num_workers=4) as rt:
            f = rt.async_(lambda: 21 * 2)
            assert rt.wait(f) == 42

    All scheduler and future mutations happen under one runtime lock; task
    bodies run outside it.
    """

    _IDLE_WAIT_S = 0.001

    def __init__(
        self,
        num_workers: int = 4,
        scheduler: str | SchedulingPolicy = "priority-local",
        numa_domains: int = 1,
        check: bool = False,
    ) -> None:
        """``check=True`` installs the dynamic checkers: leaked-future and
        dependency-cycle detection at shutdown, and the lockset monitor
        (``self.checker.monitor`` / ``self.checker.tracked_lock``) for
        shared state; findings raise :class:`repro.analysis.CheckError`."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.machine = Machine(host_platform(num_workers, numa_domains), num_workers)
        self.policy = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.policy.attach(self.machine)
        self.registry = CounterRegistry()
        self._lock = threading.RLock()
        self._work_available = threading.Condition(self._lock)
        self._all_done = threading.Condition(self._lock)
        self._outstanding = 0
        self._total_spawned = 0
        self._shutdown = False
        self._exec_ns = 0
        self._started_ns: int | None = None
        self._threads: list[threading.Thread] = []
        self._local = threading.local()
        self.checker: RuntimeChecker | None = (
            RuntimeChecker("ThreadRuntime") if check else None
        )
        self._register_counters()

    def _register_counters(self) -> None:
        reg = self.registry
        self._c_tasks = reg.raw("/threads/count/cumulative", "tasks executed")
        self._c_phases = reg.raw("/threads/count/cumulative-phases", "phases executed")
        self._c_errors = reg.raw(
            "/threads/count/errors",
            "raw task bodies that raised (async_/dataflow bodies catch their "
            "own errors into futures; this counts direct Task spawns)",
        )
        reg.derived(
            "/threads/count/pending-accesses",
            lambda: float(self.policy.aggregate_stats().pending_accesses),
            "pending-queue lookups",
        )
        reg.derived(
            "/threads/count/pending-misses",
            lambda: float(self.policy.aggregate_stats().pending_misses),
            "pending-queue lookups that found nothing",
        )
        reg.derived(
            "/threads/time/cumulative",
            lambda: float(self._exec_ns),
            "measured task body time (wall, ns)",
        )

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "ThreadRuntime":
        if self._threads:
            raise RuntimeError("runtime already started")
        self._started_ns = time.perf_counter_ns()
        for i in range(self.machine.num_cores):
            t = threading.Thread(
                target=self._worker_loop, args=(i,), name=f"worker-{i}", daemon=True
            )
            self._threads.append(t)
            t.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; with ``wait`` (default), drain outstanding work
        first.

        With ``check=True`` and a drained shutdown, the dynamic checkers run
        last: dependency cycles and still-pending (leaked) futures among
        everything this runtime handed out, plus lockset races on monitored
        state, raise :class:`repro.analysis.CheckError`.
        """
        if wait:
            self.wait_idle()
        with self._lock:
            self._shutdown = True
            self._work_available.notify_all()
        for t in self._threads:
            t.join(timeout=10.0)
        self._threads.clear()
        if wait and self.checker is not None:
            self.checker.raise_if_findings()

    def __enter__(self) -> "ThreadRuntime":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(wait=exc_info[0] is None)

    # -- submission (Spawner protocol + async/dataflow mirror) ----------------------

    def spawn(self, task: Task, worker: int | None = None) -> None:
        with self._lock:
            if self._shutdown:
                raise RuntimeError("runtime is shut down")
            if worker is None:
                worker = getattr(self._local, "worker_index", None)
            if worker is None:
                worker = self._total_spawned % self.machine.num_cores
            self._outstanding += 1
            self._total_spawned += 1
            self.policy.enqueue_staged(task, worker)
            self._work_available.notify_all()

    def async_(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str = "",
        priority: Priority = Priority.NORMAL,
        qos: Any | None = None,
        work: WorkDescriptor | None = None,
    ) -> Future:
        """Launch ``fn(*args)`` on the pool; returns its future."""
        result = Future(name or getattr(fn, "__name__", "async"))

        def body() -> None:
            try:
                value = fn(*args)
            except BaseException as exc:  # noqa: BLE001 - error channel
                self._set_exception(result, exc)
            else:
                self._set_value(result, value)

        if self.checker is not None:
            self.checker.register_future(result)
        self.spawn(
            Task(body, work=work, name=result.name, priority=priority, qos=qos)
        )
        return result

    def dataflow(
        self,
        fn: Callable[..., Any],
        dependencies: Sequence[Future],
        *,
        name: str = "",
        priority: Priority = Priority.NORMAL,
        qos: Any | None = None,
        work: WorkDescriptor | None = None,
    ) -> Future:
        """Run ``fn`` on the dependency values once all are ready."""
        result = Future(name or getattr(fn, "__name__", "dataflow"))
        deps = list(dependencies)
        result.dependencies = tuple(deps)

        def body() -> None:
            try:
                value = fn(*(d.value for d in deps))
            except BaseException as exc:  # noqa: BLE001 - error channel
                self._set_exception(result, exc)
            else:
                self._set_value(result, value)

        def launch(_ready: Future) -> None:
            failed = next((d for d in deps if d.has_exception), None)
            if failed is not None:
                # Through _set_exception so threads blocked in wait() are
                # woken: a dependency failing must never hang a join.
                self._set_exception(result, failed.exception)  # type: ignore[arg-type]
                return
            self.spawn(
                Task(body, work=work, name=result.name, priority=priority, qos=qos)
            )

        if self.checker is not None:
            self.checker.register_future(result)
        with self._lock:
            when_all(deps, name=f"{result.name}:deps").on_ready(launch)
        return result

    # -- synchronization --------------------------------------------------------------

    def _set_value(self, future: Future, value: Any) -> None:
        with self._lock:
            future.set_value(value)
            self._all_done.notify_all()

    def _set_exception(self, future: Future, exc: BaseException) -> None:
        with self._lock:
            future.set_exception(exc)
            self._all_done.notify_all()

    def wait(self, future: Future, timeout_s: float | None = None) -> Any:
        """Block the calling (non-worker) thread until ``future`` is ready."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._lock:
            while not future.is_ready:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(f"future {future.name!r} not ready")
                self._all_done.wait(timeout=remaining)
        return future.value

    def wait_idle(self, timeout_s: float | None = None) -> None:
        """Block until no tasks are outstanding."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._lock:
            while self._outstanding > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"{self._outstanding} tasks still outstanding"
                        )
                self._all_done.wait(timeout=remaining)

    # -- the worker loop ----------------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        self._local.worker_index = index
        while True:
            with self._lock:
                if self._shutdown:
                    return
                found = self.policy.find_work(index)
                if found is None:
                    self._work_available.wait(timeout=self._IDLE_WAIT_S)
                    continue
                task = found.task
                if task.state is TaskState.STAGED:
                    task.set_state(TaskState.PENDING)
                task.set_state(TaskState.ACTIVE)
                task.begin_phase()
            self._execute(index, task)

    def _execute(self, index: int, task: Task) -> None:
        """Run one phase of ``task`` outside the lock; then finish it.

        Raw task bodies that raise do not kill the worker: the exception is
        stored on ``task.result`` and counted in ``/threads/count/errors``.
        (``async_``/``dataflow`` bodies never reach this path — they catch
        their own exceptions into their result futures.)
        """
        start = time.perf_counter_ns()
        error: BaseException | None = None
        try:
            if task.fn is not None:
                if inspect.isgeneratorfunction(task.fn):
                    raise NotImplementedError(
                        "generator (suspendable) tasks are only supported by "
                        "the simulated executor"
                    )
                task.fn()
        except BaseException as exc:  # noqa: BLE001 - recorded, not fatal
            error = exc
        elapsed = time.perf_counter_ns() - start
        with self._lock:
            task.exec_ns += elapsed
            self._exec_ns += elapsed
            self._c_phases.increment()
            task.set_state(TaskState.TERMINATED)
            task.terminated_ns = time.perf_counter_ns()
            self._c_tasks.increment()
            if error is not None:
                task.result = error
                self._c_errors.increment()
            self._outstanding -= 1
            # Notify on *every* termination, not only the last: a future
            # satisfied inside a raw task body (bypassing _set_value) must
            # still wake threads blocked in wait()/wait_idle().
            self._all_done.notify_all()
