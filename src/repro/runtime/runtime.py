"""Runtime facade: platform + scheduler + counters + executor in one object.

One :class:`Runtime` corresponds to one launch of the HPX runtime for one
application run: construct it with a :class:`RuntimeConfig`, submit work with
:meth:`Runtime.async_` / :meth:`Runtime.dataflow`, then :meth:`Runtime.run`
drives the simulation to completion and returns a :class:`RunResult`
packaging the execution time and a final counter snapshot — the exact raw
material the paper's metrics (Sec. II-A) are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.analysis.dynamic import CheckError, RuntimeChecker
from repro.counters.interval import IntervalSampler
from repro.counters.registry import CounterRegistry, CounterSnapshot
from repro.overload.config import OverloadConfig
from repro.runtime.future import Future, dataflow as _dataflow
from repro.runtime.sim_executor import DeadlockError, SimExecutor
from repro.runtime.task import Priority, Task
from repro.runtime.work import WorkDescriptor
from repro.schedulers import make_scheduler
from repro.schedulers.base import SchedulingPolicy
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.platforms import PlatformSpec, get_platform


@dataclass(frozen=True)
class RuntimeConfig:
    """Configuration of one simulated runtime launch.

    ``platform`` accepts a name (``"haswell"``, ``"xeon-phi"``, aliases
    ``hw``/``knc``...) or a :class:`PlatformSpec`.  ``scheduler`` accepts a
    registry name or a policy instance.  ``seed`` feeds the cost-model jitter
    so repeated runs produce the COV statistics of the paper's methodology.
    """

    platform: str | PlatformSpec = "haswell"
    num_cores: int = 1
    scheduler: str | SchedulingPolicy = "priority-local"
    seed: int = 0
    timer_counters: bool = True
    #: record an :class:`repro.sim.trace.ExecutionTrace` of the run
    trace: bool = False
    #: install the dynamic checkers (:mod:`repro.analysis.dynamic`):
    #: dependency-cycle detection before the run, leaked-future detection
    #: after it; failures raise :class:`repro.analysis.CheckError`
    check: bool = False
    #: opt-in overload control (:mod:`repro.overload`); only the
    #: ``admission`` layer applies to a single-locality runtime.  ``None``
    #: (the default) is bit-identical to pre-overload behaviour.
    overload: OverloadConfig | None = None

    def resolve_platform(self) -> PlatformSpec:
        if isinstance(self.platform, PlatformSpec):
            return self.platform
        return get_platform(self.platform)

    def resolve_scheduler(self) -> SchedulingPolicy:
        if isinstance(self.scheduler, SchedulingPolicy):
            return self.scheduler
        return make_scheduler(self.scheduler)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one completed run: time plus the final counter snapshot."""

    execution_time_ns: int
    counters: CounterSnapshot
    platform_name: str
    num_cores: int
    tasks_executed: int

    # -- the counter readings the paper's metrics start from -------------------

    @property
    def execution_time_s(self) -> float:
        return self.execution_time_ns / 1e9

    @property
    def idle_rate(self) -> float:
        """Eq. 1, as reported by ``/threads/idle-rate``."""
        return self.counters.get("/threads/idle-rate")

    @property
    def task_duration_ns(self) -> float:
        """Eq. 2 (t_d), as reported by ``/threads/time/average``."""
        return self.counters.get("/threads/time/average")

    @property
    def task_overhead_ns(self) -> float:
        """Per-task management time, ``/threads/time/average-overhead``."""
        return self.counters.get("/threads/time/average-overhead")

    @property
    def cumulative_exec_ns(self) -> float:
        return self.counters.get("/threads/time/cumulative")

    @property
    def cumulative_func_ns(self) -> float:
        return self.counters.get("/threads/time/cumulative-func")

    @property
    def pending_accesses(self) -> float:
        return self.counters.get("/threads/count/pending-accesses")

    @property
    def pending_misses(self) -> float:
        return self.counters.get("/threads/count/pending-misses")

    @property
    def phases(self) -> float:
        return self.counters.get("/threads/count/cumulative-phases")

    # -- overload counters (0.0 unless admission control was installed) --------

    @property
    def tasks_completed(self) -> float:
        """Tasks that actually executed, ``/threads/count/cumulative``."""
        return self.counters.get("/threads/count/cumulative")

    @property
    def tasks_offered(self) -> float:
        return self.counters.get("/overload/count/offered")

    @property
    def tasks_shed(self) -> float:
        return self.counters.get("/overload/count/shed")

    @property
    def tasks_spilled(self) -> float:
        return self.counters.get("/overload/count/spilled")

    @property
    def tasks_blocked(self) -> float:
        return self.counters.get("/overload/count/blocked")

    @property
    def tasks_readmitted(self) -> float:
        return self.counters.get("/overload/count/readmitted")

    @property
    def backpressure_wait_ns(self) -> float:
        return self.counters.get("/overload/time/backpressure-blocked")

    @property
    def peak_queue_depth(self) -> float:
        """High-water staged+pending depth of any one queue."""
        return self.counters.get("/overload/count/peak-queue-depth@gauge")


class Runtime:
    """A single-launch task runtime over the simulated machine.

    Implements the ``Spawner`` protocol, so it can be passed directly to
    :func:`repro.runtime.future.dataflow`.
    """

    def __init__(
        self,
        config: RuntimeConfig | None = None,
        *,
        simulator: Simulator | None = None,
        **kwargs: Any,
    ) -> None:
        """Build the runtime.

        ``kwargs`` are a convenience for ad-hoc construction:
        ``Runtime(platform="haswell", num_cores=8)``.

        ``simulator`` shares an external event loop with this runtime —
        the mechanism :class:`repro.dist.DistRuntime` uses to drive several
        localities on one virtual clock.  When sharing a simulator, drive
        the composite centrally instead of calling :meth:`run` (which drains
        the *whole* event heap, other tenants' events included).
        """
        if config is None:
            config = RuntimeConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a RuntimeConfig or keyword arguments")
        self.config = config
        self.platform = config.resolve_platform()
        self.machine = Machine(self.platform, config.num_cores)
        self.registry = CounterRegistry()
        self.cost_model = CostModel(
            self.platform,
            config.num_cores,
            seed=config.seed,
            timer_counters_enabled=config.timer_counters,
        )
        self.simulator = simulator if simulator is not None else Simulator()
        self.policy = config.resolve_scheduler()
        self.executor = SimExecutor(
            self.machine, self.policy, self.cost_model, self.registry,
            self.simulator,
        )
        self.sampler = IntervalSampler(self.registry)
        #: live admission controller when ``config.overload`` bounds the
        #: queues; the governor reaches it through ``runtime.admission``
        self.admission = None
        if config.overload is not None and config.overload.admission is not None:
            self.admission = self.executor.install_admission(
                config.overload.admission
            )
        if config.trace:
            self.executor.enable_tracing()
        #: dynamic checker (``check=True``); also the handle for monitors
        self.checker: RuntimeChecker | None = (
            RuntimeChecker(f"Runtime[{self.platform.name}]")
            if config.check
            else None
        )
        self._ran = False

    @property
    def trace(self):
        """The run's :class:`repro.sim.trace.ExecutionTrace`, or None."""
        return self.executor.trace

    # -- work submission ----------------------------------------------------------

    def spawn(self, task: Task, worker: int | None = None) -> None:
        """Stage a raw :class:`Task` (Spawner protocol)."""
        self.executor.spawn(task, worker)

    def async_(
        self,
        fn: Callable[..., Any],
        *args: Any,
        work: WorkDescriptor | None = None,
        name: str = "",
        priority: Priority = Priority.NORMAL,
        qos: Any | None = None,
        worker: int | None = None,
    ) -> Future:
        """``hpx::async``: launch ``fn(*args)`` as a task, get its future."""
        result = Future(name or getattr(fn, "__name__", "async"))

        def body() -> None:
            try:
                value = fn(*args)
            except BaseException as exc:  # noqa: BLE001 - error channel
                result.set_exception(exc)
            else:
                result.set_value(value)

        task = Task(body, work=work, name=result.name, priority=priority, qos=qos)
        task.failure_hook = result.set_exception
        if self.checker is not None:
            self.checker.register_future(result)
        self.spawn(task, worker)
        return result

    def dataflow(
        self,
        fn: Callable[..., Any],
        dependencies: Sequence[Future],
        *,
        work: WorkDescriptor | None = None,
        name: str = "",
        priority: Priority = Priority.NORMAL,
        qos: Any | None = None,
    ) -> Future:
        """``hpx::dataflow``: run ``fn`` on dependency values when all ready."""
        result = _dataflow(
            self, fn, dependencies, work=work, name=name, priority=priority,
            qos=qos,
        )
        if self.checker is not None:
            self.checker.register_future(result)
        return result

    # -- driving -------------------------------------------------------------------

    def run(self, *, sample_interval_ns: int | None = None) -> RunResult:
        """Drive the simulation until every spawned task has terminated.

        ``sample_interval_ns`` installs periodic counter sampling (the
        paper's dynamic-measurement mode); samples are collected in
        ``self.sampler.samples``.
        """
        if self._ran:
            raise RuntimeError("Runtime instances are single-use; build a new one")
        self._ran = True

        if sample_interval_ns is not None:
            if sample_interval_ns <= 0:
                raise ValueError("sample_interval_ns must be positive")
            self.sampler.start(0)

            def tick() -> None:
                self.sampler.sample(self.simulator.now)
                if self.executor.outstanding_tasks > 0:
                    self.simulator.schedule(sample_interval_ns, tick)

            self.simulator.schedule(sample_interval_ns, tick)

        if self.checker is not None:
            # Pre-flight: a dependency cycle among registered futures can
            # never complete; report it by name instead of simulating into
            # a deadlock.
            self.checker.raise_if_findings(self.checker.cycle_findings())
        try:
            finish_ns = self.executor.run()
        except DeadlockError:
            if self.checker is not None:
                findings = self.checker.cycle_findings()
                if findings:
                    raise CheckError(findings) from None
            raise
        if self.checker is not None:
            # Post-run: every future the runtime handed out must be ready;
            # a pending one is a leaked (never-satisfiable) future.
            self.checker.raise_if_findings(
                self.checker.leak_findings() + self.checker.race_findings()
            )
        return RunResult(
            execution_time_ns=finish_ns,
            counters=self.registry.snapshot(finish_ns),
            platform_name=self.platform.name,
            num_cores=self.config.num_cores,
            tasks_executed=self.executor.total_spawned,
        )
