"""Work descriptors: how big is a task's computation?

The simulated executor cannot time a Python callable (wall-clock time would
reintroduce exactly the GIL distortion this reproduction avoids), so every
task carries a declarative description of its computation and the cost model
(:mod:`repro.sim.costmodel`) converts it to virtual nanoseconds:

- :class:`StencilWork` — "update N grid points of the 1-D heat stencil";
  duration depends on N, cache residency, and bandwidth contention;
- :class:`FixedWork` — a nominal duration in nanoseconds (micro-benchmarks,
  graph workloads);
- :class:`NoWork` — pure bookkeeping (e.g. a ``when_all`` continuation that
  only combines futures); costs a single nominal nanosecond of compute.

The thread executor ignores descriptors and measures real time instead.
"""

from __future__ import annotations

from dataclasses import dataclass


class WorkDescriptor:
    """Base marker type; see module docstring."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class StencilWork(WorkDescriptor):
    """One heat-diffusion partition update of ``points`` grid points."""

    points: int

    def __post_init__(self) -> None:
        if self.points <= 0:
            raise ValueError(f"points must be positive, got {self.points}")


@dataclass(frozen=True, slots=True)
class FixedWork(WorkDescriptor):
    """A computation of a nominal ``ns`` nanoseconds on the target platform."""

    ns: int

    def __post_init__(self) -> None:
        if self.ns <= 0:
            raise ValueError(f"ns must be positive, got {self.ns}")


@dataclass(frozen=True, slots=True)
class NoWork(WorkDescriptor):
    """Bookkeeping-only task; contributes (almost) no compute time."""
