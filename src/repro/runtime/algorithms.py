"""Parallel algorithms with chunking policies — HPX's own grain-size knob.

The paper tunes grain size by hand through the stencil's partition
parameter.  HPX's parallel algorithms expose the same knob as *executor
parameters*: ``static_chunk_size`` fixes the iterations-per-task,
``auto_chunk_size`` measures a few iterations at runtime and picks a chunk
whose duration hits a target — i.e. exactly the paper's "determine
granularity and adjust it at runtime", shipped as a library policy.

This module provides both over the :class:`repro.runtime.runtime.Runtime`
API:

- :func:`parallel_for_each` — apply ``fn`` to every item, chunked;
- :func:`parallel_reduce` — chunked partial folds plus a pairwise
  combination tree (associative ``op`` required);
- chunking policies :class:`StaticChunkSize`, :class:`FixedChunkCount`,
  and :class:`AutoChunkSize`.

``AutoChunkSize`` works inside the virtual timeline: it launches a probe
task over a small prefix, reads the probe's *measured* execution time from
the task accounting (the same ``exec_ns`` the counters aggregate), computes
items-per-chunk so a chunk lasts ``target_chunk_ns``, and only then spawns
the remaining chunks.  The same code path works on the thread executor,
where ``exec_ns`` is wall time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.runtime.future import Future, when_all
from repro.runtime.task import Task
from repro.runtime.work import FixedWork


@dataclass(frozen=True)
class StaticChunkSize:
    """Fixed items per task (HPX's ``static_chunk_size``)."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("chunk size must be >= 1")


@dataclass(frozen=True)
class FixedChunkCount:
    """Split the range into exactly ``count`` tasks (ceil division)."""

    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("chunk count must be >= 1")


@dataclass(frozen=True)
class AutoChunkSize:
    """Measure, then choose: HPX's ``auto_chunk_size``.

    A probe task executes ``probe_items`` items; the per-item time it
    *measures* sizes the remaining chunks to last ``target_chunk_ns`` each.
    ``target_chunk_ns`` defaults to 200 us — comfortably inside the paper's
    usable medium-grain region on every modelled platform.
    """

    target_chunk_ns: int = 200_000
    probe_items: int = 8

    def __post_init__(self) -> None:
        if self.target_chunk_ns < 1:
            raise ValueError("target_chunk_ns must be >= 1")
        if self.probe_items < 1:
            raise ValueError("probe_items must be >= 1")


ChunkPolicy = StaticChunkSize | FixedChunkCount | AutoChunkSize


def _chunk_bounds(n_items: int, chunk: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + chunk, n_items)) for lo in range(0, n_items, chunk)]


def _spawn_chunk(
    runtime,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    lo: int,
    hi: int,
    item_ns: int,
    collect: Callable[[int, list], None] | None,
) -> tuple[Future, Task]:
    """One chunk task; returns (future, task) so callers can read exec_ns."""
    result = Future(f"chunk[{lo}:{hi}]")

    def body() -> None:
        try:
            values = [fn(items[i]) for i in range(lo, hi)]
        except BaseException as exc:  # noqa: BLE001 - error channel
            result.set_exception(exc)
            return
        if collect is not None:
            collect(lo, values)
        result.set_value(hi - lo)

    task = Task(
        body,
        work=FixedWork(max(1, (hi - lo) * item_ns)),
        name=result.name,
    )
    runtime.spawn(task)
    return result, task


def parallel_for_each(
    runtime,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    item_ns: int = 1_000,
    chunk: ChunkPolicy | None = None,
) -> Future:
    """Apply ``fn`` to every item; returns a future of the item count.

    ``item_ns`` is the modelled per-item cost (ignored by the thread
    executor, which measures real time).  ``chunk`` defaults to
    :class:`AutoChunkSize`.
    """
    if chunk is None:
        chunk = AutoChunkSize()
    n = len(items)
    result = Future("parallel_for_each")
    if n == 0:
        result.set_value(0)
        return result

    def finish(futures: list[Future]) -> None:
        combined = when_all(futures, name="for_each:barrier")

        def done(_f: Future) -> None:
            failed = next((f for f in futures if f.has_exception), None)
            if failed is not None:
                result.set_exception(failed.exception)  # type: ignore[arg-type]
            else:
                result.set_value(sum(f.value for f in futures))

        combined.on_ready(done)

    if isinstance(chunk, StaticChunkSize):
        size = chunk.size
    elif isinstance(chunk, FixedChunkCount):
        size = max(1, math.ceil(n / chunk.count))
    else:
        # AutoChunkSize: probe first, then spawn the rest.
        probe_hi = min(chunk.probe_items, n)
        probe_future, probe_task = _spawn_chunk(
            runtime, fn, items, 0, probe_hi, item_ns, None
        )

        def after_probe(f: Future) -> None:
            if f.has_exception:
                result.set_exception(f.exception)  # type: ignore[arg-type]
                return
            per_item = max(1.0, probe_task.exec_ns / probe_hi)
            size = max(1, int(chunk.target_chunk_ns / per_item))
            futures = [probe_future]
            for lo, hi in _chunk_bounds(n - probe_hi, size):
                fut, _ = _spawn_chunk(
                    runtime, fn, items, probe_hi + lo, probe_hi + hi,
                    item_ns, None,
                )
                futures.append(fut)
            finish(futures)

        probe_future.on_ready(after_probe)
        return result

    futures = [
        _spawn_chunk(runtime, fn, items, lo, hi, item_ns, None)[0]
        for lo, hi in _chunk_bounds(n, size)
    ]
    finish(futures)
    return result


def parallel_reduce(
    runtime,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    op: Callable[[Any, Any], Any],
    initial: Any,
    *,
    item_ns: int = 1_000,
    combine_ns: int = 500,
    chunk: ChunkPolicy | None = None,
) -> Future:
    """Map ``fn`` over items and fold with associative ``op``.

    Chunk tasks fold their slice locally; partial results combine in a
    pairwise dataflow tree (depth ⌈log2(chunks)⌉), as a work-efficient
    parallel reduction should.
    """
    if chunk is None:
        chunk = StaticChunkSize(max(1, math.ceil(len(items) / 64)))
    if isinstance(chunk, AutoChunkSize):
        raise NotImplementedError(
            "auto-chunked reduce is not supported; probe with "
            "parallel_for_each and pass a StaticChunkSize"
        )
    n = len(items)
    if n == 0:
        f = Future("parallel_reduce")
        f.set_value(initial)
        return f
    if isinstance(chunk, FixedChunkCount):
        size = max(1, math.ceil(n / chunk.count))
    else:
        size = chunk.size

    def fold_chunk(lo: int, hi: int) -> Future:
        out = Future(f"reduce[{lo}:{hi}]")

        def body() -> None:
            try:
                acc = fn(items[lo])
                for i in range(lo + 1, hi):
                    acc = op(acc, fn(items[i]))
            except BaseException as exc:  # noqa: BLE001 - error channel
                out.set_exception(exc)
            else:
                out.set_value(acc)

        runtime.spawn(
            Task(body, work=FixedWork(max(1, (hi - lo) * item_ns)), name=out.name)
        )
        return out

    level = [fold_chunk(lo, hi) for lo, hi in _chunk_bounds(n, size)]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                runtime.dataflow(
                    op,
                    [level[i], level[i + 1]],
                    work=FixedWork(combine_ns),
                    name="reduce:combine",
                )
            )
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt

    final = Future("parallel_reduce")
    level[0].on_ready(
        lambda f: final.set_exception(f.exception)  # type: ignore[arg-type]
        if f.has_exception
        else final.set_value(op(initial, f.value))
    )
    return final
