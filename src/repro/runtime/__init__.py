"""HPX-like task runtime: lightweight tasks, futures, executors.

The package mirrors the HPX constructs the paper relies on:

- :mod:`repro.runtime.task` — the HPX-thread object: five states
  (staged, pending, active, suspended, terminated), thread phases, priority,
  and per-task time accounting;
- :mod:`repro.runtime.future` — ``Future`` with ``then`` / ``when_all`` /
  ``dataflow`` composition, the mechanism HPX-Stencil uses to express its
  dependency graph (paper Fig. 2);
- :mod:`repro.runtime.work` — work descriptors that tell the cost model how
  large a task's computation is (``async_``/``dataflow`` live on
  :class:`repro.runtime.runtime.Runtime` itself);
- :mod:`repro.runtime.sim_executor` — workers driven by the discrete-event
  simulator (all quantitative experiments);
- :mod:`repro.runtime.thread_executor` — the same scheduler running on real
  OS threads (API demos and correctness tests; never used for measurements
  because the GIL distorts fine-grained timings);
- :mod:`repro.runtime.runtime` — the facade tying platform, scheduler,
  counters and executor together.
"""

from repro.runtime.algorithms import (
    AutoChunkSize,
    FixedChunkCount,
    StaticChunkSize,
    parallel_for_each,
    parallel_reduce,
)
from repro.runtime.future import (
    Future,
    FutureError,
    dataflow,
    then,
    when_all,
    when_any,
)
from repro.runtime.runtime import Runtime, RuntimeConfig, RunResult
from repro.runtime.task import Priority, Task, TaskState
from repro.runtime.work import FixedWork, NoWork, StencilWork, WorkDescriptor

__all__ = [
    "AutoChunkSize",
    "FixedChunkCount",
    "StaticChunkSize",
    "parallel_for_each",
    "parallel_reduce",
    "Future",
    "FutureError",
    "dataflow",
    "then",
    "when_all",
    "when_any",
    "Runtime",
    "RuntimeConfig",
    "RunResult",
    "Priority",
    "Task",
    "TaskState",
    "WorkDescriptor",
    "FixedWork",
    "NoWork",
    "StencilWork",
]
