"""The task object — a simulated HPX-thread.

From the paper (Sec. I-B): "The five HPX-thread states are staged, pending,
active, suspended, and terminated.  An HPX-thread is first created by the
thread scheduler as a thread description, and placed in a staged queue. [...]
The thread scheduler will eventually remove the staged HPX-thread, transform
it into an object with a context, and place it in a pending queue where it is
ready to run.  Once an HPX-thread is running, it is in the active state, and
can suspend itself for synchronization or communication."

:class:`Task` implements that lifecycle plus the per-task accounting the
paper's counters are built from: cumulative execution time (t_exec),
cumulative management overhead, and the phase count (each activation — first
run or resume after suspension — is one *thread phase*).

A task body is either a plain callable (single phase) or a generator that
yields :class:`repro.runtime.future.Future` instances to suspend on; each
resumption is a new phase, mirroring HPX's cooperative yield.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.runtime.work import NoWork, WorkDescriptor


class TaskState(enum.Enum):
    """The five HPX-thread states (paper Sec. I-B)."""

    STAGED = "staged"
    PENDING = "pending"
    ACTIVE = "active"
    SUSPENDED = "suspended"
    TERMINATED = "terminated"


class Priority(enum.IntEnum):
    """Scheduling priority; the Priority Local scheduler keeps separate
    queues for HIGH and a single shared queue for LOW (paper Sec. I-B)."""

    LOW = 0
    NORMAL = 1
    HIGH = 2


#: Transitions allowed by the lifecycle; enforced in :meth:`Task.set_state`.
_ALLOWED_TRANSITIONS: dict[TaskState, frozenset[TaskState]] = {
    TaskState.STAGED: frozenset({TaskState.PENDING}),
    TaskState.PENDING: frozenset({TaskState.ACTIVE}),
    TaskState.ACTIVE: frozenset({TaskState.SUSPENDED, TaskState.TERMINATED}),
    TaskState.SUSPENDED: frozenset({TaskState.PENDING}),
    TaskState.TERMINATED: frozenset(),
}

class _TaskIdSource:
    """1-based task-id counter whose position can be read without consuming.

    ``next(...)`` hands out ids exactly like ``itertools.count(1)`` did;
    :func:`tasks_created` peeks at how many tasks have been constructed so
    far process-wide, which is what ``BENCH_<rev>.json`` records per
    experiment (a cheap proxy for workload size alongside wall time).
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 1

    def __iter__(self) -> "_TaskIdSource":
        return self

    def __next__(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def created(self) -> int:
        return self._next - 1


_task_ids = _TaskIdSource()


def tasks_created() -> int:
    """Total :class:`Task` objects constructed so far in this process."""
    return _task_ids.created()


class Task:
    """A lightweight user-level thread.

    Like HPX-threads, tasks are first-class: each has a unique id (the
    single-locality analogue of a global name), a state, a priority, and its
    own time accounting.
    """

    __slots__ = (
        "task_id",
        "name",
        "fn",
        "work",
        "priority",
        "qos",
        "state",
        "phases",
        "exec_ns",
        "overhead_ns",
        "created_ns",
        "terminated_ns",
        "home_worker",
        "_generator",
        "result",
        "failure_hook",
        "cancelled",
    )

    def __init__(
        self,
        fn: Callable[[], Any] | None,
        *,
        work: WorkDescriptor | None = None,
        name: str = "",
        priority: Priority = Priority.NORMAL,
        qos: Any | None = None,
    ) -> None:
        self.task_id: int = next(_task_ids)
        self.name = name or f"task#{self.task_id}"
        self.fn = fn
        self.work: WorkDescriptor = work if work is not None else NoWork()
        self.priority = priority
        #: optional :class:`repro.qos.QosClass`; None for single-class
        #: workloads.  Schedulers and admission control that are not
        #: QoS-aware ignore it entirely.
        self.qos = qos
        self.state = TaskState.STAGED
        #: activations so far (first run + resumes); the phase counters
        self.phases: int = 0
        #: cumulative virtual execution time (contributes to sum t_exec)
        self.exec_ns: int = 0
        #: cumulative management time charged to this task
        self.overhead_ns: int = 0
        self.created_ns: int = 0
        self.terminated_ns: int = 0
        #: worker whose staged queue the task was placed in
        self.home_worker: int = -1
        self._generator = None
        self.result: Any = None
        #: called with an exception if the task is discarded before it can
        #: run (admission-control shedding); normally the paired future's
        #: ``set_exception``, so consumers observe a typed failure
        self.failure_hook: Callable[[BaseException], None] | None = None
        #: set by ``SimExecutor.cancel_task`` (speculative first-wins lost):
        #: the body never runs (again); the task retires without counting
        #: as a completed HPX-thread
        self.cancelled: bool = False

    # -- lifecycle -----------------------------------------------------------

    def set_state(self, new_state: TaskState) -> None:
        """Transition the lifecycle, enforcing the HPX state machine."""
        if new_state not in _ALLOWED_TRANSITIONS[self.state]:
            raise RuntimeError(
                f"illegal task transition {self.state.value} -> {new_state.value} "
                f"for {self.name}"
            )
        self.state = new_state

    def begin_phase(self) -> int:
        """Record an activation; returns the (1-based) phase number."""
        self.phases += 1
        return self.phases

    @property
    def is_terminated(self) -> bool:
        return self.state is TaskState.TERMINATED

    @property
    def func_ns(self) -> int:
        """Per-task t_func: execution plus management time."""
        return self.exec_ns + self.overhead_ns

    @property
    def debug_name(self) -> str:
        """Stable human-readable identity for analyzer and trace findings."""
        return f"{self.name} (#{self.task_id})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Task #{self.task_id} {self.name!r} state={self.state.value} "
            f"prio={self.priority.name} phases={self.phases}>"
        )
