"""Futures and dataflow composition.

HPX-Stencil expresses its dependency graph (paper Fig. 2) with
``hpx::future`` objects combined "sequentially and in parallel" so that "the
Future objects represent the terminal nodes and their combination represents
the edges and the intermediate nodes of the dependency graph" (Sec. I-C).

This module gives the Python runtime the same compositional facilities:

- :class:`Future` — single-assignment shared state with ready-callbacks;
- :func:`when_all` — a future that becomes ready when all inputs are ready
  (no task is spawned; it is pure bookkeeping, as in HPX);
- :func:`dataflow` — spawns a task when every dependency is ready, passing
  the dependency *values* to the task body (HPX's unwrapped ``dataflow``);
  this is the construct the stencil's per-partition updates are built from.

Continuations run in the scheduling context of whichever task made the final
dependency ready, so spawned work lands in that worker's staged queue — the
same locality behaviour HPX's scheduler exhibits.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Protocol, Sequence

from repro.runtime.task import Priority, Task
from repro.runtime.work import NoWork, WorkDescriptor


class FutureError(RuntimeError):
    """Raised for protocol violations (double set, reading unready value)."""


class _FutureState(enum.Enum):
    PENDING = "pending"
    READY = "ready"
    EXCEPTION = "exception"


class Spawner(Protocol):
    """The executor surface futures need: create a task near the caller."""

    def spawn(self, task: Task) -> None:  # pragma: no cover - protocol
        ...


class Future:
    """Single-assignment value with ready-callbacks.

    Unlike ``concurrent.futures.Future`` this is *not* thread-safe by itself;
    the simulated executor is single-threaded by construction and the thread
    executor wraps state changes in its own lock.
    """

    __slots__ = (
        "_state",
        "_value",
        "_exception",
        "_callbacks",
        "name",
        "future_id",
        "dependencies",
    )

    #: process-wide id source; ids are stable within a run, so analyzer and
    #: trace findings can say "future 'reduce' (#42)" instead of "a future"
    _ids = itertools.count(1)

    def __init__(self, name: str = "") -> None:
        self._state = _FutureState.PENDING
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[[Future], None]] | None = None
        self.future_id: int = next(Future._ids)
        self.name = name or f"future#{self.future_id}"
        #: the futures this one was composed from (when_all/when_any/
        #: dataflow/then record their inputs here); the analyzer's
        #: graph_from_futures walks these edges
        self.dependencies: tuple["Future", ...] = ()

    # -- producer side -------------------------------------------------------

    def set_value(self, value: Any) -> None:
        """Fulfil the future; runs (and clears) all registered callbacks."""
        if self._state is not _FutureState.PENDING:
            raise FutureError(f"future {self.name!r} already satisfied")
        self._value = value
        self._state = _FutureState.READY
        self._fire()

    def set_exception(self, exception: BaseException) -> None:
        """Fail the future; callbacks still fire (they observe the error)."""
        if self._state is not _FutureState.PENDING:
            raise FutureError(f"future {self.name!r} already satisfied")
        self._exception = exception
        self._state = _FutureState.EXCEPTION
        self._fire()

    def _fire(self) -> None:
        callbacks = self._callbacks
        self._callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(self)

    # -- consumer side --------------------------------------------------------

    @property
    def is_ready(self) -> bool:
        """True once a value or exception has been set."""
        return self._state is not _FutureState.PENDING

    @property
    def has_exception(self) -> bool:
        return self._state is _FutureState.EXCEPTION

    @property
    def value(self) -> Any:
        """The value; re-raises a stored exception; errors if unready."""
        if self._state is _FutureState.READY:
            return self._value
        if self._state is _FutureState.EXCEPTION:
            assert self._exception is not None
            raise self._exception
        raise FutureError(f"future {self.name!r} is not ready")

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    def on_ready(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` when ready (immediately if already ready)."""
        if self._state is not _FutureState.PENDING:
            callback(self)
            return
        if self._callbacks is None:
            self._callbacks = []
        self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Future #{self.future_id} {self.name!r} {self._state.value}>"


def make_ready_future(value: Any, name: str = "") -> Future:
    """A future that is already fulfilled — HPX's ``make_ready_future``."""
    f = Future(name)
    f.set_value(value)
    return f


def when_all(futures: Sequence[Future], name: str = "") -> Future:
    """A future of the input futures, ready when every input is ready.

    Matches ``hpx::when_all``: the result's value is the list of (now ready)
    input futures, and readiness does not consume a task — it is bookkeeping
    attached to the inputs' completion.
    """
    result = Future(name or "when_all")
    result.dependencies = tuple(futures)
    remaining = len(futures)
    if remaining == 0:
        result.set_value([])
        return result
    # A one-slot list lets the closure mutate the count without a class.
    state = [remaining]

    def one_done(_f: Future) -> None:
        state[0] -= 1
        if state[0] == 0:
            result.set_value(list(futures))

    for f in futures:
        f.on_ready(one_done)
    return result


def when_any(futures: Sequence[Future], name: str = "") -> Future:
    """A future ready as soon as *any* input is ready — ``hpx::when_any``.

    The result's value is the (index, future) pair of the first input to
    become ready (ties broken by input order, deterministically).  Requires
    at least one input; an empty argument can never become ready.
    """
    if not futures:
        raise ValueError("when_any() requires at least one future")
    result = Future(name or "when_any")
    result.dependencies = tuple(futures)

    def one_done(index: int, f: Future) -> None:
        if not result.is_ready:
            result.set_value((index, f))

    for i, f in enumerate(futures):
        f.on_ready(lambda f, i=i: one_done(i, f))
        if result.is_ready:
            break
    return result


def then(
    spawner: Spawner,
    future: Future,
    fn: Callable[[Future], Any],
    *,
    work: WorkDescriptor | None = None,
    name: str = "",
    priority: Priority = Priority.NORMAL,
) -> Future:
    """Attach a continuation task — ``hpx::future::then``.

    Unlike :func:`dataflow`, the continuation receives the *future* itself
    (ready or failed), so error handling happens inside ``fn``; the task is
    spawned even when ``future`` carries an exception.
    """
    result = Future(name or getattr(fn, "__name__", "then"))
    result.dependencies = (future,)

    def body() -> None:
        try:
            value = fn(future)
        except BaseException as exc:  # noqa: BLE001 - error channel
            result.set_exception(exc)
        else:
            result.set_value(value)

    def launch(_ready: Future) -> None:
        task = Task(body, work=work or NoWork(), name=result.name, priority=priority)
        task.failure_hook = result.set_exception
        spawner.spawn(task)

    future.on_ready(launch)
    return result


def dataflow(
    spawner: Spawner,
    fn: Callable[..., Any],
    dependencies: Sequence[Future],
    *,
    work: WorkDescriptor | None = None,
    name: str = "",
    priority: Priority = Priority.NORMAL,
    qos: Any | None = None,
) -> Future:
    """Spawn ``fn(*values)`` as a task once every dependency is ready.

    Returns the future of ``fn``'s result.  If any dependency carries an
    exception, the task is never spawned and the exception propagates to the
    result (first failing dependency wins), which is how an HPX dataflow
    surfaces errors at ``.get()``.
    """
    result = Future(name or getattr(fn, "__name__", "dataflow"))
    deps = list(dependencies)
    result.dependencies = tuple(deps)

    def body() -> None:
        try:
            value = fn(*(d.value for d in deps))
        except BaseException as exc:  # noqa: BLE001 - error channel
            result.set_exception(exc)
        else:
            result.set_value(value)

    def launch(_ready: Future) -> None:
        failed = next((d for d in deps if d.has_exception), None)
        if failed is not None:
            result.set_exception(failed.exception)  # type: ignore[arg-type]
            return
        task = Task(
            body, work=work or NoWork(), name=result.name, priority=priority,
            qos=qos,
        )
        task.failure_hook = result.set_exception
        spawner.spawn(task)

    when_all(deps, name=f"{result.name}:deps").on_ready(launch)
    return result
