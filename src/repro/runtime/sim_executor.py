"""Simulated executor: HPX worker threads driven by the discrete-event engine.

Each simulated worker is a state machine:

- **searching** — runs the scheduling policy's ``find_work``; on a hit it
  charges the management costs (staged→pending conversion, steal penalty,
  context switch), asks the cost model for the task's virtual duration, and
  schedules its own completion;
- **idle** — no work anywhere; backs off exponentially while tasks remain
  outstanding (the backoff polls are charged to the queue-access counters,
  coalescing the spinning a real HPX worker would do);
- **dormant** — the program has no outstanding tasks; the worker stops.

Cost charging follows HPX's actual division of labour: creating a task into
a staged queue is nearly free (a thread *description*); the expensive part —
constructing the context — happens when the consumer converts staged→pending
(Sec. I-B), so the (create + convert) budget is charged at conversion time,
the switch cost at activation, and steal penalties on top when the work came
from another worker's queues.

Accounting feeds the same counters HPX exposes.  The *func* time underlying
the idle-rate (Eq. 1) is the total worker wall time (cores x elapsed), which
is how HPX's ``/threads/idle-rate`` behaves: it charges both management and
*starvation* against the budget, producing the paper's coarse-grain idle-rate
rise (Sec. IV-A).
"""

from __future__ import annotations

import inspect

from typing import TYPE_CHECKING

from repro.counters.registry import CounterRegistry
from repro.runtime.future import Future
from repro.runtime.task import Task, TaskState
from repro.runtime.work import FixedWork, NoWork, StencilWork
from repro.schedulers.base import FoundWork, SchedulingPolicy, WorkSource
from repro.sim.costmodel import CostModel
from repro.sim.engine import Event, Simulator
from repro.sim.machine import Machine
from repro.sim.trace import ExecutionTrace, PhaseRecord, SpawnRecord, StealRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.overload.admission import AdmissionControl, AdmissionParams

#: WorkSource -> provenance label recorded in traces
_SOURCE_LABELS = {
    WorkSource.LOCAL_PENDING: "local",
    WorkSource.LOCAL_STAGED: "local",
    WorkSource.NUMA_STAGED: "numa",
    WorkSource.NUMA_PENDING: "numa",
    WorkSource.REMOTE_STAGED: "remote",
    WorkSource.REMOTE_PENDING: "remote",
    WorkSource.HIGH_PRIORITY: "high-priority",
    WorkSource.LOW_PRIORITY: "low-priority",
}


class DeadlockError(RuntimeError):
    """Raised when tasks remain outstanding but nothing can ever run them."""


#: Virtual cost of a bookkeeping-only (:class:`NoWork`) task body.
_NO_WORK_NS = 50


class _SimWorker:
    """Per-worker simulation state and time accounting."""

    __slots__ = (
        "index",
        "exec_ns",
        "mgmt_ns",
        "tasks_executed",
        "phases_executed",
        "consecutive_misses",
        "wake_event",
        "busy",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.exec_ns: int = 0
        self.mgmt_ns: int = 0
        self.tasks_executed: int = 0
        self.phases_executed: int = 0
        self.consecutive_misses: int = 0
        self.wake_event: Event | None = None
        self.busy: bool = False


class SimExecutor:
    """Runs a task graph to completion in virtual time.

    Implements the ``Spawner`` protocol used by :func:`repro.runtime.future.
    dataflow`, so application code is identical under both executors.
    """

    def __init__(
        self,
        machine: Machine,
        policy: SchedulingPolicy,
        cost_model: CostModel,
        registry: CounterRegistry,
        simulator: Simulator | None = None,
    ) -> None:
        self.machine = machine
        self.policy = policy
        self.cost_model = cost_model
        self.registry = registry
        self.sim = simulator if simulator is not None else Simulator()
        policy.attach(machine)
        n = machine.num_cores
        self.workers = [_SimWorker(i) for i in range(n)]
        self._busy_count = 0
        self._outstanding = 0
        self._total_spawned = 0
        self._current_worker: int | None = None
        #: the task whose body (or completion callbacks) is running right
        #: now; spawn parentage in traces comes from here
        self._current_task: Task | None = None
        self._spawn_rr = 0
        #: workers currently in idle backoff, keyed by index (wake fast path)
        self._sleepers: dict[int, _SimWorker] = {}
        #: optional event record; see :meth:`enable_tracing`
        self.trace: ExecutionTrace | None = None
        #: workers with index >= this limit park instead of polling
        #: (Porterfield-style concurrency throttling, paper Sec. V/VI)
        self._active_limit = n
        self._parked: dict[int, _SimWorker] = {}
        self.finish_ns: int | None = None
        #: fail-stop flag; see :meth:`halt`
        self._halted = False
        #: set by the first :meth:`start_workers`; gates dormancy restart so
        #: pre-run spawns do not schedule search events early (which would
        #: perturb the deterministic event order of existing runs)
        self._started = False
        #: admission controller, installed by :meth:`install_admission`
        self.admission: "AdmissionControl | None" = None
        #: observer called with every spawned task (after staging); the tail
        #: layer uses it to map futures to tasks for loser cancellation
        self.on_spawn = None
        #: completion events of active phases, keyed by task id, so an
        #: active task can be cancelled before its phase elapses
        self._inflight: dict[int, tuple[Event, _SimWorker]] = {}
        #: tasks retired by :meth:`cancel_task` (not counted as completed)
        self.cancelled_tasks = 0
        self._register_counters()

    # -- counters ---------------------------------------------------------------

    def _register_counters(self) -> None:
        reg = self.registry
        n = self.machine.num_cores

        def total_exec() -> float:
            return float(sum(w.exec_ns for w in self.workers))

        def total_func() -> float:
            end = self.finish_ns if self.finish_ns is not None else self.sim.now
            return float(n * end)

        def idle_rate() -> float:
            func = total_func()
            if func <= 0:
                return 0.0
            return (func - total_exec()) / func

        reg.derived("/threads/time/cumulative", total_exec,
                    "running sum of task execution times (ns)")
        reg.derived("/threads/time/cumulative-func", total_func,
                    "total worker wall time (ns): cores x elapsed")
        reg.derived("/threads/idle-rate", idle_rate,
                    "thread-management ratio, Eq. 1")
        reg.derived("/runtime/uptime",
                    lambda: float(self.finish_ns if self.finish_ns is not None
                                  else self.sim.now),
                    "virtual time since runtime start (ns)")

        stats = self.policy.aggregate_stats
        reg.derived("/threads/count/pending-accesses",
                    lambda: float(stats().pending_accesses),
                    "pending-queue lookups")
        reg.derived("/threads/count/pending-misses",
                    lambda: float(stats().pending_misses),
                    "pending-queue lookups that found nothing")
        reg.derived("/threads/count/staged-accesses",
                    lambda: float(stats().staged_accesses),
                    "staged-queue lookups")
        reg.derived("/threads/count/staged-misses",
                    lambda: float(stats().staged_misses),
                    "staged-queue lookups that found nothing")

        self._c_tasks = reg.raw("/threads/count/cumulative",
                                "HPX-threads executed, n_t")
        self._c_phases = reg.raw("/threads/count/cumulative-phases",
                                 "thread phases executed")
        self._c_stolen = reg.raw("/threads/count/stolen",
                                 "tasks taken from another worker")
        self._c_stolen_staged = reg.raw("/threads/count/stolen-staged",
                                        "staged tasks taken from another worker")
        self._c_avg = reg.average("/threads/time/average",
                                  "average task execution time t_d, Eq. 2")
        self._c_avg_overhead = reg.average("/threads/time/average-overhead",
                                           "average per-task management t_o")
        self._c_avg_phase = reg.average("/threads/time/average-phase",
                                        "average phase duration")
        self._c_avg_phase_overhead = reg.average(
            "/threads/time/average-phase-overhead",
            "average per-phase management time")

        for w in self.workers:
            prefix = f"/threads{{locality#0/worker-thread#{w.index}}}"
            reg.derived(f"{prefix}/time/cumulative",
                        (lambda ww: lambda: float(ww.exec_ns))(w),
                        "per-worker execution time")
            reg.derived(f"{prefix}/count/cumulative",
                        (lambda ww: lambda: float(ww.tasks_executed))(w),
                        "per-worker task count")
            reg.value(f"{prefix}/count/queue-depth@gauge",
                      "staged+pending tasks homed on this worker",
                      source=(lambda i: lambda: float(
                          self.policy.worker_queue_depth(i)))(w.index))

    def enable_tracing(self) -> ExecutionTrace:
        """Attach (and return) an :class:`ExecutionTrace` recording every
        phase and steal of the run.  Call before :meth:`run`."""
        if self.trace is None:
            self.trace = ExecutionTrace(num_workers=len(self.workers))
        return self.trace

    # -- spawning -----------------------------------------------------------------

    def spawn(self, task: Task, worker: int | None = None) -> None:
        """Stage ``task`` near a worker.

        Placement: the explicitly requested worker, else the worker in whose
        completion context we are running (HPX locality behaviour: dataflow
        continuations stage where the final dependency completed), else
        round-robin for top-level spawns.
        """
        if self._halted:
            return  # a dead locality accepts no work; the parcel layer
            # and the DistRuntime stuck-check account for the loss
        if worker is None:
            worker = self._current_worker
        if worker is None:
            worker = self._spawn_rr
            self._spawn_rr = (self._spawn_rr + 1) % len(self.workers)
        task.created_ns = self.sim.now
        self._outstanding += 1
        self._total_spawned += 1
        if self.trace is not None:
            parent = self._current_task
            self.trace.record_spawn(
                SpawnRecord(
                    parent_task_id=parent.task_id if parent is not None else None,
                    child_task_id=task.task_id,
                    child_name=task.name,
                    time_ns=self.sim.now,
                )
            )
        self.policy.enqueue_staged(task, worker)
        if self.on_spawn is not None:
            self.on_spawn(task)
        self._wake_idle_workers()
        self._maybe_restart_workers()

    def _requeue_resumed(self, task: Task, worker: int) -> None:
        """Suspended → pending (the thread keeps its context)."""
        if self._halted:
            return
        if task.cancelled:
            self._retire_cancelled(task)
            return
        task.set_state(TaskState.PENDING)
        self.policy.enqueue_pending(task, worker)
        self._wake_idle_workers()
        self._maybe_restart_workers()

    def _maybe_restart_workers(self) -> None:
        """Bring a dormant pool back to life when new work appears.

        A single-launch run never needs this: every mid-run spawn happens in
        a task's completion context (``_current_worker`` is set), so worker
        wake-up is handled by :meth:`_wake_idle_workers` alone.  Under
        :class:`repro.dist.DistRuntime`, however, an *external* event — a
        parcel delivery satisfying a proxy future — can enqueue work on a
        locality whose workers all went dormant when its first wave of tasks
        drained.  Dormant workers hold no wake events, so without this hook
        the new work would sit in the queues forever and the run would be
        misreported as a deadlock.
        """
        if self._halted or not self._started or self._current_worker is not None:
            return
        if self._busy_count > 0 or self._sleepers:
            return
        self.start_workers()

    def _wake_idle_workers(self) -> None:
        """New work arrived: collapse idle backoffs into an immediate poll.

        A real HPX worker spins and would notice new work within a
        microsecond; the simulated worker sleeps between polls, so enqueue
        events pull every sleeper forward to "now".
        """
        if not self._sleepers:
            return
        now = self.sim.now
        sleepers = list(self._sleepers.values())
        self._sleepers.clear()
        for w in sleepers:
            if w.wake_event is not None:
                w.wake_event.cancel()
                w.wake_event = None
                w.consecutive_misses = 0
                self.sim.schedule_at(now, (lambda ww: lambda: self._search(ww))(w))

    # -- the worker state machine ----------------------------------------------------

    # -- concurrency throttling ------------------------------------------------------

    @property
    def active_worker_limit(self) -> int:
        return self._active_limit

    def set_active_worker_limit(self, limit: int) -> None:
        """Throttle the pool to its first ``limit`` workers.

        Workers at or beyond the limit park after their current task; when
        the limit rises again, parked workers resume searching.  This is the
        actuation primitive of Porterfield-style adaptive scheduling
        (paper Sec. V), driven here by :mod:`repro.core.policy`.
        """
        n = len(self.workers)
        limit = min(max(1, limit), n)
        old = self._active_limit
        self._active_limit = limit
        if limit > old:
            now = self.sim.now
            for index in [i for i in self._parked if i < limit]:
                w = self._parked.pop(index)
                self.sim.schedule_at(now, (lambda ww: lambda: self._search(ww))(w))

    def _search(self, worker: _SimWorker) -> None:
        """One work-finding attempt; runs the policy and dispatches."""
        worker.wake_event = None
        self._sleepers.pop(worker.index, None)
        if self._halted:
            return
        if worker.index >= self._active_limit:
            self._parked[worker.index] = worker
            return
        found = self.policy.find_work(worker.index)
        if found is None:
            if self._outstanding == 0:
                return  # dormant; nothing will ever arrive
            if self._busy_count == 0 and self.policy.queued_tasks() == 0:
                # Every remaining task is suspended on a future that no
                # runnable task can ever satisfy.  Stop polling so the event
                # heap drains and run() reports the deadlock instead of
                # spinning in virtual time forever.
                self._cancel_all_wakeups()
                return
            worker.consecutive_misses += 1
            delay = self.cost_model.idle_backoff_ns(worker.consecutive_misses)
            worker.wake_event = self.sim.schedule(
                delay, lambda: self._search(worker)
            )
            self._sleepers[worker.index] = worker
            return
        worker.consecutive_misses = 0
        self._dispatch(worker, found)

    def _dispatch(self, worker: _SimWorker, found: FoundWork) -> None:
        """Charge management costs and start one phase of the task."""
        task = found.task
        if task.cancelled:
            # A queued loser of a speculative race: retire it the moment a
            # worker pulls it, charging nothing — the clone already won.
            self._retire_cancelled(task)
            self._search(worker)
            return
        source = found.source
        active = self._busy_count + 1
        costs = self.cost_model.task_costs(active)

        mgmt_ns = costs.switch_ns + self.policy.shared_structure_penalty_ns(active)
        if task.state is TaskState.STAGED:
            # The staged->pending conversion constructs the context; HPX's
            # thread-description creation cost is folded in here because
            # that is where the object is actually built (Sec. I-B).
            mgmt_ns += costs.create_ns + costs.convert_ns
            task.set_state(TaskState.PENDING)
        if source.was_stolen:
            mgmt_ns += self.cost_model.steal_cost_ns(
                same_domain=source.same_domain
            )
            self._c_stolen.increment()
            if source.was_staged:
                self._c_stolen_staged.increment()
            if self.trace is not None:
                self.trace.record_steal(
                    StealRecord(
                        thief=worker.index,
                        time_ns=self.sim.now,
                        same_domain=source.same_domain,
                        staged=source.was_staged,
                    )
                )

        task.set_state(TaskState.ACTIVE)
        task.begin_phase()
        duration_ns = self._phase_duration(task, mgmt_ns)

        worker.busy = True
        self._busy_count += 1
        dispatch_ns = self.sim.now
        event = self.sim.schedule(
            mgmt_ns + duration_ns,
            lambda: self._complete_phase(
                worker, task, mgmt_ns, duration_ns, dispatch_ns, source
            ),
        )
        self._inflight[task.task_id] = (event, worker)

    def _phase_duration(self, task: Task, mgmt_ns: int = 0) -> int:
        """Virtual execution time of one phase, from the work descriptor."""
        work = task.work
        busy_after = self._busy_count + 1
        if isinstance(work, StencilWork):
            idle = len(self.workers) - busy_after
            return self.cost_model.compute_ns(
                work.points,
                active_cores=busy_after,
                idle_cores=idle,
                mgmt_ns=mgmt_ns,
            )
        if isinstance(work, FixedWork):
            return self.cost_model.uniform_work_ns(work.ns)
        if isinstance(work, NoWork):
            return _NO_WORK_NS
        raise TypeError(f"unknown work descriptor {work!r}")

    def _complete_phase(
        self,
        worker: _SimWorker,
        task: Task,
        mgmt_ns: int,
        duration_ns: int,
        dispatch_ns: int = 0,
        source: WorkSource = WorkSource.LOCAL_PENDING,
    ) -> None:
        """A phase's virtual time has elapsed; run its Python side-effects."""
        self._inflight.pop(task.task_id, None)
        worker.busy = False
        self._busy_count -= 1
        if self._halted:
            # Fail-stop at task granularity: the phase's side-effects are
            # lost with the machine; nothing downstream is notified.
            return
        if self.trace is not None:
            self.trace.record_phase(
                PhaseRecord(
                    task_id=task.task_id,
                    task_name=task.name,
                    worker=worker.index,
                    phase=task.phases,
                    dispatch_ns=dispatch_ns,
                    mgmt_ns=mgmt_ns,
                    start_ns=dispatch_ns + mgmt_ns,
                    end_ns=self.sim.now,
                    source=_SOURCE_LABELS[source],
                )
            )
        task.exec_ns += duration_ns
        task.overhead_ns += mgmt_ns
        worker.exec_ns += duration_ns
        worker.mgmt_ns += mgmt_ns
        worker.phases_executed += 1
        self._c_phases.increment()
        self._c_avg_phase.add_sample(duration_ns)
        self._c_avg_phase_overhead.add_sample(mgmt_ns)

        self._current_worker = worker.index
        self._current_task = task
        try:
            finished, waits_on = self._advance_body(task)
        finally:
            self._current_worker = None
            self._current_task = None

        if finished:
            self._finish_task(worker, task)
        else:
            assert waits_on is not None
            task.set_state(TaskState.SUSPENDED)
            self._suspend_on(task, waits_on)

        # The worker looks for its next task in the same instant; the cost
        # of the lookup itself is charged via the poll/management model.
        self._search(worker)

    def _advance_body(self, task: Task) -> tuple[bool, Future | None]:
        """Run the task body's next slice.

        Returns ``(finished, future_to_wait_on)``.  Plain callables finish in
        one phase.  Generator bodies run to their next ``yield`` and suspend
        on the yielded future.
        """
        if task._generator is None and task.fn is not None:
            if inspect.isgeneratorfunction(task.fn):
                task._generator = task.fn()
            else:
                task.fn()
                return True, None
        if task._generator is None:
            return True, None  # fn was None: a no-op task
        try:
            yielded = next(task._generator)
        except StopIteration:
            return True, None
        if not isinstance(yielded, Future):
            raise TypeError(
                f"task {task.name} yielded {type(yielded).__name__}; "
                "generator tasks must yield Future instances"
            )
        return False, yielded

    def _suspend_on(self, task: Task, future: Future) -> None:
        """Arrange resume when ``future`` becomes ready.

        Resume placement: the worker in whose context the future was
        satisfied (locality follows the data, as in HPX).
        """

        def resume(_f: Future) -> None:
            worker = self._current_worker
            if worker is None:
                worker = task.home_worker if task.home_worker >= 0 else 0
            self._requeue_resumed(task, worker)

        future.on_ready(resume)

    def _finish_task(self, worker: _SimWorker, task: Task) -> None:
        task.set_state(TaskState.TERMINATED)
        task.terminated_ns = self.sim.now
        worker.tasks_executed += 1
        self._outstanding -= 1
        self._c_tasks.increment()
        self._c_avg.add_sample(task.exec_ns)
        self._c_avg_overhead.add_sample(task.overhead_ns)
        if self._outstanding == 0:
            self.finish_ns = self.sim.now
            self._cancel_all_wakeups()

    def cancel_task(self, task: Task) -> bool:
        """Retire ``task`` without running (the rest of) its body.

        The primitive behind speculative first-completion-wins: the losing
        copy of a task pair is cancelled so exactly one execution counts.
        A queued (staged/pending) or suspended task is flagged and retired
        lazily when a worker next touches it; an active task has its
        pending completion event cancelled and its worker freed right now,
        the partial phase discarded.  Cancelled tasks never run callbacks,
        never satisfy futures, and are excluded from the completed-task
        counters (see :attr:`cancelled_tasks`).

        Returns False — and does nothing — on a halted executor, a
        terminated task, or a task already cancelled.
        """
        if self._halted or task.state is TaskState.TERMINATED or task.cancelled:
            return False
        if task is self._current_task:
            return False  # mid-completion: it has effectively finished
        task.cancelled = True
        entry = self._inflight.pop(task.task_id, None)
        if entry is None:
            return True  # queued or suspended: retired at next touch
        event, worker = entry
        event.cancel()
        worker.busy = False
        self._busy_count -= 1
        self._retire_cancelled(task)
        self.sim.schedule_at(
            self.sim.now, lambda: self._search(worker)
        )
        return True

    def _retire_cancelled(self, task: Task) -> None:
        # Cancellation is not an HPX-thread transition; the task is retired
        # in place without an activation, so the state is assigned directly.
        task.state = TaskState.TERMINATED
        task.terminated_ns = self.sim.now
        self._outstanding -= 1
        self.cancelled_tasks += 1
        if self._outstanding == 0:
            self.finish_ns = self.sim.now
            self._cancel_all_wakeups()

    def _cancel_all_wakeups(self) -> None:
        self._sleepers.clear()
        for w in self.workers:
            if w.wake_event is not None:
                w.wake_event.cancel()
                w.wake_event = None

    def halt(self) -> None:
        """Fail-stop this executor: no further dispatch, resume, or spawn.

        Models a locality crash (:class:`repro.faults.plan.CrashAt`) at task
        granularity: phases whose virtual end time has not yet arrived are
        discarded when it does, suspended tasks never resume, and queued and
        newly spawned tasks are dropped.  Outstanding counts are left as-is
        — the tasks really are unfinished; the distributed runtime's
        stuck-locality check knows to skip crashed localities.
        """
        self._halted = True
        self._cancel_all_wakeups()
        self._parked.clear()

    @property
    def halted(self) -> bool:
        return self._halted

    # -- admission control (repro.overload) ----------------------------------------

    def install_admission(self, params: "AdmissionParams") -> "AdmissionControl":
        """Bound the policy's queues per ``params``; returns the controller.

        Attaches an :class:`repro.overload.admission.AdmissionControl` to
        every queue the policy owns and registers the ``/overload``
        counter family.  Call once, before :meth:`run`; runtimes built
        without an overload config never reach this method, so the
        default counter set (and event order) is untouched.
        """
        from repro.overload.admission import AdmissionControl

        if self.admission is not None:
            raise RuntimeError("admission control already installed")
        control = AdmissionControl(
            params, now_fn=lambda: self.sim.now, on_shed=self._on_task_shed
        )
        for q in self.policy.queues():
            control.attach(q)
        self.admission = control

        stats = control.stats
        reg = self.registry
        reg.derived("/overload/count/offered",
                    lambda: float(stats.offered),
                    "tasks presented to admission control")
        reg.derived("/overload/count/admitted",
                    lambda: float(stats.admitted),
                    "tasks admitted to the hot queues")
        reg.derived("/overload/count/shed",
                    lambda: float(stats.shed),
                    "tasks rejected under the shed policy")
        reg.derived("/overload/count/blocked",
                    lambda: float(stats.blocked),
                    "tasks deferred by backpressure (block policy)")
        reg.derived("/overload/count/spilled",
                    lambda: float(stats.spilled),
                    "tasks moved to the cold queue (spill policy)")
        reg.derived("/overload/count/readmitted",
                    lambda: float(stats.readmitted),
                    "deferred tasks re-admitted after depth recovered")
        reg.derived("/overload/time/backpressure-blocked",
                    lambda: float(stats.backpressure_wait_ns),
                    "total simulated producer wait under block (ns)")
        reg.value("/overload/count/spill-depth@gauge",
                  "tasks currently parked in deferred lanes",
                  source=lambda: float(control.deferred_tasks))
        reg.value("/overload/count/peak-queue-depth@gauge",
                  "high-water staged+pending depth of any one queue",
                  source=lambda: float(stats.peak_depth))
        return control

    def _on_task_shed(self, task: Task, exc: BaseException) -> None:
        """Admission control rejected ``task``: it will never run.

        The paired future (if any) fails with the typed error first — a
        ``then`` continuation it triggers may spawn replacement work, so
        the outstanding count is retired only afterwards to avoid a
        transient zero that would end the run early.
        """
        hook = task.failure_hook
        if hook is not None:
            hook(exc)
        self._outstanding -= 1
        if self._outstanding == 0 and self._started:
            self.finish_ns = self.sim.now
            self._cancel_all_wakeups()

    # -- driving -------------------------------------------------------------------

    def start_workers(self) -> None:
        """Schedule every worker's first work-finding attempt at t=0.

        Idempotent: busy workers and workers that already hold a wake event
        are left alone, so it doubles as the dormancy restart used by the
        distributed runtime (see :meth:`_maybe_restart_workers`).
        """
        if self._halted:
            return
        self._started = True
        for w in self.workers:
            if w.wake_event is None and not w.busy:
                w.wake_event = self.sim.schedule(
                    0, (lambda ww: lambda: self._search(ww))(w)
                )

    def run(self, max_events: int | None = None) -> int:
        """Drive the simulation until all spawned tasks terminate.

        Returns the virtual completion time in nanoseconds.  Raises
        :class:`DeadlockError` if tasks remain outstanding with no runnable
        work (e.g. a task suspended on a future nothing will satisfy).
        """
        self.start_workers()
        self.sim.run(max_events=max_events)
        if self._outstanding > 0:
            raise DeadlockError(
                f"{self._outstanding} task(s) outstanding but the event "
                "queue is empty — suspended on futures nobody satisfies?"
            )
        if self.finish_ns is None:
            # No tasks were spawned at all; completion is instantaneous.
            self.finish_ns = self.sim.now
        if self.trace is not None:
            self.trace.finish_ns = self.finish_ns
        return self.finish_ns

    # -- introspection -----------------------------------------------------------------

    @property
    def outstanding_tasks(self) -> int:
        return self._outstanding

    @property
    def total_spawned(self) -> int:
        return self._total_spawned

    @property
    def tasks_completed(self) -> int:
        """Tasks that ran to termination on this executor.

        On a halted (crashed) executor this freezes at the crash instant:
        a task mid-execution when the machine died is neither completed nor
        rolled back, which is exactly the accounting crash recovery needs
        to balance re-executed work against lost work.
        """
        return sum(w.tasks_executed for w in self.workers)

    @property
    def busy_workers(self) -> int:
        return self._busy_count
