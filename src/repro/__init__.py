"""repro — reproduction of *The Performance Implication of Task Size for
Applications on the HPX Runtime System* (Grubel, Kaiser, Cook, Serio;
HPCMASPA @ IEEE CLUSTER 2015).

The library has three layers:

1. **Substrate** — an HPX-like task runtime (tasks, futures, the Priority
   Local-FIFO scheduler, performance counters) whose timing is driven by a
   deterministic discrete-event simulation of the paper's four evaluation
   platforms (:mod:`repro.runtime`, :mod:`repro.schedulers`,
   :mod:`repro.counters`, :mod:`repro.sim`).
2. **Core contribution** — the paper's task-granularity metrics (Eq. 1-6),
   the characterization methodology, grain-size selection rules, and the
   adaptive tuner the paper proposes as future work (:mod:`repro.core`).
3. **Evaluation** — the HPX-Stencil benchmark and companions
   (:mod:`repro.apps`) and harnesses regenerating every table and figure
   (:mod:`repro.experiments`).

Quickstart::

    from repro import Runtime, StencilWork

    rt = Runtime(platform="haswell", num_cores=8)
    f = rt.async_(lambda: "hello", work=StencilWork(points=10_000))
    result = rt.run()
    print(result.execution_time_s, f.value)

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro.core.metrics import GranularityMetrics, MetricInputs
from repro.runtime import (
    AutoChunkSize,
    FixedChunkCount,
    StaticChunkSize,
    parallel_for_each,
    parallel_reduce,
    FixedWork,
    Future,
    NoWork,
    Priority,
    RunResult,
    Runtime,
    RuntimeConfig,
    StencilWork,
    Task,
    TaskState,
    WorkDescriptor,
    dataflow,
    then,
    when_all,
    when_any,
)
from repro.runtime.thread_executor import ThreadRuntime
from repro.sim import (
    HASWELL,
    IVY_BRIDGE,
    PLATFORMS,
    SANDY_BRIDGE,
    XEON_PHI,
    PlatformSpec,
    get_platform,
)

__version__ = "1.0.0"

__all__ = [
    "AutoChunkSize",
    "FixedChunkCount",
    "StaticChunkSize",
    "parallel_for_each",
    "parallel_reduce",
    "GranularityMetrics",
    "MetricInputs",
    "Future",
    "dataflow",
    "then",
    "when_all",
    "when_any",
    "Priority",
    "Task",
    "TaskState",
    "Runtime",
    "RuntimeConfig",
    "RunResult",
    "ThreadRuntime",
    "WorkDescriptor",
    "StencilWork",
    "FixedWork",
    "NoWork",
    "PlatformSpec",
    "PLATFORMS",
    "SANDY_BRIDGE",
    "IVY_BRIDGE",
    "HASWELL",
    "XEON_PHI",
    "get_platform",
    "__version__",
]
