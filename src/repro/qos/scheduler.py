"""Clutch-style QoS bucket scheduler.

Apple's Clutch scheduler (see SNIPPETS.md section 3) selects work in three
phases: a *root-bucket* phase picking the QoS tier to serve next (EDF over
per-tier deadlines, with *warp* — a temporary deadline boost a tier earns
when it wakes up — and starvation avoidance for tiers EDF keeps passing
over), then a bucket phase, then a thread phase.  This module maps that
design onto the repo's scheduler protocol:

- one **bucket** per :class:`~repro.qos.classes.QosClass`, holding one
  :class:`~repro.schedulers.queues.DualQueue` per worker;
- the **root-bucket phase** is EDF over bucket deadlines, where a bucket's
  deadline is the earliest queued arrival plus the class's latency target
  — no clock access needed, so selection stays a pure function of queue
  contents and is bit-reproducible across executors;
- **warp**: work arriving into an *empty* bucket arms ``warp_dispatches``
  selections during which the bucket's deadline is advanced by the class's
  ``warp_ns`` — a freshly woken tier jumps the line briefly, which is what
  keeps interactive wakeup latency flat under load;
- **starvation avoidance**: a non-empty bucket passed over ``limit``
  consecutive times is served next regardless of deadlines, where
  ``limit = max(1, starvation_limit // weight)`` — heavier classes tolerate
  fewer skips.  This is why batch work still progresses while higher tiers
  saturate the machine (asserted by figQ);
- the **thread phase** inside the chosen bucket follows the paper's Fig. 1
  order: own pending, own staged (converted through the pending queue so
  the Fig. 9/10 conversion traffic registers), then staged-before-pending
  steals from the same NUMA domain, then remote domains.

Tasks without a :class:`QosClass` are routed by their queue priority via
:func:`~repro.qos.classes.class_for_priority`, so any existing workload
runs under ``scheduler="qos"`` unmodified — the property the differential
fuzzer leans on.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.qos.classes import QosClass, class_for_priority, default_classes
from repro.runtime.task import Task
from repro.schedulers.base import FoundWork, SchedulingPolicy, WorkSource
from repro.schedulers.queues import DualQueue

__all__ = ["QosBucketScheduler", "ROOT_CONTENTION_NS_PER_WORKER"]

#: per-dispatch cost of the shared root-bucket structure: every worker's
#: find_work reads (and the winner updates) the same EDF state, which is a
#: real synchronization point per-worker queues do not have
ROOT_CONTENTION_NS_PER_WORKER = 12


class _Bucket:
    """Per-class scheduler state: queues plus warp/starvation bookkeeping."""

    __slots__ = ("qos", "queues", "warp_remaining", "skipped", "starvation_limit")

    def __init__(self, qos: QosClass, num_workers: int, starvation_limit: int):
        self.qos = qos
        self.queues = [DualQueue() for _ in range(num_workers)]
        self.warp_remaining = 0
        self.skipped = 0
        self.starvation_limit = max(1, starvation_limit // qos.weight)

    def hot_depth(self) -> int:
        return sum(q.pending_len + q.staged_len for q in self.queues)

    def has_work(self) -> bool:
        return any(not q.is_empty for q in self.queues)

    def deadline(self) -> float:
        """Earliest queued arrival plus the class latency target.

        Hot-empty buckets (possibly holding only deferred work) sort last:
        deferred tasks are cold by design and re-admit via the drain hook
        once a pop touches their queue.
        """
        earliest = None
        for q in self.queues:
            head = q.head_created_ns()
            if head is not None and (earliest is None or head < earliest):
                earliest = head
        if earliest is None:
            return float("inf")
        deadline = earliest + self.qos.latency_target_ns
        if self.warp_remaining > 0:
            deadline -= self.qos.warp_ns
        return deadline


class QosBucketScheduler(SchedulingPolicy):
    """Per-class EDF root buckets with warp and starvation avoidance."""

    name = "qos"

    def __init__(
        self,
        classes: Sequence[QosClass] | None = None,
        *,
        warp_dispatches: int = 4,
        starvation_limit: int = 8,
    ) -> None:
        super().__init__()
        resolved = tuple(classes) if classes is not None else default_classes()
        if not resolved:
            raise ValueError("QosBucketScheduler needs at least one class")
        names = [c.name for c in resolved]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate QoS class names: {names}")
        if warp_dispatches < 0:
            raise ValueError(f"warp_dispatches must be >= 0, got {warp_dispatches}")
        if starvation_limit < 1:
            raise ValueError(f"starvation_limit must be >= 1, got {starvation_limit}")
        self.classes = resolved
        self.warp_dispatches = warp_dispatches
        self.starvation_limit = starvation_limit
        self._buckets: list[_Bucket] = []
        self._by_name: dict[str, int] = {}
        self._same_domain: list[tuple[int, ...]] = []
        self._remote: list[tuple[int, ...]] = []

    # -- setup ---------------------------------------------------------------

    def _build_queues(self) -> None:
        n = self.num_workers
        self._buckets = [
            _Bucket(c, n, self.starvation_limit) for c in self.classes
        ]
        self._by_name = {c.name: i for i, c in enumerate(self.classes)}
        assert self.machine is not None
        self._same_domain = [self.machine.same_domain_cores(w) for w in range(n)]
        self._remote = [self.machine.remote_domain_cores(w) for w in range(n)]

    # -- producers -------------------------------------------------------------

    def _bucket_of(self, task: Task) -> _Bucket:
        qos = task.qos
        if qos is not None:
            idx = self._by_name.get(qos.name)
            if idx is not None:
                return self._buckets[idx]
            qos = None  # unknown class: fall back to priority routing
        cls = class_for_priority(task.priority, self.classes)
        return self._buckets[self._by_name[cls.name]]

    def _enqueue(self, task: Task, worker: int, *, pending: bool) -> None:
        bucket = self._bucket_of(task)
        wake = bucket.qos.warp_ns > 0 and bucket.hot_depth() == 0
        task.home_worker = worker
        queue = bucket.queues[worker]
        if pending:
            queue.push_pending(task)
        else:
            queue.push_staged(task)
        # Arm warp only if the push actually landed hot (a shed or deferred
        # admission must not earn the bucket a boost).
        if wake and bucket.hot_depth() > 0:
            bucket.warp_remaining = self.warp_dispatches

    def enqueue_staged(self, task: Task, worker: int) -> None:
        self._enqueue(task, worker, pending=False)

    def enqueue_pending(self, task: Task, worker: int) -> None:
        self._enqueue(task, worker, pending=True)

    # -- consumer ----------------------------------------------------------------

    def _selection_order(self) -> list[_Bucket]:
        """Root-bucket phase: starved buckets first, then EDF order.

        Ties break toward the higher-rank class, then the class list
        position — a total, deterministic order.
        """
        candidates = [b for b in self._buckets if b.has_work()]
        starved = [b for b in candidates if b.skipped >= b.starvation_limit]
        rest = [b for b in candidates if b.skipped < b.starvation_limit]

        def key(b: _Bucket) -> tuple[float, int, int]:
            return (b.deadline(), -b.qos.rank, self._by_name[b.qos.name])

        return sorted(starved, key=key) + sorted(rest, key=key)

    def _note_selected(self, bucket: _Bucket) -> None:
        if bucket.warp_remaining > 0:
            bucket.warp_remaining -= 1
        bucket.skipped = 0
        for other in self._buckets:
            if other is not bucket and other.has_work():
                other.skipped += 1

    def _find_in_bucket(self, bucket: _Bucket, worker: int) -> FoundWork | None:
        """Thread phase inside one bucket: Fig. 1 order over its queues."""
        queues = bucket.queues
        own = queues[worker]
        task = own.pop_pending()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_PENDING)
        task = own.pop_staged()
        if task is not None:
            # Convert through the pending queue (as priority-local does) so
            # the staged->pending traffic registers in the Fig. 9/10 counters.
            own.push_pending(task)
            task = own.pop_pending()
            assert task is not None
            return FoundWork(task, WorkSource.LOCAL_STAGED)
        for other in self._same_domain[worker]:
            task = queues[other].pop_staged()
            if task is not None:
                own.push_pending(task)
                task = own.pop_pending()
                assert task is not None
                return FoundWork(task, WorkSource.NUMA_STAGED)
        for other in self._same_domain[worker]:
            task = queues[other].pop_pending()
            if task is not None:
                return FoundWork(task, WorkSource.NUMA_PENDING)
        for other in self._remote[worker]:
            task = queues[other].pop_staged()
            if task is not None:
                own.push_pending(task)
                task = own.pop_pending()
                assert task is not None
                return FoundWork(task, WorkSource.REMOTE_STAGED)
        for other in self._remote[worker]:
            task = queues[other].pop_pending()
            if task is not None:
                return FoundWork(task, WorkSource.REMOTE_PENDING)
        return None

    def find_work(self, worker: int) -> FoundWork | None:
        for bucket in self._selection_order():
            found = self._find_in_bucket(bucket, worker)
            if found is not None:
                self._note_selected(bucket)
                return found
        return None

    def shared_structure_penalty_ns(self, active_workers: int) -> int:
        """Root-bucket EDF state is shared by every worker's dispatch."""
        return ROOT_CONTENTION_NS_PER_WORKER * max(0, active_workers - 1)

    # -- introspection -------------------------------------------------------------

    def queues(self) -> Iterator[DualQueue]:
        for bucket in self._buckets:
            yield from bucket.queues

    def bucket_queue(self, class_name: str, worker: int) -> DualQueue:
        """The ``worker``-homed queue of class ``class_name`` (tests)."""
        return self._buckets[self._by_name[class_name]].queues[worker]

    def worker_queue_depth(self, worker: int) -> int:
        return sum(
            q.pending_len + q.staged_len
            for bucket in self._buckets
            for q in (bucket.queues[worker],)
        )
