"""The multi-tenant service front end: tenants -> arrivals -> runtime.

:func:`run_qos_service` is the top of the QoS stack.  It takes a set of
:class:`~repro.qos.classes.Tenant` definitions, materializes each tenant's
deterministic arrival schedule (:mod:`repro.qos.arrivals`), injects every
request into one shared :class:`~repro.runtime.runtime.Runtime` as an
open-loop arrival event (the figO idiom: events scheduled on the simulator
before the run, the dormancy-restart hook reviving workers for late
arrivals), and classifies every request's outcome per tenant — completed
with an exact sojourn-time sample, or shed with a typed
:class:`~repro.overload.errors.TaskShedError`.

Accounting is exposed twice: programmatically as
:class:`QosServiceOutcome` (per-tenant :class:`TenantStats` plus the
:class:`RunResult`), and through the runtime's counter registry as
``/qos{tenant#N}/...`` counters plus the ``/qos/count/high-*`` aggregates
the overload governor reads.  Conservation holds per tenant by
construction and is asserted by figQ::

    arrived == completed + shed
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.overload.config import OverloadConfig
from repro.overload.errors import TaskShedError
from repro.qos.classes import (
    Tenant,
    TenantStats,
    register_class_counters,
    register_tenant_counters,
)
from repro.qos.scheduler import QosBucketScheduler
from repro.runtime.runtime import Runtime, RuntimeConfig, RunResult
from repro.runtime.work import FixedWork
from repro.schedulers.base import SchedulingPolicy

__all__ = ["QosServiceConfig", "QosServiceOutcome", "run_qos_service"]


def _unit() -> int:
    """The body of one request (pure bookkeeping; cost is in the grain)."""
    return 1


@dataclass(frozen=True)
class QosServiceConfig:
    """One service deployment: machine, scheduler, admission, window.

    ``scheduler=None`` builds a :class:`QosBucketScheduler` over exactly
    the classes the tenants use; passing any other policy (or registry
    name via :class:`RuntimeConfig` semantics) runs the same traffic
    without QoS-aware scheduling — the figQ ablation baseline.
    """

    platform: str = "haswell"
    num_cores: int = 8
    seed: int = 0
    window_ns: int = 300_000
    overload: OverloadConfig | None = None
    scheduler: SchedulingPolicy | str | None = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {self.window_ns}")


@dataclass(frozen=True)
class QosServiceOutcome:
    """A finished service window plus per-tenant accounting."""

    result: RunResult
    tenants: tuple[Tenant, ...]
    stats: dict[int, TenantStats] = field(default_factory=dict)

    def stats_for(self, tenant_name: str) -> TenantStats:
        for tenant in self.tenants:
            if tenant.name == tenant_name:
                return self.stats[tenant.tenant_id]
        raise KeyError(f"no tenant named {tenant_name!r}")

    def conserved(self) -> bool:
        """Per-tenant conservation: every arrival completed or shed."""
        return all(
            s.arrived == s.completed + s.shed for s in self.stats.values()
        )


def _resolve_policy(
    config: QosServiceConfig, tenants: tuple[Tenant, ...]
) -> SchedulingPolicy | str:
    if config.scheduler is not None:
        return config.scheduler
    seen: dict[str, object] = {}
    for tenant in tenants:
        seen.setdefault(tenant.qos.name, tenant.qos)
    return QosBucketScheduler(classes=list(seen.values()))  # type: ignore[arg-type]


def run_qos_service(
    tenants: list[Tenant] | tuple[Tenant, ...],
    config: QosServiceConfig | None = None,
) -> QosServiceOutcome:
    """Run one service window; returns per-tenant outcomes.

    Arrival schedules depend only on ``(config.seed, tenant_id)``, and the
    runtime underneath is the deterministic simulator — the whole outcome,
    counters and latency samples included, is bit-reproducible.
    """
    cfg = config if config is not None else QosServiceConfig()
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError("run_qos_service needs at least one tenant")
    ids = [t.tenant_id for t in tenants]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate tenant ids: {ids}")

    rt = Runtime(
        RuntimeConfig(
            platform=cfg.platform,
            num_cores=cfg.num_cores,
            scheduler=_resolve_policy(cfg, tenants),
            seed=cfg.seed,
            overload=cfg.overload,
        )
    )
    stats = {t.tenant_id: TenantStats() for t in tenants}
    for tenant in tenants:
        register_tenant_counters(rt.registry, tenant, stats[tenant.tenant_id])
    register_class_counters(
        rt.registry, [(t, stats[t.tenant_id]) for t in tenants]
    )

    def arrive(tenant: Tenant, index: int, at_ns: int) -> None:
        tstats = stats[tenant.tenant_id]
        tstats.arrived += 1
        future = rt.async_(
            _unit,
            work=FixedWork(tenant.grain_ns),
            name=f"qos:{tenant.name}#{index}",
            priority=tenant.qos.priority,
            qos=tenant.qos,
        )

        def settle(f) -> None:
            exc = f.exception
            if exc is None:
                tstats.record_completion(rt.simulator.now - at_ns)
            elif isinstance(exc, TaskShedError):
                tstats.shed += 1
            else:  # pragma: no cover - requests cannot fail otherwise
                raise exc

        future.on_ready(settle)

    for tenant in tenants:
        schedule = tenant.arrivals.times(cfg.seed, tenant.tenant_id, cfg.window_ns)
        for index, at_ns in enumerate(schedule):
            rt.simulator.schedule_at(
                at_ns,
                (lambda t, i, a: lambda: arrive(t, i, a))(tenant, index, at_ns),
            )

    result = rt.run()
    return QosServiceOutcome(result=result, tenants=tenants, stats=stats)
