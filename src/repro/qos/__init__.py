"""Multi-tenant QoS service layer — the "millions of users" scenario.

The paper characterizes grain size for closed-loop HPC applications; a
production service instead faces *open-loop* offered load from many
tenants with different latency needs.  This package turns the runtime
into such a service:

- :mod:`repro.qos.arrivals` — deterministic Poisson / bursty (MMPP) /
  diurnal arrival generators on SplitMix64 streams;
- :mod:`repro.qos.classes` — :class:`QosClass` service tiers and
  :class:`Tenant` traffic sources, with per-tenant ``/qos{tenant#N}``
  counters (arrived/completed/shed, latency quantiles and histogram);
- :mod:`repro.qos.scheduler` — the Clutch-style
  :class:`QosBucketScheduler` (registered as ``"qos"``): per-class EDF
  root buckets with warp and starvation avoidance;
- :mod:`repro.qos.service` — :func:`run_qos_service`, driving tenant
  arrivals through one runtime and accounting every request.

The figQ experiment (:mod:`repro.experiments.figQ_qos_isolation`) asserts
the end-to-end property: under 4x offered load with class-aware shedding,
high-QoS p99 stays within 1.5x of its 1x-load value while low-QoS work is
shed, with per-tenant conservation and bit-identical reruns.
"""

from repro.qos.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.qos.classes import (
    QosClass,
    Tenant,
    TenantStats,
    class_for_priority,
    default_classes,
)
from repro.qos.scheduler import QosBucketScheduler
from repro.qos.service import (
    QosServiceConfig,
    QosServiceOutcome,
    run_qos_service,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "QosClass",
    "Tenant",
    "TenantStats",
    "default_classes",
    "class_for_priority",
    "QosBucketScheduler",
    "QosServiceConfig",
    "QosServiceOutcome",
    "run_qos_service",
]
