"""QoS classes and tenants for the multi-tenant service layer.

A :class:`QosClass` names a service tier: how urgent its requests are
(``latency_target_ns``, the EDF deadline offset used by the
:class:`~repro.qos.scheduler.QosBucketScheduler`), how important they are
relative to other tiers (``rank``, consulted by class-aware shed-victim
selection in :mod:`repro.overload.admission`), how much scheduler
attention they command (``weight``, which tightens the starvation-
avoidance threshold), and whether admission control may drop them at all
(``shed_eligible``).

A :class:`Tenant` is one traffic source: a named stream of open-loop
arrivals (see :mod:`repro.qos.arrivals`) whose requests all carry one QoS
class and one grain size.  :class:`TenantStats` accumulates the per-tenant
accounting — arrived / completed / shed counts plus exact sojourn-time
samples and a log2 latency histogram — and :func:`register_tenant_counters`
exposes it in a runtime's counter registry under ``/qos{tenant#N}/...``
names, so QoS health is read exactly like every other runtime signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.counters.registry import CounterRegistry
from repro.qos.arrivals import ArrivalProcess
from repro.runtime.task import Priority
from repro.util.stats import quantile

__all__ = [
    "QosClass",
    "Tenant",
    "TenantStats",
    "default_classes",
    "class_for_priority",
    "register_tenant_counters",
    "register_class_counters",
    "HIST_BUCKETS_US",
]

#: log2 histogram bucket upper bounds, in microseconds (plus an overflow
#: bucket labelled ``inf``): 1us, 2us, ... 524288us (~0.5 s).
HIST_BUCKETS_US: tuple[int, ...] = tuple(2**k for k in range(20))


@dataclass(frozen=True)
class QosClass:
    """One service tier shared by any number of tenants.

    ``rank`` orders classes by importance (higher = more important);
    ``weight`` scales scheduler attention (heavier classes hit the
    starvation-avoidance threshold sooner); ``latency_target_ns`` is both
    the EDF deadline offset and the tier's SLO for reporting;
    ``warp_ns`` is the temporary deadline boost a class bucket receives
    when work arrives into it while empty (Clutch-style warp);
    ``shed_eligible=False`` marks work admission control must never drop
    in favour of a newcomer.
    """

    name: str
    rank: int
    latency_target_ns: int
    weight: int = 1
    priority: Priority = Priority.NORMAL
    shed_eligible: bool = True
    warp_ns: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("QosClass needs a non-empty name")
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.weight < 1:
            raise ValueError(f"weight must be >= 1, got {self.weight}")
        if self.latency_target_ns <= 0:
            raise ValueError(
                f"latency_target_ns must be positive, got {self.latency_target_ns}"
            )
        if self.warp_ns < 0:
            raise ValueError(f"warp_ns must be >= 0, got {self.warp_ns}")


def default_classes() -> tuple[QosClass, QosClass, QosClass]:
    """The stock three-tier ladder: batch < standard < interactive.

    All three run at NORMAL queue priority on purpose: isolation must come
    from the QoS machinery itself (EDF buckets, class-aware shedding), not
    from the priority queues — that is exactly what figQ asserts.
    """
    return (
        QosClass(
            name="batch",
            rank=0,
            latency_target_ns=5_000_000,  # 5 ms: throughput work
            weight=1,
            shed_eligible=True,
            warp_ns=0,
        ),
        QosClass(
            name="standard",
            rank=1,
            latency_target_ns=500_000,  # 500 us
            weight=2,
            shed_eligible=True,
            warp_ns=10_000,
        ),
        QosClass(
            name="interactive",
            rank=2,
            latency_target_ns=50_000,  # 50 us: user-facing
            weight=4,
            shed_eligible=False,
            warp_ns=25_000,
        ),
    )


def class_for_priority(
    priority: Priority, classes: tuple[QosClass, ...]
) -> QosClass:
    """Map an unclassed task's queue priority onto one of ``classes``.

    LOW lands in the lowest-rank class, HIGH in the highest, NORMAL in the
    middle tier (lowest-rank of the rest), so legacy single-class workloads
    run under the QoS scheduler without any annotation.
    """
    ordered = sorted(classes, key=lambda c: (c.rank, c.name))
    if priority is Priority.LOW:
        return ordered[0]
    if priority is Priority.HIGH:
        return ordered[-1]
    return ordered[len(ordered) // 2]


@dataclass(frozen=True)
class Tenant:
    """One traffic source: arrivals of a fixed grain under one QoS class."""

    tenant_id: int
    name: str
    qos: QosClass
    grain_ns: int
    arrivals: ArrivalProcess | None = None

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ValueError(f"tenant_id must be >= 0, got {self.tenant_id}")
        if self.grain_ns <= 0:
            raise ValueError(f"grain_ns must be positive, got {self.grain_ns}")


@dataclass
class TenantStats:
    """Mutable per-tenant accounting filled in during a service run."""

    arrived: int = 0
    completed: int = 0
    shed: int = 0
    #: exact sojourn (arrival -> completion) samples, ns, completion order
    sojourn_ns: list[int] = field(default_factory=list)
    #: log2 histogram: ``hist[k]`` counts sojourns <= ``HIST_BUCKETS_US[k]``
    #: microseconds (and > the previous bound); the final slot is overflow
    hist: list[int] = field(
        default_factory=lambda: [0] * (len(HIST_BUCKETS_US) + 1)
    )

    def record_completion(self, sojourn_ns: int) -> None:
        self.completed += 1
        self.sojourn_ns.append(sojourn_ns)
        us = sojourn_ns / 1000.0
        for k, bound in enumerate(HIST_BUCKETS_US):
            if us <= bound:
                self.hist[k] += 1
                return
        self.hist[-1] += 1

    def p(self, q: float) -> float:
        """Nearest-rank sojourn quantile in ns; 0.0 with no completions."""
        if not self.sojourn_ns:
            return 0.0
        return float(quantile(self.sojourn_ns, q))

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.arrived if self.arrived else 0.0


def register_tenant_counters(
    registry: CounterRegistry, tenant: Tenant, stats: TenantStats
) -> None:
    """Expose ``stats`` under ``/qos{tenant#N}/...`` in ``registry``.

    Count counters follow the registry's delta semantics; the latency
    quantiles are ``@gauge`` (a distribution summary, not a monotone
    total).  Histogram buckets are registered eagerly so snapshots always
    carry the full, fixed counter set.
    """
    n = tenant.tenant_id
    prefix = f"/qos{{tenant#{n}}}"
    registry.derived(
        f"{prefix}/count/arrived",
        lambda s=stats: float(s.arrived),
        f"requests offered by tenant {tenant.name!r}",
    )
    registry.derived(
        f"{prefix}/count/completed",
        lambda s=stats: float(s.completed),
        f"requests completed for tenant {tenant.name!r}",
    )
    registry.derived(
        f"{prefix}/count/shed",
        lambda s=stats: float(s.shed),
        f"requests shed for tenant {tenant.name!r}",
    )
    for label, q in (("p50", 0.50), ("p99", 0.99), ("p999", 0.999)):
        registry.derived(
            f"{prefix}/time/latency-{label}@gauge",
            lambda s=stats, q=q: s.p(q),
            f"nearest-rank {label} sojourn time (ns), tenant {tenant.name!r}",
        )
    for k, bound in enumerate(HIST_BUCKETS_US):
        registry.derived(
            f"{prefix}/count/latency-le-{bound}us",
            lambda s=stats, k=k: float(s.hist[k]),
            f"sojourns in the <= {bound} us bucket, tenant {tenant.name!r}",
        )
    registry.derived(
        f"{prefix}/count/latency-le-inf",
        lambda s=stats: float(s.hist[-1]),
        f"sojourns past the last histogram bound, tenant {tenant.name!r}",
    )


def register_class_counters(
    registry: CounterRegistry,
    pairs: list[tuple[Tenant, TenantStats]],
) -> None:
    """Aggregate top-tier health counters the overload governor reads.

    "High QoS" means the maximum rank present among ``pairs``; shedding
    *any* of it is the strongest possible overload signal (see
    :meth:`repro.overload.governor.GovernorSignals`).
    """
    if not pairs:
        return
    top = max(t.qos.rank for t, _ in pairs)
    high = [s for t, s in pairs if t.qos.rank == top]
    registry.derived(
        "/qos/count/high-arrived",
        lambda hs=tuple(high): float(sum(s.arrived for s in hs)),
        "requests offered by highest-rank QoS tenants",
    )
    registry.derived(
        "/qos/count/high-shed",
        lambda hs=tuple(high): float(sum(s.shed for s in hs)),
        "requests shed from highest-rank QoS tenants",
    )
