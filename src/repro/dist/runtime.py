"""DistRuntime: N per-locality runtimes composed over one virtual clock.

The single-node :class:`repro.runtime.Runtime` models one HPX *locality*.
This facade composes several of them — each with its own scheduler, worker
pool, cost model and counter registry — over one shared
:class:`repro.sim.engine.Simulator`, and adds the two services that make a
multi-locality HPX run different from N independent ones:

- a **parcelport per locality** (:mod:`repro.dist.parcel`) moving future
  values across locality boundaries on the modelled network
  (:mod:`repro.dist.network`);
- an **AGAS-lite resolver** (:mod:`repro.dist.agas`): senders resolve the
  destination gid through their locality's cache, paying hit/miss costs.

Work is submitted with the same ``async_`` / ``dataflow`` verbs, plus a
``locality=`` placement argument.  A dataflow may depend on futures owned by
*other* localities: each such dependency is transparently replaced by a
local **proxy future** that becomes ready when the carrying parcel is
delivered (explicitly constructible via :meth:`DistRuntime.remote_value`,
which is what the distributed stencil's halo exchange uses).

Counters: every locality's runtime keeps its own registry (self-addressed
as ``locality#0``, exactly as a real HPX locality sees itself).  The
distributed registry owned by this facade holds the cross-locality view —
parcel and AGAS counters plus mirrored thread counters — all addressed with
first-class ``locality#N`` prefixes, so ``locality#*`` wildcard queries
aggregate across the system (``CounterRegistry.total`` / ``per_locality``).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from repro.counters.registry import CounterRegistry, CounterSnapshot
from repro.dist.agas import AgasCache, AgasParams, AgasService, GlobalId
from repro.dist.network import NetworkModel
from repro.dist.parcel import Parcel, Parcelport
from repro.faults.errors import (
    LocalityCrashError,
    ParcelLostError,
    WatchdogTimeout,
)
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.transport import RetryParams
from repro.overload.config import OverloadConfig
from repro.recovery.config import RecoveryConfig
from repro.recovery.manager import RecoveryManager
from repro.runtime.future import Future
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.sim_executor import DeadlockError
from repro.runtime.task import Priority
from repro.runtime.work import WorkDescriptor
from repro.schedulers.base import SchedulingPolicy
from repro.sim.engine import Simulator
from repro.sim.platforms import PlatformSpec, get_platform
from repro.tail.config import TailConfig
from repro.tail.manager import TailManager


@dataclass(frozen=True)
class DistConfig:
    """Configuration of one distributed launch.

    ``seed`` seeds locality 0's cost model directly (so a 1-locality run is
    bit-identical to a single-node run with the same seed); further
    localities derive distinct streams from it.
    """

    num_localities: int = 2
    platform: str | PlatformSpec = "haswell"
    cores_per_locality: int = 8
    scheduler: str | SchedulingPolicy = "priority-local"
    seed: int = 0
    #: the transport model; None means the default commodity interconnect
    network: NetworkModel | None = None
    agas: AgasParams | None = None
    timer_counters: bool = True
    #: per-task management overhead grows with the locality count: every
    #: thread created in a distributed run additionally touches AGAS credit
    #: tracking and distributed termination detection (Wu et al. measure
    #: HPX's per-task cost rising from sub-µs shared-memory figures into
    #: the µs range across nodes — PAPERS.md).  Each locality's
    #: ``task_overhead_ns`` is scaled by
    #: ``1 + frac * log2(num_localities)`` — exactly 1 for one locality, so
    #: single-node equivalence is untouched; the default reaches 5.5× at
    #: 8 localities (Haswell: 0.8 µs → 4.4 µs per task).
    dist_task_overhead_frac: float = 1.5
    #: what goes wrong during the run; ``None`` (or an inactive plan, e.g.
    #: ``FaultPlan.none()``) leaves the wire exactly as reliable — and the
    #: event schedule exactly as bit-identical — as before this layer existed
    faults: FaultPlan | None = None
    #: ack/timeout/retransmit protocol; ``None`` is the legacy fire-and-
    #: forget transport (fine on a perfect wire, starvation under drops)
    retry: RetryParams | None = None
    #: what to do when a parcel exhausts its retry budget: ``"none"`` fails
    #: the consuming proxy with :class:`ParcelLostError`; ``"reexecute"``
    #: re-runs the producing task (the caller supplies its cost via
    #: ``remote_value(recovery_work=...)``) and ships a fresh parcel
    recovery: str = "none"
    #: re-executions allowed per proxy before giving up
    max_recoveries: int = 3
    #: default watchdog deadline for :meth:`DistRuntime.run`/``wait`` (ns of
    #: virtual time); ``None`` disables the watchdog
    watchdog_ns: int | None = None
    #: opt-in overload control (:mod:`repro.overload`): ``admission``
    #: bounds every locality's scheduler queues, ``credits`` installs
    #: per-destination sender windows on the parcelports, ``breaker``
    #: installs per-link circuit breakers.  ``None`` (the default) is
    #: bit-identical to pre-overload behaviour.
    overload: OverloadConfig | None = None
    #: bound of each parcelport's dead-letter ring; the oldest letter is
    #: evicted (and counted) once full
    dead_letter_capacity: int = 1024
    #: opt-in locality-crash survival (:mod:`repro.recovery`): heartbeat
    #: failure detection, periodic checkpoints of completed task results to
    #: survivor replicas, and lineage-based re-execution of lost work.
    #: ``None`` (the default) is bit-identical to pre-recovery behaviour —
    #: a crash then remains terminal, diagnosed by :meth:`DistRuntime.wait`.
    #: Orthogonal to ``recovery=`` above, which re-executes a *producer*
    #: after parcel loss on an otherwise healthy locality.
    crash_recovery: RecoveryConfig | None = None
    #: opt-in gray-failure tolerance (:mod:`repro.tail`): quantile-based
    #: degraded detection, hedged parcels, speculative re-execution of a
    #: degraded locality's tasks, and epoch fencing of declared localities.
    #: ``None`` (the default) is bit-identical to pre-tail behaviour.
    #: Layered on top of ``crash_recovery`` (the detector reads its
    #: heartbeats and speculation replays its lineage) and ``retry`` (acks
    #: are what hedge timers race against), so both are required.
    tail: TailConfig | None = None

    def __post_init__(self) -> None:
        if self.num_localities < 1:
            raise ValueError(
                f"num_localities must be >= 1, got {self.num_localities}"
            )
        if self.cores_per_locality < 1:
            raise ValueError(
                f"cores_per_locality must be >= 1, got {self.cores_per_locality}"
            )
        if self.dist_task_overhead_frac < 0:
            raise ValueError(
                "dist_task_overhead_frac must be >= 0, got "
                f"{self.dist_task_overhead_frac}"
            )
        if self.recovery not in ("none", "reexecute"):
            raise ValueError(
                f"recovery must be 'none' or 'reexecute', got {self.recovery!r}"
            )
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if self.watchdog_ns is not None and self.watchdog_ns <= 0:
            raise ValueError("watchdog_ns must be positive (or None)")
        if self.recovery == "reexecute" and self.retry is None:
            raise ValueError(
                "recovery='reexecute' needs the reliable transport: pass "
                "retry=RetryParams(...) so loss is detectable"
            )
        if self.dead_letter_capacity < 1:
            raise ValueError("dead_letter_capacity must be >= 1")
        if self.crash_recovery is not None and self.num_localities < 2:
            raise ValueError(
                "crash_recovery needs at least 2 localities: a lone "
                "locality has no survivor to replicate checkpoints onto"
            )
        if self.tail is not None and self.crash_recovery is None:
            raise ValueError(
                "tail tolerance rides the crash-recovery layer: pass "
                "crash_recovery=RecoveryConfig(...) — its heartbeats feed "
                "the gray detector and its lineage feeds speculation"
            )
        if self.tail is not None and self.retry is None:
            raise ValueError(
                "tail tolerance requires the reliable transport: pass "
                "retry=RetryParams(...) — hedge timers race against acks "
                "and hedge copies are settled by the dedup ledger"
            )
        if (
            self.overload is not None
            and (self.overload.credits is not None
                 or self.overload.breaker is not None)
            and self.retry is None
        ):
            raise ValueError(
                "credit flow control and circuit breakers require the "
                "reliable transport: pass retry=RetryParams(...) — acks are "
                "what return credits and detect link failures"
            )
        if self.faults is not None:
            n = self.num_localities
            for s in self.faults.stragglers:
                if s.locality >= n:
                    raise ValueError(
                        f"straggler locality {s.locality} outside this "
                        f"{n}-locality runtime"
                    )
            for c in self.faults.crashes:
                if c.locality >= n:
                    raise ValueError(
                        f"crash locality {c.locality} outside this "
                        f"{n}-locality runtime"
                    )

    def resolve_platform(self) -> PlatformSpec:
        """The per-locality platform, distributed overhead applied."""
        spec = (
            self.platform
            if isinstance(self.platform, PlatformSpec)
            else get_platform(self.platform)
        )
        factor = 1.0 + self.dist_task_overhead_frac * math.log2(
            self.num_localities
        )
        if factor == 1.0:
            return spec
        return replace(
            spec,
            costs=replace(
                spec.costs,
                task_overhead_ns=spec.costs.task_overhead_ns * factor,
            ),
        )


@dataclass(frozen=True)
class DistRunResult:
    """Outcome of one completed distributed run.

    ``counters`` is the distributed registry's snapshot (parcels, AGAS,
    mirrored per-locality thread counters); ``per_locality`` holds each
    locality's own registry snapshot.  The scalar fields pre-aggregate the
    quantities figD and the tests consume.
    """

    execution_time_ns: int
    counters: CounterSnapshot
    per_locality: tuple[CounterSnapshot, ...]
    platform_name: str
    num_localities: int
    cores_per_locality: int
    tasks_executed: int
    parcels_sent: int
    parcels_received: int
    bytes_sent: int
    serialization_time_ns: int
    network_wait_ns: int
    agas_cache_hits: int
    agas_cache_misses: int
    #: sum over localities of per-worker task execution time
    total_exec_ns: int
    #: sum over localities of per-worker management time
    total_mgmt_ns: int
    #: -- resilience accounting (all zero on a fault-free reliable run) -----
    parcels_dropped: int = 0
    parcels_retransmitted: int = 0
    duplicates_discarded: int = 0
    retry_backoff_ns: int = 0
    parcels_recovered: int = 0
    recovery_ns: int = 0
    crashed_localities: tuple[int, ...] = ()
    #: -- overload accounting (all zero with overload control off) ----------
    #: tasks rejected by admission control, summed over localities
    tasks_shed: int = 0
    #: sends that ever parked behind a credit or breaker gate
    sends_deferred: int = 0
    #: cumulative simulated time sends spent parked on credits
    credits_exhausted_ns: int = 0
    #: peak distinct unacked parcels on any (source, destination) link
    max_unacked_in_flight: int = 0
    #: circuit-breaker state transitions, summed over localities
    breaker_transitions: int = 0
    #: dead letters evicted from the bounded rings
    dead_letters_dropped: int = 0
    #: -- crash-recovery accounting (all zero with crash_recovery=None) -----
    #: localities declared dead by the heartbeat failure detector
    crashes_detected: int = 0
    #: heartbeats emitted across all localities
    heartbeats_sent: int = 0
    #: checkpoint writes completed across all localities
    checkpoints_taken: int = 0
    #: task results made durable on a survivor replica
    tasks_checkpointed: int = 0
    #: dead localities' results restored from the replicated store
    tasks_restored: int = 0
    #: dead localities' tasks re-executed from lineage on survivors
    tasks_reexecuted: int = 0
    #: tasks a declared crash lost (not durable at declaration time);
    #: conservation: every lost task is re-executed, so this equals
    #: ``tasks_reexecuted`` once a recovered run completes
    tasks_lost: int = 0
    #: sends to a declared-dead locality abandoned instead of retried
    parcels_failed_fast: int = 0
    #: crash-to-declaration time, summed over declared crashes (ns)
    detection_ns: int = 0
    #: declaration-to-restored time, summed over declared crashes (ns)
    restore_ns: int = 0
    #: restore-to-last-replacement time, summed over declared crashes (ns)
    reexecution_ns: int = 0
    #: crash-to-recovered total; equals detection + restore + reexecution
    recovery_total_ns: int = 0
    #: application tasks that ran to completion, recovery bookkeeping
    #: (checkpoint writes, redundant re-executions) subtracted out; on a
    #: recovered run this equals the crash-free run's task count
    app_tasks_completed: int = 0
    #: -- tail-tolerance accounting (all zero with tail=None) ----------------
    #: localities the gray detector currently flags degraded (end of run)
    localities_degraded: int = 0
    #: healthy -> degraded transitions observed over the whole run
    degraded_events: int = 0
    #: hedge timers armed on unacked sends
    hedges_armed: int = 0
    #: hedge copies actually put on the wire (timer fired before the ack)
    hedges_sent: int = 0
    #: hedge copies that delivered first (the original was still in flight)
    hedges_won: int = 0
    #: hedge copies beaten by the original and deduplicated on arrival
    hedges_lost: int = 0
    #: hedge timers cancelled by an ack (or teardown) before firing
    hedges_cancelled: int = 0
    #: tasks of a degraded locality cloned onto a healthy survivor
    tasks_speculated: int = 0
    #: clones that completed before their original (first-completion-wins)
    speculation_wins: int = 0
    #: clones called off: the original won, or the clone itself failed
    speculations_cancelled: int = 0
    #: original tasks successfully cancelled after their clone won
    originals_cancelled: int = 0
    #: speculation budget at end of run (``max_speculation_frac`` applied)
    speculation_budget: int = 0
    #: stale-epoch parcels from fenced localities rejected on arrival
    fenced_rejections: int = 0

    def assert_parcels_conserved(self) -> None:
        """Every wire copy must meet exactly one fate.

        ``sent + retransmitted`` counts copies put on the wire;
        ``received + dropped + duplicates-discarded`` counts copies taken
        off it.  The check itself lives in the shared invariant catalogue
        (:data:`repro.verify.invariants.PARCELS_CONSERVED`, rule PF401);
        this method stays as the assert-style spelling with the identical
        failure message.
        """
        # Imported lazily: repro.verify lowers workloads through this module.
        from repro.verify.invariants import PARCELS_CONSERVED

        PARCELS_CONSERVED.require(self)

    @property
    def execution_time_s(self) -> float:
        return self.execution_time_ns / 1e9

    @property
    def total_cores(self) -> int:
        return self.num_localities * self.cores_per_locality

    # -- the idle-rate decomposition figD plots ----------------------------

    @property
    def _budget_ns(self) -> float:
        return float(self.total_cores * self.execution_time_ns)

    @property
    def idle_rate(self) -> float:
        """System-wide Eq. 1: share of the core-time budget not computing."""
        budget = self._budget_ns
        if budget <= 0:
            return 0.0
        return (budget - self.total_exec_ns) / budget

    @property
    def overhead_idle_rate(self) -> float:
        """The idle-rate share attributable to task management."""
        budget = self._budget_ns
        return self.total_mgmt_ns / budget if budget > 0 else 0.0

    @property
    def network_wait_rate(self) -> float:
        """The idle-rate share attributable to parcels in flight.

        Normalizes the cumulative ready-to-delivered time of all received
        parcels by the core-time budget: the fraction of the machine's
        capacity spent with a consumer-side value still on the wire.  The
        remainder of the idle-rate beyond overhead and network wait is
        starvation (plus scheduler polling), as on a single node.
        """
        budget = self._budget_ns
        return self.network_wait_ns / budget if budget > 0 else 0.0


class Locality:
    """One simulated node: a Runtime plus its parcelport and AGAS cache."""

    def __init__(
        self,
        index: int,
        runtime: Runtime,
        parcelport: Parcelport,
        agas: AgasCache,
    ) -> None:
        self.index = index
        self.runtime = runtime
        self.parcelport = parcelport
        self.agas = agas
        #: set when this locality fail-stops (see FaultPlan.crashes)
        self.crashed = False


class DistRuntime:
    """A single-launch multi-locality runtime over one simulated clock."""

    def __init__(self, config: DistConfig | None = None, **kwargs: Any) -> None:
        if config is None:
            config = DistConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a DistConfig or keyword arguments")
        self.config = config
        self.simulator = Simulator()
        self.network = (
            config.network if config.network is not None else NetworkModel()
        )
        self.agas = AgasService()
        #: the distributed (cross-locality) counter registry
        self.registry = CounterRegistry()
        self._finish_ns: int | None = None
        agas_params = config.agas if config.agas is not None else AgasParams()
        spec = config.resolve_platform()
        #: the fault layer; None whenever the plan cannot perturb the run,
        #: so FaultPlan.none() takes the exact legacy code path
        self.injector: FaultInjector | None = None
        if config.faults is not None and config.faults.is_active:
            self.injector = FaultInjector(config.faults)
        #: parcel ids are per-runtime (reset-safe): every port draws from
        #: this one counter, so ids are unique across the system but two
        #: independent DistRuntimes never share an id sequence
        self._parcel_ids = itertools.count(1)

        self.localities: list[Locality] = []
        for i in range(config.num_localities):
            loc_spec = spec
            if self.injector is not None:
                factor = self.injector.straggler_factor(i)
                if factor != 1.0:
                    # A straggler's every task computes and manages slower.
                    loc_spec = replace(
                        spec,
                        costs=replace(
                            spec.costs,
                            per_point_ns=spec.costs.per_point_ns * factor,
                            task_overhead_ns=(
                                spec.costs.task_overhead_ns * factor
                            ),
                        ),
                    )
            runtime = Runtime(
                RuntimeConfig(
                    platform=loc_spec,
                    num_cores=config.cores_per_locality,
                    scheduler=config.scheduler,
                    # Distinct, deterministic jitter stream per locality;
                    # locality 0 keeps the caller's seed so a 1-locality
                    # run reproduces the single-node runtime exactly.
                    seed=config.seed + 0x9E3779B1 * i,
                    timer_counters=config.timer_counters,
                    # Admission control applies per locality (each has its
                    # own scheduler); credits/breaker belong to the port.
                    overload=config.overload,
                ),
                simulator=self.simulator,
            )
            overload = config.overload
            port = Parcelport(
                i,
                self.simulator,
                self.network,
                self.registry,
                id_source=self._parcel_ids,
                injector=self.injector,
                retry=config.retry,
                seed=config.seed,
                credits=overload.credits if overload is not None else None,
                breaker=overload.breaker if overload is not None else None,
                dead_letter_capacity=config.dead_letter_capacity,
            )
            cache = AgasCache(self.agas, i, self.registry, agas_params)
            self.localities.append(Locality(i, runtime, port, cache))
            self._mirror_thread_counters(i, runtime)
        ports = {loc.index: loc.parcelport for loc in self.localities}
        for loc in self.localities:
            loc.parcelport.connect(ports)

        self.platform = self.localities[0].runtime.platform
        #: future_id -> owning locality, for every future this facade issued
        self._owner: dict[int, int] = {}
        #: (future_id, destination, transform) -> proxy future.  The
        #: transform participates by identity; keying the callable itself
        #: (not ``id()``) keeps it alive, so a recycled address can never
        #: alias two different transforms.
        self._proxies: dict[
            tuple[int, int, Callable[[Any], Any] | None], Future
        ] = {}
        #: proxy key -> producer re-executions already spent on it
        self._recoveries: dict[
            tuple[int, int, Callable[[Any], Any] | None], int
        ] = {}
        #: proxy key -> (source future, ship closure); populated only under
        #: crash recovery so declared-dead senders' parcels can be re-shipped
        #: from the value's new home
        self._shippers: dict[
            tuple[int, int, Callable[[Any], Any] | None],
            tuple[Future, Callable[[Future], None]],
        ] = {}
        #: the crash-recovery layer; None (the default) costs nothing and
        #: leaves the event schedule bit-identical to pre-recovery builds
        self.recovery_manager: RecoveryManager | None = None
        if config.crash_recovery is not None:
            self.recovery_manager = RecoveryManager(
                self, config.crash_recovery
            )
        #: the gray-failure tolerance layer; None (the default) installs no
        #: spawn hooks, no sketches and no hedge timers — bit-identical off
        self.tail_manager: TailManager | None = None
        if config.tail is not None:
            self.tail_manager = TailManager(self, config.tail)
            for loc in self.localities:
                loc.parcelport.attach_tail(self.tail_manager)
        self._ran = False
        self._result: DistRunResult | None = None

    def _mirror_thread_counters(self, index: int, runtime: Runtime) -> None:
        """Re-export a locality's key thread counters at ``locality#N``.

        Each locality's own registry addresses itself as ``locality#0``;
        the distributed registry presents the true topology so wildcard
        aggregation and per-locality discovery work across the system.
        """
        executor = runtime.executor
        prefix = f"/threads{{locality#{index}/total}}"

        def exec_ns() -> float:
            return float(sum(w.exec_ns for w in executor.workers))

        def mgmt_ns() -> float:
            return float(sum(w.mgmt_ns for w in executor.workers))

        def tasks() -> float:
            return float(sum(w.tasks_executed for w in executor.workers))

        def wall_ns() -> float:
            end = (
                self._finish_ns
                if self._finish_ns is not None
                else self.simulator.now
            )
            return float(len(executor.workers) * end)

        def idle_rate() -> float:
            budget = wall_ns()
            return (budget - exec_ns()) / budget if budget > 0 else 0.0

        reg = self.registry
        reg.derived(f"{prefix}/time/cumulative", exec_ns,
                    "per-locality task execution time (ns)")
        reg.derived(f"{prefix}/time/cumulative-overhead", mgmt_ns,
                    "per-locality task management time (ns)")
        reg.derived(f"{prefix}/count/cumulative", tasks,
                    "per-locality tasks executed")
        reg.derived(f"{prefix}/idle-rate", idle_rate,
                    "per-locality Eq. 1 against the global wall clock")
        policy = runtime.policy
        for w in executor.workers:
            reg.value(
                f"/threads{{locality#{index}/worker-thread#{w.index}}}"
                "/count/queue-depth@gauge",
                "staged+pending tasks homed on this worker",
                source=(lambda p, i: lambda: float(p.worker_queue_depth(i)))(
                    policy, w.index
                ),
            )

    # -- placement bookkeeping ---------------------------------------------

    def locality(self, index: int) -> Locality:
        return self.localities[index]

    @property
    def num_localities(self) -> int:
        return self.config.num_localities

    def owner_of(self, future: Future) -> int | None:
        """The locality owning ``future``, or None if it never passed
        through this facade (caller-made futures are location-free)."""
        return self._owner.get(future.future_id)

    def register_gid(self, locality: int, name: str = "") -> GlobalId:
        """Mint an AGAS gid homed on ``locality`` for a long-lived object."""
        if not 0 <= locality < self.num_localities:
            raise ValueError(f"locality {locality} outside this runtime")
        return self.agas.register(locality, name)

    def make_ready_future(
        self, value: Any, *, locality: int = 0, name: str = ""
    ) -> Future:
        """A ready future owned by ``locality`` (initial data placement)."""
        f = Future(name)
        f.set_value(value)
        self._owner[f.future_id] = locality
        if self.recovery_manager is not None:
            self.recovery_manager.record_root(f)
        return f

    # -- work submission ----------------------------------------------------

    def async_(
        self,
        fn: Callable[..., Any],
        *args: Any,
        locality: int = 0,
        work: WorkDescriptor | None = None,
        name: str = "",
        priority: Priority = Priority.NORMAL,
        qos: Any | None = None,
    ) -> Future:
        """``hpx::async`` with explicit locality placement."""
        loc = self.localities[locality]
        f = loc.runtime.async_(
            fn, *args, work=work, name=name, priority=priority, qos=qos
        )
        self._owner[f.future_id] = locality
        if self.recovery_manager is not None:
            self.recovery_manager.record_async(
                f, fn, args, work, name, priority, qos
            )
        return f

    def dataflow(
        self,
        fn: Callable[..., Any],
        dependencies: Sequence[Future],
        *,
        locality: int = 0,
        work: WorkDescriptor | None = None,
        name: str = "",
        priority: Priority = Priority.NORMAL,
        qos: Any | None = None,
    ) -> Future:
        """``hpx::dataflow`` on ``locality``; remote deps become parcels.

        Dependencies owned by another locality are replaced with proxy
        futures fed by the parcelport (whole-value payloads sized by the
        network's ``default_payload_bytes``).  Workloads that know their
        communication pattern should build the proxies themselves with
        :meth:`remote_value` to control payload size, AGAS keys and
        sender-side projection — as the distributed stencil does for its
        halo exchange.
        """
        deps = [self._localize(d, locality) for d in dependencies]
        loc = self.localities[locality]
        f = loc.runtime.dataflow(
            fn, deps, work=work, name=name, priority=priority, qos=qos
        )
        self._owner[f.future_id] = locality
        if self.recovery_manager is not None:
            # Lineage records the *caller's* dependencies: re-execution
            # re-localizes them against the post-crash owner map, so a dep
            # that died with its locality is rewired to its replacement.
            self.recovery_manager.record_dataflow(
                f, fn, tuple(dependencies), work, name, priority, qos
            )
        return f

    def _localize(self, dep: Future, destination: int) -> Future:
        owner = self._owner.get(dep.future_id)
        if owner is None or owner == destination:
            return dep
        return self.remote_value(dep, destination)

    def remote_value(
        self,
        future: Future,
        destination: int,
        *,
        payload_bytes: int | None = None,
        transform: Callable[[Any], Any] | None = None,
        gid: GlobalId | None = None,
        name: str = "",
        recovery_work: WorkDescriptor | None = None,
    ) -> Future:
        """A proxy on ``destination`` for a future owned elsewhere.

        When the source future becomes ready, its owning locality resolves
        ``gid`` through its AGAS cache (when given), serializes
        ``transform(value)`` (default: the value itself) into a parcel of
        ``payload_bytes``, and ships it; parcel delivery satisfies the
        returned proxy.  An exceptional source propagates its exception
        through the parcel, as a real remote action would.

        Proxies are deduplicated per (source future, destination,
        transform): several consumers on one locality share one parcel.
        Distinct ``transform`` callables produce distinct parcels even for
        the same source — a two-partition ring ships both edges of the same
        neighbour — so pass a stable function (not a fresh lambda per call)
        when sharing is intended.

        Under ``recovery="reexecute"``, ``recovery_work`` is the virtual
        cost of re-running the producing task when this proxy's parcel
        exhausts its retry budget (default: a bookkeeping-only task).  The
        re-executed producer ships a *fresh* parcel; if every recovery
        fails too, the proxy carries :class:`ParcelLostError`.
        """
        owner = self._owner.get(future.future_id)
        if owner is None:
            raise ValueError(
                f"future {future.name!r} has no owning locality; only "
                "futures issued by this DistRuntime can be shipped"
            )
        if owner == destination:
            return future
        key = (future.future_id, destination, transform)
        proxy = self._proxies.get(key)
        if proxy is not None:
            return proxy
        proxy = Future(name or f"{future.name}@loc{destination}")
        # Keep the analyzer's graph connected across the network hop.
        proxy.dependencies = (future,)
        self._owner[proxy.future_id] = destination
        self._proxies[key] = proxy

        def current_source() -> Locality:
            # Resolved at ship time, not at proxy creation: crash recovery
            # re-homes a dead locality's futures, and a re-shipped (or
            # late-satisfied) value must depart from its *new* home.
            # Without recovery the owner never changes, so this is the
            # same locality the legacy code captured.
            return self.localities[self._owner[future.future_id]]

        def deliver(parcel: Parcel) -> None:
            # Idempotent: a straggling duplicate delivered after a recovery
            # (or vice versa) must not double-set the proxy.
            if not proxy.is_ready:
                proxy.set_value(parcel.payload)

        def on_lost(parcel: Parcel, attempts: int) -> None:
            self._parcel_lost(
                proxy,
                key,
                parcel,
                attempts,
                source=current_source(),
                destination=destination,
                src_future=future,
                payload_bytes=payload_bytes,
                transform=transform,
                gid=gid,
                recovery_work=recovery_work,
                deliver=deliver,
            )

        def ship(ready: Future) -> None:
            source = current_source()
            mgr = self.recovery_manager
            if mgr is not None and mgr.is_dead(destination):
                # The consumer's locality is gone: burning a send (and its
                # whole retry budget) on it would be pure waste.
                mgr.note_failed_fast(source.index)
                return
            if source.index == destination:
                # Only reachable under crash recovery: the producer was
                # re-homed onto the consumer's own locality, so the value
                # is local now and no parcel is needed.
                if proxy.is_ready:
                    return
                if ready.has_exception:
                    proxy.set_exception(ready.exception)
                else:
                    proxy.set_value(
                        ready.value
                        if transform is None
                        else transform(ready.value)
                    )
                return
            resolve_ns = 0
            if gid is not None:
                _, resolve_ns = source.agas.resolve(gid)
            if ready.has_exception:

                def deliver_error(parcel: Parcel) -> None:
                    if not proxy.is_ready:
                        proxy.set_exception(parcel.payload)

                def error_lost(parcel: Parcel, attempts: int) -> None:
                    # The payload *is* the error; losing the parcel must not
                    # lose the error, so it reaches the consumer directly.
                    if not proxy.is_ready:
                        proxy.set_exception(ready.exception)

                source.parcelport.send(
                    destination,
                    ready.exception,
                    payload_bytes,
                    deliver_error,
                    resolve_ns=resolve_ns,
                    is_error=True,
                    on_lost=error_lost,
                )
                return
            value = ready.value if transform is None else transform(ready.value)
            source.parcelport.send(
                destination, value, payload_bytes, deliver,
                resolve_ns=resolve_ns, on_lost=on_lost,
            )

        if self.recovery_manager is not None:
            self._shippers[key] = (future, ship)
            self.recovery_manager.record_proxy(
                proxy, future, payload_bytes, transform, gid,
                recovery_work, proxy.name,
            )
        future.on_ready(ship)
        return proxy

    def _reship(self, key: tuple[int, int, Callable[[Any], Any] | None]) -> None:
        """Re-send a proxy's value after its producer's locality died.

        Called by the recovery manager for proxies that were fed (or were
        about to be fed) by a declared-dead sender; the stored ship closure
        resolves the source locality dynamically, so the fresh parcel
        departs from the value's post-recovery home.
        """
        proxy = self._proxies.get(key)
        entry = self._shippers.get(key)
        if proxy is None or entry is None or proxy.is_ready:
            return
        src_future, ship = entry
        if src_future.is_ready:
            ship(src_future)

    def _parcel_lost(
        self,
        proxy: Future,
        key: tuple[int, int, Callable[[Any], Any] | None],
        parcel: Parcel,
        attempts: int,
        *,
        source: Locality,
        destination: int,
        src_future: Future,
        payload_bytes: int | None,
        transform: Callable[[Any], Any] | None,
        gid: GlobalId | None,
        recovery_work: WorkDescriptor | None,
        deliver: Callable[[Parcel], None],
    ) -> None:
        """A proxy's parcel exhausted its retry budget; recover or fail."""
        if proxy.is_ready:
            return
        mgr = self.recovery_manager
        if mgr is not None and (
            source.crashed or self.localities[destination].crashed
        ):
            # Crash recovery owns this loss: once the detector declares the
            # dead endpoint, the value is re-shipped from its new home (or
            # the send is abandoned outright) — failing the proxy here
            # would beat the recovery to it.  This replaces the terminal
            # "no recovery possible" path below for recovery-enabled runs.
            return
        dest = self.localities[destination]
        used = self._recoveries.get(key, 0)
        recoverable = (
            self.config.recovery == "reexecute"
            and used < self.config.max_recoveries
            and not source.crashed
            and not dest.crashed
        )
        if not recoverable:
            if source.crashed or dest.crashed:
                which = source.index if source.crashed else destination
                detail = f"locality {which} crashed; no recovery possible"
            elif self.config.recovery == "reexecute":
                detail = (
                    f"recovery budget exhausted "
                    f"({self.config.max_recoveries} re-execution(s) spent)"
                )
            else:
                detail = "retry budget exhausted and recovery is disabled"
            proxy.set_exception(
                ParcelLostError(
                    parcel.parcel_id,
                    parcel.source,
                    parcel.destination,
                    attempts,
                    detail=detail,
                )
            )
            return
        self._recoveries[key] = used + 1
        lost_at_ns = self.simulator.now

        def reship(_redone: Future) -> None:
            if proxy.is_ready or source.crashed or dest.crashed:
                return
            resolve_ns = 0
            if gid is not None:
                _, resolve_ns = source.agas.resolve(gid)
            value = (
                src_future.value
                if transform is None
                else transform(src_future.value)
            )

            def deliver_recovered(p: Parcel) -> None:
                if proxy.is_ready:
                    return
                source.parcelport.book_recovery(self.simulator.now - lost_at_ns)
                proxy.set_value(p.payload)

            def lost_again(p: Parcel, att: int) -> None:
                self._parcel_lost(
                    proxy, key, p, att,
                    source=source, destination=destination,
                    src_future=src_future, payload_bytes=payload_bytes,
                    transform=transform, gid=gid,
                    recovery_work=recovery_work, deliver=deliver,
                )

            source.parcelport.send(
                destination, value, payload_bytes, deliver_recovered,
                resolve_ns=resolve_ns, on_lost=lost_again,
            )

        # Re-execute the producer on its home locality (charging the
        # caller-declared task cost), then ship a fresh parcel.
        redo = source.runtime.async_(
            lambda: None,
            work=recovery_work,
            name=f"recover:{proxy.name}",
        )
        redo.on_ready(reship)

    # -- driving -------------------------------------------------------------

    def _crash(self, loc: Locality) -> None:
        """Fail-stop ``loc`` now: no more tasks, no more parcels."""
        loc.crashed = True
        loc.runtime.executor.halt()
        loc.parcelport.halt()

    def _diagnose(self) -> str:
        """Name what is (or was) holding the run up, per locality."""
        parts: list[str] = []
        for loc in self.localities:
            bits: list[str] = []
            if loc.crashed:
                bits.append("crashed")
            outstanding = loc.runtime.executor.outstanding_tasks
            if outstanding:
                bits.append(f"{outstanding} task(s) outstanding")
            awaiting = loc.parcelport.awaiting_ack
            if awaiting:
                parcel, attempt = max(awaiting, key=lambda pa: pa[1])
                bits.append(
                    f"{len(awaiting)} parcel(s) awaiting ack (e.g. parcel "
                    f"#{parcel.parcel_id} on {parcel.link}, "
                    f"transmission {attempt + 1})"
                )
            dead = loc.parcelport.dead_letters
            if dead:
                parcel = dead[0]
                dropped = loc.parcelport.dead_letters_dropped
                more = f" (+{dropped} evicted from the ring)" if dropped else ""
                bits.append(
                    f"{len(dead)} parcel(s) lost in transit (e.g. parcel "
                    f"#{parcel.parcel_id} on {parcel.link}){more}"
                )
            parked = loc.parcelport.waiting_sends
            if parked:
                bits.append(
                    f"{parked} send(s) parked behind a credit/breaker gate"
                )
            if bits:
                parts.append(f"locality {loc.index}: " + ", ".join(bits))
        if self.recovery_manager is not None:
            # Recovery-enabled runs report live detector / checkpoint /
            # recovery state instead of declaring dependency cones doomed:
            # a cone behind a declared crash is being re-executed, not dead.
            parts.extend(self.recovery_manager.diagnose())
            if self.tail_manager is not None:
                parts.extend(self.tail_manager.diagnose())
            return "; ".join(parts)
        # Name the dependency cones that died with a crashed locality: a
        # pending proxy whose transitive producer crashed can never become
        # ready, and that (not the transport) is what starves its consumer.
        doomed: dict[int, list[str]] = {}
        for proxy in self._proxies.values():
            if proxy.is_ready:
                continue
            crashed = self._crashed_dependency(proxy)
            if crashed is not None:
                doomed.setdefault(crashed, []).append(proxy.name)
        for crashed in sorted(doomed):
            names = doomed[crashed]
            parts.append(
                f"{len(names)} pending future(s) depend on crashed locality "
                f"{crashed} and can never become ready (e.g. {names[0]!r})"
            )
        return "; ".join(parts) if parts else "no locality reports pending work"

    def run(self, *, watchdog_ns: int | None = None) -> DistRunResult:
        """Drive all localities until every task everywhere has terminated.

        ``watchdog_ns`` (default: the config's) bounds the run in *virtual*
        time: if the deadline passes with work still pending, the run stops
        with a :class:`WatchdogTimeout` whose message names the stuck
        localities and unacknowledged parcels instead of hanging silently.
        """
        if self._ran:
            raise RuntimeError(
                "DistRuntime instances are single-use; build a new one"
            )
        self._ran = True
        if watchdog_ns is None:
            watchdog_ns = self.config.watchdog_ns
        if self.injector is not None:
            for loc in self.localities:
                at = self.injector.crash_time(loc.index)
                if at is not None:
                    self.simulator.schedule_at(
                        at, (lambda l: lambda: self._crash(l))(loc)
                    )
        for loc in self.localities:
            loc.runtime.executor.start_workers()
        if self.recovery_manager is not None:
            self.recovery_manager.start()
        if self.tail_manager is not None:
            self.tail_manager.start()
        if watchdog_ns is not None:
            self.simulator.run_until(watchdog_ns)
            unfinished = self.simulator.pending_events() > 0 or any(
                not loc.crashed and loc.runtime.executor.outstanding_tasks > 0
                for loc in self.localities
            )
            if unfinished:
                raise WatchdogTimeout(watchdog_ns, self._diagnose())
        else:
            self.simulator.run()
        stuck = [
            loc.index
            for loc in self.localities
            # A crashed locality's tasks are lost, not stuck: nothing is
            # waiting to run them, so they are not a deadlock.
            if not loc.crashed and loc.runtime.executor.outstanding_tasks > 0
        ]
        if stuck:
            dead = [
                p
                for loc in self.localities
                for p in loc.parcelport.dead_letters
            ]
            if dead:
                first = dead[0]
                raise ParcelLostError(
                    first.parcel_id,
                    first.source,
                    first.destination,
                    1,
                    detail=(
                        f"{len(dead)} parcel(s) lost in transit left "
                        f"localities {stuck} starved (unreliable transport; "
                        "enable retry=RetryParams(...) to retransmit)"
                    ),
                )
            detail = ", ".join(
                f"locality {i}: "
                f"{self.localities[i].runtime.executor.outstanding_tasks} "
                "task(s)"
                for i in stuck
            )
            raise DeadlockError(
                f"tasks outstanding with an empty event queue ({detail}) — "
                "suspended on futures (or parcels) nobody satisfies?"
            )
        finish = max(
            [
                loc.runtime.executor.finish_ns or 0
                for loc in self.localities
            ]
            + [0]
        )
        self._finish_ns = finish
        for loc in self.localities:
            # Align every locality on the global wall clock so idle-rates
            # charge end-of-run skew as idleness (HPX: the runtime does not
            # shut down until every locality reaches the barrier).
            loc.runtime.executor.finish_ns = finish

        reg = self.registry

        def ptotal(tail: str) -> int:
            return int(reg.total(f"/parcels{{locality#*/total}}/{tail}"))

        mgr = self.recovery_manager
        tail = self.tail_manager
        if mgr is not None:
            completed = sum(
                loc.runtime.executor.tasks_completed
                for loc in self.localities
            )
            app_tasks_completed = completed - mgr.internal_completions
        else:
            app_tasks_completed = 0
        result = DistRunResult(
            execution_time_ns=finish,
            counters=reg.snapshot(finish),
            per_locality=tuple(
                loc.runtime.registry.snapshot(finish) for loc in self.localities
            ),
            platform_name=self.platform.name,
            num_localities=self.num_localities,
            cores_per_locality=self.config.cores_per_locality,
            tasks_executed=sum(
                loc.runtime.executor.total_spawned for loc in self.localities
            ),
            parcels_sent=int(reg.total("/parcels{locality#*/total}/count/sent")),
            parcels_received=int(
                reg.total("/parcels{locality#*/total}/count/received")
            ),
            bytes_sent=int(
                reg.total("/parcels{locality#*/total}/count/bytes-sent")
            ),
            serialization_time_ns=int(
                reg.total("/parcels{locality#*/total}/time/serialization")
            ),
            network_wait_ns=int(
                reg.total("/parcels{locality#*/total}/time/network-wait")
            ),
            agas_cache_hits=int(
                reg.total("/agas{locality#*/total}/count/cache-hits")
            ),
            agas_cache_misses=int(
                reg.total("/agas{locality#*/total}/count/cache-misses")
            ),
            total_exec_ns=int(
                reg.total("/threads{locality#*/total}/time/cumulative")
            ),
            total_mgmt_ns=int(
                reg.total("/threads{locality#*/total}/time/cumulative-overhead")
            ),
            parcels_dropped=ptotal("count/dropped"),
            parcels_retransmitted=ptotal("count/retransmitted"),
            duplicates_discarded=ptotal("count/duplicates-discarded"),
            retry_backoff_ns=ptotal("time/retry-backoff"),
            parcels_recovered=ptotal("count/recovered"),
            recovery_ns=ptotal("time/recovery"),
            crashed_localities=tuple(
                loc.index for loc in self.localities if loc.crashed
            ),
            tasks_shed=sum(
                loc.runtime.admission.stats.shed
                for loc in self.localities
                if loc.runtime.admission is not None
            ),
            sends_deferred=sum(
                loc.parcelport.sends_deferred for loc in self.localities
            ),
            credits_exhausted_ns=sum(
                loc.parcelport.credits_exhausted_ns for loc in self.localities
            ),
            max_unacked_in_flight=max(
                (loc.parcelport.max_unacked_in_flight
                 for loc in self.localities),
                default=0,
            ),
            breaker_transitions=sum(
                loc.parcelport.breaker_transitions for loc in self.localities
            ),
            dead_letters_dropped=sum(
                loc.parcelport.dead_letters_dropped for loc in self.localities
            ),
            crashes_detected=mgr.crashes_detected if mgr else 0,
            heartbeats_sent=mgr.heartbeats_sent if mgr else 0,
            checkpoints_taken=mgr.checkpoints_taken if mgr else 0,
            tasks_checkpointed=mgr.tasks_checkpointed if mgr else 0,
            tasks_restored=mgr.tasks_restored if mgr else 0,
            tasks_reexecuted=mgr.tasks_reexecuted if mgr else 0,
            tasks_lost=mgr.tasks_lost if mgr else 0,
            parcels_failed_fast=mgr.parcels_failed_fast if mgr else 0,
            detection_ns=mgr.detection_ns if mgr else 0,
            restore_ns=mgr.restore_ns if mgr else 0,
            reexecution_ns=mgr.reexecution_ns if mgr else 0,
            recovery_total_ns=mgr.recovery_total_ns if mgr else 0,
            app_tasks_completed=app_tasks_completed,
            localities_degraded=tail.localities_degraded if tail else 0,
            degraded_events=tail.degraded_events if tail else 0,
            hedges_armed=tail.hedges_armed if tail else 0,
            hedges_sent=tail.hedges_sent if tail else 0,
            hedges_won=tail.hedges_won if tail else 0,
            hedges_lost=tail.hedges_lost if tail else 0,
            hedges_cancelled=tail.hedges_cancelled if tail else 0,
            tasks_speculated=tail.tasks_speculated if tail else 0,
            speculation_wins=tail.speculation_wins if tail else 0,
            speculations_cancelled=tail.speculations_cancelled if tail else 0,
            originals_cancelled=tail.originals_cancelled if tail else 0,
            speculation_budget=tail.speculation_budget if tail else 0,
            fenced_rejections=tail.fenced_rejections if tail else 0,
        )
        self._result = result
        return result

    def _crashed_dependency(self, future: Future) -> int | None:
        """The crashed locality a pending future transitively depends on."""
        seen: set[int] = set()
        stack = [future]
        while stack:
            f = stack.pop()
            if f.future_id in seen or f.is_ready:
                continue
            seen.add(f.future_id)
            owner = self._owner.get(f.future_id)
            if owner is not None and self.localities[owner].crashed:
                return owner
            stack.extend(f.dependencies)
        return None

    def wait(
        self,
        futures: Sequence[Future] = (),
        *,
        watchdog_ns: int | None = None,
    ) -> DistRunResult:
        """Run (if not yet run) and demand that ``futures`` were satisfied.

        The blocking ``.get()`` of this runtime: any future that carries an
        exception re-raises it here (a proxy whose parcel was lost raises
        :class:`ParcelLostError`); a future still pending because its
        producer's locality crashed raises :class:`LocalityCrashError`
        naming that locality.  Never hangs: a genuinely stuck run already
        surfaced as :class:`WatchdogTimeout`,
        :class:`~repro.runtime.sim_executor.DeadlockError` or
        :class:`ParcelLostError` from :meth:`run`.
        """
        result = (
            self.run(watchdog_ns=watchdog_ns) if not self._ran else self._result
        )
        if result is None:
            raise RuntimeError("the run failed before producing a result")
        for f in futures:
            if f.has_exception:
                f.value  # noqa: B018 - re-raises the stored exception
            if not f.is_ready:
                crashed = self._crashed_dependency(f)
                if crashed is not None:
                    raise LocalityCrashError(
                        crashed,
                        detail=(
                            f"future {f.name!r} depends on work that died "
                            "with it and can never become ready"
                        ),
                    )
                dead = [
                    p
                    for loc in self.localities
                    for p in loc.parcelport.dead_letters
                ]
                if dead:
                    first = dead[0]
                    raise ParcelLostError(
                        first.parcel_id,
                        first.source,
                        first.destination,
                        1,
                        detail=(
                            f"future {f.name!r} starved; {len(dead)} "
                            "parcel(s) lost on the unreliable transport "
                            "(enable retry=RetryParams(...) to retransmit)"
                        ),
                    )
                raise DeadlockError(
                    f"future {f.name!r} is still pending after the run "
                    "completed — it was never connected to any task"
                )
        return result
