"""Parcelport: cross-locality value transfer as discrete events.

An HPX parcel is an active message: destination gid, action, serialized
arguments.  Here a parcel carries the one thing the distributed task graph
needs moved — a future's value travelling to the locality that consumes it
(:meth:`repro.dist.DistRuntime.remote_value` builds the proxy futures).

The lifecycle of one send, all on the shared virtual clock:

1. the source value becomes ready at ``t``;
2. the sender's parcelport charges AGAS resolution (caller-supplied, see
   :class:`repro.dist.agas.AgasCache`) and serialization
   (:meth:`repro.dist.network.NetworkModel.serialization_ns`); the parcel
   "departs" at ``t + resolve + serialize``;
3. the wire adds link latency plus size/bandwidth
   (:meth:`~repro.dist.network.NetworkModel.transfer_ns`);
4. at delivery the *destination* port books the receive counters and runs
   the delivery callback — which satisfies a proxy future and thereby
   spawns/unblocks tasks on the destination's scheduler.

Counters (HPX-style names, registered per locality in the distributed
registry; catalogued in docs/distributed.md):

- ``/parcels{locality#N/total}/count/sent`` / ``count/received``
- ``/parcels{locality#N/total}/count/bytes-sent`` / ``count/bytes-received``
  (wire bytes: payload plus envelope)
- ``/parcels{locality#N/total}/time/serialization`` — cumulative sender-side
  encoding time
- ``/parcels{locality#N/total}/time/network-wait`` — cumulative
  ready-to-delivered time of parcels this locality *received*; the raw
  material of figD's network-wait idle component
- ``/parcels{locality#N/total}/count/queue-depth@gauge`` — parcels this
  locality has sent that are still in flight
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.counters.registry import CounterRegistry
from repro.dist.network import NetworkModel
from repro.sim.engine import Simulator


@dataclass
class Parcel:
    """One in-flight (or delivered) cross-locality message."""

    parcel_id: int
    source: int
    destination: int
    payload: Any
    payload_bytes: int
    wire_bytes: int
    #: when the carried value became ready at the source
    ready_ns: int
    #: when the encoded parcel hit the wire
    departed_ns: int
    #: filled in at delivery
    delivered_ns: int | None = None
    #: True when the payload is an exception being propagated, not a value
    is_error: bool = field(default=False, kw_only=True)

    @property
    def in_flight_ns(self) -> int:
        """Ready-to-delivered time; the consumer-visible network wait."""
        if self.delivered_ns is None:
            raise ValueError(f"parcel #{self.parcel_id} not delivered yet")
        return self.delivered_ns - self.ready_ns


class Parcelport:
    """One locality's send/receive endpoint on the simulated network."""

    _ids = itertools.count(1)

    def __init__(
        self,
        locality: int,
        simulator: Simulator,
        network: NetworkModel,
        registry: CounterRegistry,
    ) -> None:
        self.locality = locality
        self.sim = simulator
        self.network = network
        self._peers: dict[int, "Parcelport"] = {locality: self}
        self._outgoing_in_flight = 0
        prefix = f"/parcels{{locality#{locality}/total}}"
        self._c_sent = registry.raw(f"{prefix}/count/sent", "parcels sent")
        self._c_received = registry.raw(
            f"{prefix}/count/received", "parcels received"
        )
        self._c_bytes_sent = registry.raw(
            f"{prefix}/count/bytes-sent", "wire bytes sent"
        )
        self._c_bytes_received = registry.raw(
            f"{prefix}/count/bytes-received", "wire bytes received"
        )
        self._c_serialization = registry.raw(
            f"{prefix}/time/serialization",
            "cumulative sender-side encoding time (ns)",
        )
        self._c_network_wait = registry.raw(
            f"{prefix}/time/network-wait",
            "cumulative ready-to-delivered time of received parcels (ns)",
        )
        registry.value(
            f"{prefix}/count/queue-depth@gauge",
            "sent parcels still in flight",
            source=lambda: float(self._outgoing_in_flight),
        )

    def connect(self, ports: dict[int, "Parcelport"]) -> None:
        """Wire this port to its peers (DistRuntime calls this once)."""
        self._peers = dict(ports)

    # -- sending ------------------------------------------------------------

    def send(
        self,
        destination: int,
        payload: Any,
        payload_bytes: int | None,
        on_delivered: Callable[[Parcel], None],
        *,
        resolve_ns: int = 0,
        is_error: bool = False,
    ) -> Parcel:
        """Ship ``payload`` to ``destination``; deliver via callback.

        ``resolve_ns`` is the AGAS charge the caller already computed for
        this send; it delays departure but is *not* booked as serialization
        time.  Loopback sends are a protocol error — local values never
        enter the parcelport (callers short-circuit them), so a loopback
        here means an ownership-tracking bug worth failing loudly on.
        """
        if destination == self.locality:
            raise ValueError(
                f"loopback parcel on locality {self.locality}: local values "
                "must not go through the parcelport"
            )
        if destination not in self._peers:
            raise KeyError(
                f"locality {self.locality} has no route to {destination}"
            )
        if payload_bytes is None:
            payload_bytes = self.network.params.default_payload_bytes
        serialize_ns = self.network.serialization_ns(payload_bytes)
        now = self.sim.now
        parcel = Parcel(
            parcel_id=next(Parcelport._ids),
            source=self.locality,
            destination=destination,
            payload=payload,
            payload_bytes=payload_bytes,
            wire_bytes=self.network.wire_bytes(payload_bytes),
            ready_ns=now,
            departed_ns=now + resolve_ns + serialize_ns,
            is_error=is_error,
        )
        self._c_sent.increment()
        self._c_bytes_sent.increment(parcel.wire_bytes)
        self._c_serialization.increment(serialize_ns)
        self._outgoing_in_flight += 1
        transfer_ns = self.network.transfer_ns(
            self.locality, destination, payload_bytes
        )
        peer = self._peers[destination]
        self.sim.schedule(
            resolve_ns + serialize_ns + transfer_ns,
            lambda: self._deliver(peer, parcel, on_delivered),
        )
        return parcel

    def _deliver(
        self,
        peer: "Parcelport",
        parcel: Parcel,
        on_delivered: Callable[[Parcel], None],
    ) -> None:
        self._outgoing_in_flight -= 1
        parcel.delivered_ns = self.sim.now
        peer._c_received.increment()
        peer._c_bytes_received.increment(parcel.wire_bytes)
        peer._c_network_wait.increment(parcel.in_flight_ns)
        on_delivered(parcel)

    # -- introspection ------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Parcels sent by this locality that have not yet been delivered."""
        return self._outgoing_in_flight
