"""Parcelport: cross-locality value transfer as discrete events.

An HPX parcel is an active message: destination gid, action, serialized
arguments.  Here a parcel carries the one thing the distributed task graph
needs moved — a future's value travelling to the locality that consumes it
(:meth:`repro.dist.DistRuntime.remote_value` builds the proxy futures).

The lifecycle of one send, all on the shared virtual clock:

1. the source value becomes ready at ``t``;
2. the sender's parcelport charges AGAS resolution (caller-supplied, see
   :class:`repro.dist.agas.AgasCache`) and serialization
   (:meth:`repro.dist.network.NetworkModel.serialization_ns`); the parcel
   "departs" at ``t + resolve + serialize``;
3. the wire adds link latency plus size/bandwidth
   (:meth:`~repro.dist.network.NetworkModel.transfer_ns`), scaled by any
   active :class:`repro.faults.plan.LinkDegradation` window;
4. at delivery the *destination* port books the receive counters and runs
   the delivery callback — which satisfies a proxy future and thereby
   spawns/unblocks tasks on the destination's scheduler.

Two optional layers sit on that path, both off by default and **exactly
free when off** (the no-fault, no-retry send schedules the same single
delivery event it always did):

- a :class:`repro.faults.plan.FaultInjector` decides, per wire
  transmission, whether the copy is dropped, duplicated, or slowed by a
  degradation window;
- :class:`repro.faults.transport.RetryParams` arms an ack/timeout/
  retransmit protocol: every delivery is acknowledged over the reverse
  link, an expired timer retransmits with exponential backoff plus seeded
  jitter, and an exhausted budget fires the caller's ``on_lost`` hook
  (propagating :class:`repro.faults.errors.ParcelLostError` into the
  consuming proxy) instead of hanging.  Receivers discard duplicates by
  (source, parcel id), so at-least-once transmission still satisfies each
  single-assignment proxy future exactly once.

Counters (HPX-style names, registered per locality in the distributed
registry; catalogued in docs/distributed.md and docs/resilience.md):

- ``/parcels{locality#N/total}/count/sent`` / ``count/received`` — logical
  parcels (a retransmission is not a new send; a duplicate is not a new
  receive)
- ``/parcels{locality#N/total}/count/bytes-sent`` / ``count/bytes-received``
  (wire bytes of the logical payload plus envelope, booked once per parcel)
- ``/parcels{locality#N/total}/count/dropped`` — wire copies this locality
  sent that died in transit (injected drops, plus copies arriving at a
  crashed locality)
- ``/parcels{locality#N/total}/count/retransmitted`` — extra wire copies
  this locality sent: retry-timer expiries plus injected duplicates
- ``/parcels{locality#N/total}/count/duplicates-discarded`` — copies this
  locality received for an already-delivered parcel
- ``/parcels{locality#N/total}/count/recovered`` and ``time/recovery`` —
  parcels re-shipped after producer re-execution, and the cumulative
  exhaustion-to-redelivery time (booked by the DistRuntime recovery hook)
- ``/parcels{locality#N/total}/time/serialization`` — cumulative sender-side
  encoding time (charged once per logical parcel)
- ``/parcels{locality#N/total}/time/retry-backoff`` — cumulative time spent
  waiting on retransmit timers that expired
- ``/parcels{locality#N/total}/time/network-wait`` — cumulative
  ready-to-delivered time of parcels this locality *received*; the raw
  material of figD's network-wait idle component
- ``/parcels{locality#N/total}/count/queue-depth@gauge`` — wire copies this
  locality has sent that are still in flight
- ``/parcels{locality#N/total}/count/dead-letters-dropped`` — dead letters
  evicted from the bounded ring (oldest first) once it filled

Two further opt-in layers (:mod:`repro.overload`) gate the send path, and
register an ``/overload{locality#N/total}`` counter family when enabled
(catalogued in docs/overload.md):

- **credit-based flow control** (:class:`repro.overload.config.
  CreditParams`): at most ``window`` distinct unacked parcels per
  destination; further sends park in a per-destination waiting lane until
  an ack or declared loss returns the credit.  A parcel holds one credit
  from its first wire copy to its ack/loss — retransmissions ride the
  same credit.
- **per-link circuit breakers** (:class:`repro.overload.breaker.
  BreakerParams`): consecutive ack-timeouts open the link; while open,
  sends and retransmits park (no wire copies — this is what caps the
  retransmission storm) or, with ``fail_fast``, new sends raise
  :class:`~repro.overload.errors.CircuitOpenError`.  A half-open probe
  with seeded jitter restores the link.

Both require :class:`RetryParams` — acks are what return credits and
detect failures.

Conservation: once nothing is in flight, ``sent + retransmitted ==
received + dropped + duplicates-discarded`` over the whole system (every
wire copy ends in exactly one of the three fates) — asserted by the figD
and figR shape checks.  Parked sends hold the identity trivially: a
parked parcel was counted ``sent`` but has no wire copies yet.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.counters.registry import CounterRegistry
from repro.dist.network import NetworkModel
from repro.faults.plan import FaultInjector, stream_unit
from repro.faults.transport import RetryParams
from repro.faults.errors import FencedEpochError
from repro.overload.breaker import BreakerParams, BreakerState, CircuitBreaker
from repro.overload.config import CreditParams
from repro.overload.errors import CircuitOpenError
from repro.sim.engine import Event, Simulator

#: role tag for the retransmit-jitter stream (see repro.faults.plan)
_ROLE_JITTER = 0x33

#: callback type: delivery of a parcel at its destination
DeliveryFn = Callable[["Parcel"], None]
#: callback type: retry budget exhausted; args are (parcel, attempts)
LostFn = Callable[["Parcel", int], None]


@dataclass
class Parcel:
    """One in-flight (or delivered) cross-locality message."""

    parcel_id: int
    source: int
    destination: int
    payload: Any
    payload_bytes: int
    wire_bytes: int
    #: when the carried value became ready at the source
    ready_ns: int
    #: when the encoded parcel hit the wire
    departed_ns: int
    #: filled in at delivery
    delivered_ns: int | None = None
    #: True when the payload is an exception being propagated, not a value
    is_error: bool = field(default=False, kw_only=True)
    #: the sender's fencing epoch at send time (repro.tail); receivers
    #: reject copies whose epoch predates the sender's current one
    epoch: int = field(default=0, kw_only=True)

    @property
    def in_flight_ns(self) -> int:
        """Ready-to-delivered time; the consumer-visible network wait."""
        if self.delivered_ns is None:
            raise ValueError(f"parcel #{self.parcel_id} not delivered yet")
        return self.delivered_ns - self.ready_ns

    @property
    def link(self) -> str:
        """Human-readable link label for diagnostics."""
        return f"locality {self.source} -> locality {self.destination}"


class Parcelport:
    """One locality's send/receive endpoint on the simulated network.

    ``id_source`` is the parcel-id counter shared by every port of one
    :class:`repro.dist.DistRuntime` — ids are unique *per runtime* and
    restart at 1 for each fresh runtime, so receiver-side dedup bookkeeping
    can never be confused by ids bleeding across independent runtimes (or
    across tests).  A standalone port builds its own counter.
    """

    def __init__(
        self,
        locality: int,
        simulator: Simulator,
        network: NetworkModel,
        registry: CounterRegistry,
        *,
        id_source: Iterator[int] | None = None,
        injector: FaultInjector | None = None,
        retry: RetryParams | None = None,
        seed: int = 0,
        credits: CreditParams | None = None,
        breaker: BreakerParams | None = None,
        dead_letter_capacity: int = 1024,
    ) -> None:
        if (credits is not None or breaker is not None) and retry is None:
            raise ValueError(
                "credit flow control and circuit breakers require RetryParams:"
                " acks are what return credits and detect link failures"
            )
        if dead_letter_capacity < 1:
            raise ValueError("dead_letter_capacity must be >= 1")
        self.locality = locality
        self.sim = simulator
        self.network = network
        self._ids = id_source if id_source is not None else itertools.count(1)
        self._injector = injector
        self._retry = retry
        self._seed = seed
        self._credits = credits
        self._breaker_params = breaker
        self._peers: dict[int, "Parcelport"] = {locality: self}
        self._outgoing_in_flight = 0
        self._halted = False
        #: tail-tolerance manager (repro.tail), attached by the DistRuntime
        #: after construction; None leaves every send path untouched
        self._tail = None
        #: parcel_id -> armed hedge timer (first unacked copy only)
        self._hedge_timers: dict[int, Event] = {}
        #: parcel_id -> first wire-dispatch time, for ack-RTT sketches
        self._sent_at: dict[int, int] = {}
        #: (source, parcel_id) of every parcel delivered here (dedup)
        self._delivered: set[tuple[int, int]] = set()
        #: parcel_id -> (timeout event, parcel, attempt) awaiting an ack
        self._awaiting: dict[int, tuple[Event, "Parcel", int]] = {}
        #: parcels this port dropped with no retransmit protocol to save
        #: them; the DistRuntime deadlock diagnosis names these.  Bounded:
        #: once full the oldest is evicted and counted as dropped-from-ring.
        self._dead_letters: deque[Parcel] = deque()
        self._dead_letter_capacity = dead_letter_capacity
        self._dead_letters_dropped = 0
        #: per-destination lazily created breakers (order of creation is
        #: deterministic: first send to a destination creates its breaker)
        self._breakers: dict[int, CircuitBreaker] = {}
        #: per-destination parked sends: (parcel, on_delivered, on_lost,
        #: attempt, wire_ready_ns, parked_ns, reason)
        self._waiting: dict[int, deque[tuple]] = {}
        #: credit ledger, maintained whenever retry is armed (so a baseline
        #: run can report its unacked high-water mark): parcel_id -> dest,
        #: dest -> live unacked count, dest -> high-water mark
        self._unacked_dest: dict[int, int] = {}
        self._unacked_count: dict[int, int] = {}
        self._unacked_hwm: dict[int, int] = {}
        self._credit_wait_ns = 0
        self._credit_waits = 0
        self._breaker_wait_ns = 0
        self._breaker_deferred = 0
        self._fast_failures = 0
        self._breaker_transitions = 0
        prefix = f"/parcels{{locality#{locality}/total}}"
        self._c_sent = registry.raw(f"{prefix}/count/sent", "parcels sent")
        self._c_received = registry.raw(
            f"{prefix}/count/received", "parcels received"
        )
        self._c_bytes_sent = registry.raw(
            f"{prefix}/count/bytes-sent", "wire bytes sent"
        )
        self._c_bytes_received = registry.raw(
            f"{prefix}/count/bytes-received", "wire bytes received"
        )
        self._c_dropped = registry.raw(
            f"{prefix}/count/dropped",
            "wire copies sent by this locality that died in transit",
        )
        self._c_retransmitted = registry.raw(
            f"{prefix}/count/retransmitted",
            "extra wire copies: retry expiries plus injected duplicates",
        )
        self._c_duplicates = registry.raw(
            f"{prefix}/count/duplicates-discarded",
            "received copies discarded as already delivered",
        )
        self._c_recovered = registry.raw(
            f"{prefix}/count/recovered",
            "parcels re-shipped after producer re-execution",
        )
        self._c_serialization = registry.raw(
            f"{prefix}/time/serialization",
            "cumulative sender-side encoding time (ns)",
        )
        self._c_backoff = registry.raw(
            f"{prefix}/time/retry-backoff",
            "cumulative time spent on expired retransmit timers (ns)",
        )
        self._c_recovery = registry.raw(
            f"{prefix}/time/recovery",
            "cumulative retry-exhaustion-to-redelivery time (ns)",
        )
        self._c_network_wait = registry.raw(
            f"{prefix}/time/network-wait",
            "cumulative ready-to-delivered time of received parcels (ns)",
        )
        registry.value(
            f"{prefix}/count/queue-depth@gauge",
            "wire copies sent by this locality still in flight",
            source=lambda: float(self._outgoing_in_flight),
        )
        registry.derived(
            f"{prefix}/count/dead-letters-dropped",
            lambda: float(self._dead_letters_dropped),
            "dead letters evicted from the bounded ring",
        )
        if credits is not None or breaker is not None:
            oprefix = f"/overload{{locality#{locality}/total}}"
            registry.derived(
                f"{oprefix}/count/credit-waits",
                lambda: float(self._credit_waits),
                "sends parked waiting for a flow-control credit",
            )
            registry.derived(
                f"{oprefix}/time/credits-exhausted",
                lambda: float(self._credit_wait_ns),
                "cumulative time sends spent parked on credits (ns)",
            )
            registry.derived(
                f"{oprefix}/count/breaker-deferred",
                lambda: float(self._breaker_deferred),
                "wire copies parked behind an open circuit breaker",
            )
            registry.derived(
                f"{oprefix}/time/breaker-deferred",
                lambda: float(self._breaker_wait_ns),
                "cumulative time copies spent parked behind a breaker (ns)",
            )
            registry.derived(
                f"{oprefix}/count/breaker-transitions",
                lambda: float(self._breaker_transitions),
                "circuit-breaker state transitions on this locality's links",
            )
            registry.derived(
                f"{oprefix}/count/breaker-fast-failures",
                lambda: float(self._fast_failures),
                "sends rejected with CircuitOpenError (fail_fast breakers)",
            )
            registry.value(
                f"{oprefix}/count/waiting-sends@gauge",
                "sends currently parked (credits or breaker)",
                source=lambda: float(self.waiting_sends),
            )

    def connect(self, ports: dict[int, "Parcelport"]) -> None:
        """Wire this port to its peers (DistRuntime calls this once)."""
        self._peers = dict(ports)

    def attach_tail(self, tail) -> None:
        """Enable the tail-tolerance hooks (hedging, fencing, RTT sketches).

        Called by the DistRuntime when ``DistConfig.tail`` is set; requires
        the retry protocol — hedging rides the ack/dedup ledger.
        """
        if self._retry is None:
            raise ValueError(
                "tail tolerance requires RetryParams: hedge copies are "
                "deduplicated and settled by the ack protocol"
            )
        self._tail = tail

    # -- sending ------------------------------------------------------------

    def send(
        self,
        destination: int,
        payload: Any,
        payload_bytes: int | None,
        on_delivered: DeliveryFn,
        *,
        resolve_ns: int = 0,
        is_error: bool = False,
        on_lost: LostFn | None = None,
    ) -> Parcel:
        """Ship ``payload`` to ``destination``; deliver via callback.

        ``resolve_ns`` is the AGAS charge the caller already computed for
        this send; it delays departure but is *not* booked as serialization
        time.  ``on_lost`` fires instead of ``on_delivered`` when the
        reliable transport exhausts its retry budget (it is ignored without
        :class:`RetryParams` — an unreliable drop is recorded as a dead
        letter for the deadlock diagnosis instead).  Loopback sends are a
        protocol error — local values never enter the parcelport (callers
        short-circuit them), so a loopback here means an ownership-tracking
        bug worth failing loudly on.
        """
        if destination == self.locality:
            raise ValueError(
                f"loopback parcel on locality {self.locality}: local values "
                "must not go through the parcelport"
            )
        if destination not in self._peers:
            raise KeyError(
                f"locality {self.locality} has no route to {destination}"
            )
        tail = self._tail
        if tail is not None and tail.is_fenced(self.locality):
            # A declared locality that "came back" must not commit stale
            # results: rejected before any counter is booked, like a
            # breaker fast-failure.
            current = tail.epoch_of(self.locality)
            raise FencedEpochError(
                self.locality,
                current - 1,
                current,
                detail=f"send to locality {destination} rejected",
            )
        params = self._breaker_params
        if params is not None and params.fail_fast:
            br = self._breakers.get(destination)
            if br is not None and not br.allows_send():
                # Rejected before any counter is booked: a fast-failed send
                # never existed as far as conservation is concerned.
                self._fast_failures += 1
                raise CircuitOpenError(
                    self.locality,
                    destination,
                    opened_at_ns=br.opened_at_ns,
                    consecutive_failures=br.consecutive_failures,
                )
        if payload_bytes is None:
            payload_bytes = self.network.params.default_payload_bytes
        serialize_ns = self.network.serialization_ns(payload_bytes)
        now = self.sim.now
        parcel = Parcel(
            parcel_id=next(self._ids),
            source=self.locality,
            destination=destination,
            payload=payload,
            payload_bytes=payload_bytes,
            wire_bytes=self.network.wire_bytes(payload_bytes),
            ready_ns=now,
            departed_ns=now + resolve_ns + serialize_ns,
            is_error=is_error,
            epoch=tail.epoch_of(self.locality) if tail is not None else 0,
        )
        self._c_sent.increment()
        self._c_bytes_sent.increment(parcel.wire_bytes)
        self._c_serialization.increment(serialize_ns)
        self._send_copy(
            parcel,
            on_delivered,
            on_lost,
            attempt=0,
            wire_ready_ns=now + resolve_ns + serialize_ns,
        )
        return parcel

    # -- the gated dispatch pipeline (breaker, then credits, then wire) -----

    def _send_copy(
        self,
        parcel: Parcel,
        on_delivered: DeliveryFn,
        on_lost: LostFn | None,
        attempt: int,
        wire_ready_ns: int,
    ) -> None:
        """Dispatch one copy, or park it if a gate is shut.

        ``wire_ready_ns`` is the earliest moment the encoded buffer may hit
        the wire (it carries the AGAS + serialization delay of a fresh send;
        a retransmission's buffer is ready immediately).  Parking preserves
        it, so a parked fresh send still pays its encoding latency.
        """
        destination = parcel.destination
        if self._breaker_params is not None:
            br: CircuitBreaker | None = self._breaker_for(destination)
        else:
            br = None
        if br is not None and not br.allows_send():
            self._park(
                parcel, on_delivered, on_lost, attempt, wire_ready_ns, "breaker"
            )
            return
        if self._needs_credit(parcel) and not self._credit_available(destination):
            self._park(
                parcel, on_delivered, on_lost, attempt, wire_ready_ns, "credit"
            )
            return
        self._wire_dispatch(parcel, on_delivered, on_lost, attempt, wire_ready_ns, br)

    def _wire_dispatch(
        self,
        parcel: Parcel,
        on_delivered: DeliveryFn,
        on_lost: LostFn | None,
        attempt: int,
        wire_ready_ns: int,
        br: CircuitBreaker | None,
    ) -> None:
        if attempt > 0:
            self._c_retransmitted.increment()
        if br is not None:
            br.note_dispatch()
        head = wire_ready_ns - self.sim.now
        self._transmit(
            self._peers[parcel.destination],
            parcel,
            on_delivered,
            on_lost,
            attempt,
            head_delay_ns=head if head > 0 else 0,
        )

    def _needs_credit(self, parcel: Parcel) -> bool:
        """A parcel takes one credit with its first copy and keeps it until
        acked or declared lost; retransmissions ride the same credit."""
        return (
            self._credits is not None
            and parcel.parcel_id not in self._unacked_dest
        )

    def _credit_available(self, destination: int) -> bool:
        assert self._credits is not None
        return self._unacked_count.get(destination, 0) < self._credits.window

    def _park(
        self,
        parcel: Parcel,
        on_delivered: DeliveryFn,
        on_lost: LostFn | None,
        attempt: int,
        wire_ready_ns: int,
        reason: str,
    ) -> None:
        lane = self._waiting.get(parcel.destination)
        if lane is None:
            lane = self._waiting[parcel.destination] = deque()
        lane.append(
            (parcel, on_delivered, on_lost, attempt, wire_ready_ns,
             self.sim.now, reason)
        )
        if reason == "credit":
            self._credit_waits += 1
        else:
            self._breaker_deferred += 1

    def _pump(self, destination: int) -> None:
        """Dispatch parked copies while the gates allow it (FIFO per link)."""
        lane = self._waiting.get(destination)
        if not lane or self._halted:
            return
        br = self._breakers.get(destination)
        while lane:
            if br is not None and not br.allows_send():
                return
            head = lane[0]
            parcel = head[0]
            if self._needs_credit(parcel) and not self._credit_available(
                destination
            ):
                return
            lane.popleft()
            _p, on_delivered, on_lost, attempt, wire_ready_ns, parked_ns, reason = head
            waited = self.sim.now - parked_ns
            if reason == "credit":
                self._credit_wait_ns += waited
            else:
                self._breaker_wait_ns += waited
            self._wire_dispatch(
                parcel, on_delivered, on_lost, attempt, wire_ready_ns, br
            )

    def _breaker_for(self, destination: int) -> CircuitBreaker:
        br = self._breakers.get(destination)
        if br is None:
            assert self._breaker_params is not None
            br = CircuitBreaker(
                self._breaker_params,
                self.sim,
                seed=self._seed,
                source=self.locality,
                destination=destination,
                on_half_open=lambda d=destination: self._pump(d),
                on_transition=self._note_transition,
            )
            self._breakers[destination] = br
        return br

    def _note_transition(self, _old: BreakerState, _new: BreakerState) -> None:
        self._breaker_transitions += 1

    def _transfer_ns(self, destination: int, payload_bytes: int) -> int:
        """Wire time for one copy, degradation windows applied at ``now``."""
        base = self.network
        if self._injector is None:
            return base.transfer_ns(self.locality, destination, payload_bytes)
        lat_mult, bw_mult = self._injector.link_multipliers(
            self.locality, destination, self.sim.now
        )
        if lat_mult == 1.0 and bw_mult == 1.0:
            return base.transfer_ns(self.locality, destination, payload_bytes)
        link = base.link(self.locality, destination)
        wire = base.wire_bytes(payload_bytes)
        latency = link.latency_ns * lat_mult
        if link.bandwidth_bytes_per_ns == float("inf"):
            return int(latency)
        return int(latency + wire / (link.bandwidth_bytes_per_ns * bw_mult))

    def _transmit(
        self,
        peer: "Parcelport",
        parcel: Parcel,
        on_delivered: DeliveryFn,
        on_lost: LostFn | None,
        attempt: int,
        head_delay_ns: int,
    ) -> None:
        """Put one wire copy of ``parcel`` on the network (attempt N)."""
        transfer_ns = self._transfer_ns(peer.locality, parcel.payload_bytes)
        self._outgoing_in_flight += 1
        injector = self._injector
        if injector is not None and injector.drops(parcel.parcel_id, attempt):
            self.sim.schedule(
                head_delay_ns + transfer_ns, lambda: self._drop_on_wire(parcel)
            )
        else:
            self.sim.schedule(
                head_delay_ns + transfer_ns,
                lambda: self._arrive(peer, parcel, on_delivered),
            )
        if injector is not None and injector.duplicates(
            parcel.parcel_id, attempt
        ):
            # A spurious second copy: booked as a retransmission (that is
            # what it is, accounting-wise) and deduplicated at the receiver.
            self._c_retransmitted.increment()
            self._outgoing_in_flight += 1
            self.sim.schedule(
                head_delay_ns + transfer_ns,
                lambda: self._arrive(peer, parcel, on_delivered),
            )
        if self._retry is not None:
            timeout_ns = self._retry.timeout_ns(attempt) + self._jitter_ns(
                parcel.parcel_id, attempt
            )
            event = self.sim.schedule(
                head_delay_ns + timeout_ns,
                lambda: self._on_timeout(
                    peer, parcel, on_delivered, on_lost, attempt, timeout_ns
                ),
            )
            self._awaiting[parcel.parcel_id] = (event, parcel, attempt)
            if parcel.parcel_id not in self._unacked_dest:
                dest = peer.locality
                self._unacked_dest[parcel.parcel_id] = dest
                count = self._unacked_count.get(dest, 0) + 1
                self._unacked_count[dest] = count
                if count > self._unacked_hwm.get(dest, 0):
                    self._unacked_hwm[dest] = count
            tail = self._tail
            if tail is not None and attempt == 0:
                self._sent_at[parcel.parcel_id] = self.sim.now
                delay = tail.hedge_delay_ns(self.locality, peer.locality)
                if delay is not None:
                    self._hedge_timers[parcel.parcel_id] = self.sim.schedule(
                        head_delay_ns + delay,
                        lambda: self._hedge(peer, parcel, on_delivered),
                    )
                    tail.note_hedge_armed(self.locality)

    def _jitter_ns(self, parcel_id: int, attempt: int) -> int:
        assert self._retry is not None
        cap = self._retry.max_jitter_ns
        if cap <= 0:
            return 0
        return int(
            stream_unit(self._seed, _ROLE_JITTER, parcel_id, attempt)
            * (cap + 1)
        )

    # -- hedged parcels (repro.tail) ----------------------------------------

    def _hedge(self, peer: "Parcelport", parcel: Parcel,
               on_delivered: DeliveryFn) -> None:
        """The hedging delay elapsed with no ack: send an insurance copy.

        Booked exactly like an injected duplicate — an extra wire copy,
        counted ``retransmitted``, deduplicated at the receiver — so PF401
        conservation holds unchanged.  The copy is not subject to injected
        drops: it models an independent alternate path, and sampling the
        drop stream again would perturb the fates of unrelated parcels.
        First delivery wins; the loser is discarded by the (source, id)
        dedup ledger and its ack settles the same retry timer.
        """
        self._hedge_timers.pop(parcel.parcel_id, None)
        if self._halted or parcel.parcel_id not in self._awaiting:
            return
        tail = self._tail
        tail.note_hedge_sent(self.locality)
        self._c_retransmitted.increment()
        self._outgoing_in_flight += 1
        transfer_ns = self._transfer_ns(peer.locality, parcel.payload_bytes)
        self.sim.schedule(
            transfer_ns,
            lambda: self._hedge_arrive(peer, parcel, on_delivered),
        )

    def _discard_hedge_state(self, parcel_id: int) -> None:
        """Settle hedge bookkeeping for a parcel leaving the retry protocol.

        An armed-but-unfired timer is cancelled and counted so the
        ``armed == sent + cancelled`` ledger stays exact whether the parcel
        was acked, declared lost, abandoned, or its sender halted.
        """
        timer = self._hedge_timers.pop(parcel_id, None)
        if timer is not None:
            timer.cancel()
            if self._tail is not None:
                self._tail.note_hedge_cancelled(self.locality)
        self._sent_at.pop(parcel_id, None)

    def _hedge_arrive(self, peer: "Parcelport", parcel: Parcel,
                      on_delivered: DeliveryFn) -> None:
        """Deliver the hedge copy, settling the won/lost ledger."""
        key = (parcel.source, parcel.parcel_id)
        fresh = key not in peer._delivered
        self._arrive(peer, parcel, on_delivered)
        if fresh and key in peer._delivered:
            self._tail.note_hedge_won(self.locality)
        else:
            # Beaten by the original (deduplicated), or the peer died.
            self._tail.note_hedge_lost(self.locality)

    # -- the wire's three outcomes ------------------------------------------

    def _dead_letter(self, parcel: Parcel) -> None:
        """Record a parcel lost for good; the ring evicts oldest-first."""
        if len(self._dead_letters) >= self._dead_letter_capacity:
            self._dead_letters.popleft()
            self._dead_letters_dropped += 1
        self._dead_letters.append(parcel)

    def _drop_on_wire(self, parcel: Parcel) -> None:
        self._outgoing_in_flight -= 1
        self._c_dropped.increment()
        if self._retry is None:
            self._dead_letter(parcel)

    def _arrive(
        self, peer: "Parcelport", parcel: Parcel, on_delivered: DeliveryFn
    ) -> None:
        self._outgoing_in_flight -= 1
        if peer._halted:
            # A crashed locality receives nothing; the copy is gone.
            self._c_dropped.increment()
            if self._retry is None:
                self._dead_letter(parcel)
            return
        tail = self._tail
        if tail is not None and tail.is_stale(parcel.source, parcel.epoch):
            # Partition fence: the sender was declared dead after this copy
            # departed; committing it would resurrect a superseded epoch.
            # Booked as a drop on the sending side (the same fate as a copy
            # arriving at a crashed peer), so conservation stays exact.
            self._c_dropped.increment()
            tail.note_fenced_rejection(parcel.source)
            return
        key = (parcel.source, parcel.parcel_id)
        if key in peer._delivered:
            peer._c_duplicates.increment()
            if self._retry is not None:
                # Re-ack: the sender may still be running a retry timer for
                # a copy whose first ack it has not seen yet.
                peer._schedule_ack(self, parcel)
            return
        peer._delivered.add(key)
        parcel.delivered_ns = self.sim.now
        peer._c_received.increment()
        peer._c_bytes_received.increment(parcel.wire_bytes)
        peer._c_network_wait.increment(parcel.in_flight_ns)
        if self._retry is not None:
            peer._schedule_ack(self, parcel)
        on_delivered(parcel)

    # -- the ack / timeout / retransmit protocol ----------------------------

    def _schedule_ack(self, sender: "Parcelport", parcel: Parcel) -> None:
        """Acknowledge a received copy over the reverse link."""
        assert self._retry is not None
        delay = self.network.transfer_ns(
            self.locality, sender.locality, self._retry.ack_bytes
        )
        self.sim.schedule(delay, lambda: sender._on_ack(parcel.parcel_id))

    def _on_ack(self, parcel_id: int) -> None:
        entry = self._awaiting.pop(parcel_id, None)
        if entry is not None:
            entry[0].cancel()
            tail = self._tail
            if tail is not None:
                timer = self._hedge_timers.pop(parcel_id, None)
                if timer is not None:
                    timer.cancel()
                    tail.note_hedge_cancelled(self.locality)
                sent = self._sent_at.pop(parcel_id, None)
                if sent is not None:
                    tail.note_ack_rtt(
                        self.locality, entry[1].destination,
                        self.sim.now - sent,
                    )
            destination = self._release_unacked(parcel_id)
            if destination is not None:
                br = self._breakers.get(destination)
                if br is not None:
                    br.record_success()
                self._pump(destination)

    def _release_unacked(self, parcel_id: int) -> int | None:
        """Return the parcel's credit; gives back the destination, if any."""
        destination = self._unacked_dest.pop(parcel_id, None)
        if destination is not None:
            self._unacked_count[destination] -= 1
        return destination

    def _on_timeout(
        self,
        peer: "Parcelport",
        parcel: Parcel,
        on_delivered: DeliveryFn,
        on_lost: LostFn | None,
        attempt: int,
        timeout_ns: int,
    ) -> None:
        assert self._retry is not None
        self._awaiting.pop(parcel.parcel_id, None)
        if self._halted:
            return
        self._c_backoff.increment(timeout_ns)
        br = self._breakers.get(parcel.destination)
        if br is not None:
            br.record_failure()
        if attempt >= self._retry.max_retries:
            attempts = attempt + 1
            self._discard_hedge_state(parcel.parcel_id)
            destination = self._release_unacked(parcel.parcel_id)
            if on_lost is not None:
                on_lost(parcel, attempts)
            else:
                self._dead_letter(parcel)
            if destination is not None:
                # The freed credit may unblock a parked send.
                self._pump(destination)
            return
        # Retransmission re-sends the already-encoded buffer: no second
        # serialization or AGAS charge, just wire time — but it goes back
        # through the gates, so an open breaker parks it instead.
        self._send_copy(
            parcel, on_delivered, on_lost, attempt + 1, wire_ready_ns=self.sim.now
        )

    # -- recovery bookkeeping (called by DistRuntime's re-execution hook) ---

    def book_recovery(self, elapsed_ns: int) -> None:
        """Record one successful exhaustion-to-redelivery recovery."""
        self._c_recovered.increment()
        self._c_recovery.increment(elapsed_ns)

    # -- crash --------------------------------------------------------------

    def halt(self) -> None:
        """Fail-stop this port: cancel every retry timer, send nothing more.

        Copies already on the wire still arrive (the bytes had left the
        node); incoming copies are dropped by :meth:`_arrive` checking the
        receiver's halted flag.
        """
        self._halted = True
        for event, _parcel, _attempt in self._awaiting.values():
            event.cancel()
        self._awaiting.clear()
        for pid in list(self._hedge_timers):
            self._discard_hedge_state(pid)
        self._sent_at.clear()
        for br in self._breakers.values():
            br.halt()
        self._waiting.clear()

    def abandon_destination(self, destination: int) -> int:
        """Give up on every send headed to a declared-dead ``destination``.

        Crash recovery calls this on each *survivor* port the moment a
        locality is declared dead, so nobody burns the remaining
        retransmission budget on a link that can never ack.  Returns how
        many sends were abandoned (the ``/recovery`` failed-fast count).

        Accounting: an in-flight copy's retry timer is cancelled without
        booking a fate — the copy itself still terminates at
        :meth:`_arrive` against the halted peer, where it is counted
        ``dropped``, keeping the sent/received/dropped conservation exact.
        A parked *fresh* send (attempt 0) was counted ``sent`` but never
        produced a wire copy, so it is booked ``dropped`` here; a parked
        retransmission has no accounting existence and books nothing.
        """
        abandoned = 0
        stale = [
            pid
            for pid, (_e, parcel, _a) in self._awaiting.items()
            if parcel.destination == destination
        ]
        for pid in stale:
            event, _parcel, _attempt = self._awaiting.pop(pid)
            event.cancel()
            self._discard_hedge_state(pid)
            self._release_unacked(pid)
            abandoned += 1
        lane = self._waiting.pop(destination, None)
        if lane:
            for parcel, _cb, _lost, attempt, *_rest in lane:
                self._release_unacked(parcel.parcel_id)
                if attempt == 0:
                    self._c_dropped.increment()
                abandoned += 1
        return abandoned

    # -- introspection ------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Wire copies sent by this locality not yet delivered or dropped."""
        return self._outgoing_in_flight

    @property
    def dead_letters(self) -> tuple[Parcel, ...]:
        """Parcels this port lost with no protocol left to save them."""
        return tuple(self._dead_letters)

    @property
    def dead_letters_dropped(self) -> int:
        """Dead letters the bounded ring has evicted (oldest first)."""
        return self._dead_letters_dropped

    @property
    def awaiting_ack(self) -> tuple[tuple[Parcel, int], ...]:
        """(parcel, attempt) pairs with a live retransmit timer."""
        return tuple(
            (parcel, attempt) for _e, parcel, attempt in self._awaiting.values()
        )

    @property
    def waiting_sends(self) -> int:
        """Copies currently parked behind a credit or breaker gate."""
        return sum(len(lane) for lane in self._waiting.values())

    def waiting_for(self, destination: int) -> tuple[Parcel, ...]:
        """The parked parcels headed to ``destination`` (FIFO order)."""
        lane = self._waiting.get(destination)
        if not lane:
            return ()
        return tuple(entry[0] for entry in lane)

    def unacked_high_water(self, destination: int) -> int:
        """Peak distinct unacked parcels to ``destination`` (retry only)."""
        return self._unacked_hwm.get(destination, 0)

    @property
    def max_unacked_in_flight(self) -> int:
        """Peak unacked parcels over all destinations; bounded by the
        credit window when flow control is on."""
        return max(self._unacked_hwm.values(), default=0)

    @property
    def breakers(self) -> dict[int, CircuitBreaker]:
        """Live breakers by destination (read-only view by convention)."""
        return self._breakers

    @property
    def breaker_transitions(self) -> int:
        """Total breaker state transitions on this locality's links."""
        return self._breaker_transitions

    @property
    def credits_exhausted_ns(self) -> int:
        """Cumulative simulated time sends spent parked on credits."""
        return self._credit_wait_ns

    @property
    def sends_deferred(self) -> int:
        """Sends that ever parked (credit waits + breaker deferrals)."""
        return self._credit_waits + self._breaker_deferred

    @property
    def fast_failures(self) -> int:
        """Sends rejected with :class:`CircuitOpenError` (fail_fast)."""
        return self._fast_failures
