"""Network model: where a parcel's virtual latency comes from.

HPX moves work and data between localities in *parcels* (active messages).
Task Bench (Slaughter et al.) and the Charm++/HPX overhead study of Wu et
al. (PAPERS.md) both show that once work spans localities, per-parcel costs
join per-task costs as the overheads that set the usable grain-size region.
This module models the transport half of that cost:

- **per-link latency and bandwidth** — a parcel from locality *s* to *d*
  pays ``latency + size / bandwidth``.  Links default to one uniform
  interconnect; individual (s, d) pairs can be overridden to model
  asymmetric topologies (e.g. an oversubscribed inter-switch link);
- **serialization** — encoding the parcel on the sending side costs a fixed
  setup plus a per-byte charge.  HPX pays this on a worker thread; the model
  charges it as virtual delay ahead of the wire time and accounts it in
  ``/parcels{locality#N/total}/time/serialization``;
- **loopback is free** — a "send" whose source and destination are the same
  locality never touches the parcelport (callers short-circuit it), matching
  HPX, where local actions are plain function invocations.

The model is pure arithmetic over these parameters; the
:class:`repro.dist.parcel.Parcelport` turns its numbers into events on the
shared :class:`repro.sim.engine.Simulator`.

Default calibration is a commodity-cluster interconnect as seen *by the
runtime* (not raw wire numbers): several-microsecond small-message latency
and a few GB/s of effective per-link bandwidth, in line with the HPX
TCP/MPI parcelport measurements in the Task Bench literature.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping


@dataclass(frozen=True)
class LinkParams:
    """One directed link's transport characteristics."""

    #: one-way message latency in virtual nanoseconds
    latency_ns: int = 15_000
    #: sustained bandwidth in bytes per nanosecond (== GB/s)
    bandwidth_bytes_per_ns: float = 4.0

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ValueError(f"latency_ns must be >= 0, got {self.latency_ns}")
        if self.bandwidth_bytes_per_ns <= 0:
            raise ValueError(
                "bandwidth_bytes_per_ns must be positive, got "
                f"{self.bandwidth_bytes_per_ns}"
            )


@dataclass(frozen=True)
class NetworkParams:
    """Cluster-wide transport and serialization parameters."""

    #: the link every (s, d) pair uses unless overridden
    default_link: LinkParams = LinkParams()
    #: fixed cost of encoding any parcel (buffer setup, type descriptors)
    serialization_base_ns: int = 2_000
    #: marginal encoding cost per byte of the wire image
    serialization_ns_per_byte: float = 0.4
    #: envelope bytes added to every parcel (action id, gid, continuation)
    parcel_header_bytes: int = 512
    #: payload size assumed for parcels whose sender did not measure one
    default_payload_bytes: int = 8

    def __post_init__(self) -> None:
        if self.serialization_base_ns < 0:
            raise ValueError("serialization_base_ns must be >= 0")
        if self.serialization_ns_per_byte < 0:
            raise ValueError("serialization_ns_per_byte must be >= 0")
        if self.parcel_header_bytes < 0:
            raise ValueError("parcel_header_bytes must be >= 0")
        if self.default_payload_bytes < 1:
            raise ValueError("default_payload_bytes must be >= 1")


#: the free link used for loopback "transfers" and the zero network
_FREE_LINK = LinkParams(latency_ns=0, bandwidth_bytes_per_ns=float("inf"))


class NetworkModel:
    """Maps (source, destination, parcel size) to virtual transport times.

    Stateless with respect to the simulation: the parcelport asks it for
    durations and schedules the events itself, so one model instance can be
    shared by every locality of a :class:`repro.dist.DistRuntime`.
    """

    def __init__(
        self,
        params: NetworkParams | None = None,
        *,
        links: Mapping[tuple[int, int], LinkParams] | None = None,
    ) -> None:
        self.params = params if params is not None else NetworkParams()
        self._links: dict[tuple[int, int], LinkParams] = dict(links or {})

    @classmethod
    def zero(cls) -> "NetworkModel":
        """A network with no costs at all.

        Used by the equivalence regression: a 1-locality distributed run
        over the zero network must reproduce the single-node runtime.
        """
        return cls(
            NetworkParams(
                default_link=_FREE_LINK,
                serialization_base_ns=0,
                serialization_ns_per_byte=0.0,
                parcel_header_bytes=0,
            )
        )

    @classmethod
    def uniform(
        cls, *, latency_ns: int, bandwidth_bytes_per_ns: float, **kwargs
    ) -> "NetworkModel":
        """A homogeneous network with the given link on every pair."""
        link = LinkParams(
            latency_ns=latency_ns, bandwidth_bytes_per_ns=bandwidth_bytes_per_ns
        )
        return cls(NetworkParams(default_link=link, **kwargs))

    def with_link(self, src: int, dst: int, link: LinkParams) -> "NetworkModel":
        """A copy of this model with one directed (src, dst) link replaced."""
        links = dict(self._links)
        links[(src, dst)] = link
        return NetworkModel(self.params, links=links)

    # -- cost arithmetic ----------------------------------------------------

    def link(self, src: int, dst: int) -> LinkParams:
        """The link a (src, dst) parcel travels; loopback is free."""
        if src == dst:
            return _FREE_LINK
        return self._links.get((src, dst), self.params.default_link)

    def wire_bytes(self, payload_bytes: int) -> int:
        """Total bytes on the wire: payload plus the parcel envelope."""
        return payload_bytes + self.params.parcel_header_bytes

    def serialization_ns(self, payload_bytes: int) -> int:
        """Sender-side encoding time for a parcel of ``payload_bytes``."""
        p = self.params
        return int(
            p.serialization_base_ns
            + p.serialization_ns_per_byte * self.wire_bytes(payload_bytes)
        )

    def transfer_ns(self, src: int, dst: int, payload_bytes: int) -> int:
        """Wire time from send to delivery: latency plus size / bandwidth."""
        link = self.link(src, dst)
        wire = self.wire_bytes(payload_bytes)
        if link.bandwidth_bytes_per_ns == float("inf"):
            return link.latency_ns
        return int(link.latency_ns + wire / link.bandwidth_bytes_per_ns)


def scaled_network(base: NetworkModel, factor: float) -> NetworkModel:
    """``base`` with every latency/serialization cost scaled by ``factor``.

    The experiment harness uses this for comm-overhead ablations (e.g. the
    figD sensitivity notes) without re-deriving parameter sets by hand.
    """
    if factor < 0:
        raise ValueError(f"factor must be >= 0, got {factor}")
    p = base.params
    link = p.default_link
    params = replace(
        p,
        default_link=LinkParams(
            latency_ns=int(link.latency_ns * factor),
            bandwidth_bytes_per_ns=(
                link.bandwidth_bytes_per_ns / factor
                if factor > 0
                else float("inf")
            ),
        ),
        serialization_base_ns=int(p.serialization_base_ns * factor),
        serialization_ns_per_byte=p.serialization_ns_per_byte * factor,
    )
    links = {
        pair: LinkParams(
            latency_ns=int(lk.latency_ns * factor),
            bandwidth_bytes_per_ns=(
                lk.bandwidth_bytes_per_ns / factor
                if factor > 0
                else float("inf")
            ),
        )
        for pair, lk in base._links.items()
    }
    return NetworkModel(params, links=links)
