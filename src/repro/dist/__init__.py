"""repro.dist — the multi-locality layer of the reproduction.

The paper characterizes grain size on a single node; HPX itself is a
distributed runtime whose parcel transport and AGAS addressing are the
overheads that dominate once work spans localities (Task Bench, and Wu et
al.'s Charm++/HPX overhead study — PAPERS.md).  This package adds that axis:

- :mod:`repro.dist.network` — per-link latency/bandwidth and parcel
  serialization costs;
- :mod:`repro.dist.parcel` — the per-locality parcelport with HPX-style
  ``/parcels{locality#N/total}`` counters;
- :mod:`repro.dist.agas` — AGAS-lite gid → locality resolution with
  per-locality caches and hit/miss accounting;
- :mod:`repro.dist.runtime` — :class:`DistRuntime`, composing N
  single-node runtimes over one simulated clock.

Resilience (fault injection, reliable transport, recovery) layers on top
via :mod:`repro.faults`; the fault-facing types are re-exported here so
distributed callers have one import surface.  See docs/resilience.md.

See docs/distributed.md for the model's parameters and counter catalogue,
``apps/stencil1d_dist.py`` for the distributed stencil built on it, and
``experiments/figD_distributed_grain.py`` for the grain-size × locality
sweep that shows communication moving the execution-time minimum to
coarser grains.
"""

from repro.dist.agas import AgasCache, AgasParams, AgasService, GlobalId
from repro.dist.network import (
    LinkParams,
    NetworkModel,
    NetworkParams,
    scaled_network,
)
from repro.dist.parcel import Parcel, Parcelport
from repro.dist.runtime import (
    DistConfig,
    DistRunResult,
    DistRuntime,
    Locality,
)
from repro.faults import (
    CrashAt,
    FaultPlan,
    LinkDegradation,
    LocalityCrashError,
    ParcelLostError,
    RetryParams,
    Straggler,
    UnrecoverableCrashError,
    WatchdogTimeout,
)
from repro.faults.errors import FencedEpochError
from repro.recovery import RecoveryConfig
from repro.tail import TailConfig

__all__ = [
    "AgasCache",
    "AgasParams",
    "AgasService",
    "GlobalId",
    "LinkParams",
    "NetworkModel",
    "NetworkParams",
    "scaled_network",
    "Parcel",
    "Parcelport",
    "DistConfig",
    "DistRunResult",
    "DistRuntime",
    "Locality",
    "CrashAt",
    "FaultPlan",
    "LinkDegradation",
    "LocalityCrashError",
    "ParcelLostError",
    "RetryParams",
    "Straggler",
    "UnrecoverableCrashError",
    "WatchdogTimeout",
    "RecoveryConfig",
    "FencedEpochError",
    "TailConfig",
]
