"""AGAS-lite: global ids, the authoritative home table, per-locality caches.

HPX's Active Global Address Space names every first-class object with a
*global id* (gid) and resolves gid → locality through a distributed service
whose hot path is a local resolution cache: a hit costs a hash lookup, a
miss costs a round trip to the AGAS service.  The model here keeps exactly
the parts that have performance consequences for task placement:

- :class:`AgasService` — the authoritative gid → locality table (one per
  :class:`repro.dist.DistRuntime`; conceptually hosted on locality 0, as
  HPX hosts the primary namespace there);
- :class:`AgasCache` — one per locality; resolution through the cache
  charges ``hit_ns`` or ``miss_ns`` of virtual time to the caller (the
  parcelport folds the charge into the parcel's departure delay) and feeds
  the ``/agas{locality#N/total}`` counters.

Cache semantics (documented contract, covered by tests): the cache is
**positive-only and never invalidated** — objects in this model do not
migrate, so a mapping learned once stays valid for the whole run.  The first
resolution of a gid on a given locality is always a miss (even for gids
homed on that same locality: the runtime still has to learn that), every
later resolution is a hit.  Misses therefore count *distinct gids resolved
per locality*, which is what makes the counter interpretable: for the
distributed stencil it is exactly the number of neighbour partitions each
locality ever talks to.

Crash recovery is the one sanctioned exception to "never invalidated":
when :mod:`repro.recovery` declares a locality dead it calls
:meth:`AgasService.rehome` to move the dead locality's gids to survivors
and :meth:`AgasCache.invalidate_homed_on` on each survivor, so the next
resolution of a moved gid pays a miss and learns the new home.  Runs
without crash recovery never take either path, keeping the positive-only
contract (and its counters) bit-identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.counters.registry import CounterRegistry


@dataclass(frozen=True)
class GlobalId:
    """A global name for a long-lived object (e.g. one stencil partition)."""

    gid: int
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<gid#{self.gid}{label}>"


@dataclass(frozen=True)
class AgasParams:
    """Resolution costs in virtual nanoseconds."""

    #: local cache hit: a hash lookup on the fast path of every send
    hit_ns: int = 120
    #: cache miss: round trip to the AGAS service plus table insertion
    miss_ns: int = 6_000

    def __post_init__(self) -> None:
        if self.hit_ns < 0 or self.miss_ns < 0:
            raise ValueError("AGAS costs must be >= 0")


class AgasService:
    """The authoritative gid → locality mapping for one distributed run."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._home: dict[int, int] = {}

    def register(self, locality: int, name: str = "") -> GlobalId:
        """Mint a gid homed on ``locality`` (HPX: object construction)."""
        if locality < 0:
            raise ValueError(f"locality must be >= 0, got {locality}")
        gid = GlobalId(next(self._ids), name)
        self._home[gid.gid] = locality
        return gid

    def home(self, gid: GlobalId) -> int:
        """Authoritative resolution; raises for unregistered gids."""
        try:
            return self._home[gid.gid]
        except KeyError:
            raise KeyError(f"unregistered gid {gid!r}") from None

    def homed_on(self, locality: int) -> list[int]:
        """Integer gids currently homed on ``locality``, in id order."""
        return sorted(g for g, h in self._home.items() if h == locality)

    def rehome(self, gid_int: int, new_home: int) -> None:
        """Move one gid to a survivor locality (crash recovery only)."""
        if gid_int not in self._home:
            raise KeyError(f"unregistered gid #{gid_int}")
        if new_home < 0:
            raise ValueError(f"locality must be >= 0, got {new_home}")
        self._home[gid_int] = new_home

    def __len__(self) -> int:
        return len(self._home)


class AgasCache:
    """One locality's resolution cache with hit/miss cost accounting."""

    def __init__(
        self,
        service: AgasService,
        locality: int,
        registry: CounterRegistry,
        params: AgasParams | None = None,
    ) -> None:
        self.service = service
        self.locality = locality
        self.params = params if params is not None else AgasParams()
        self._cache: dict[int, int] = {}
        prefix = f"/agas{{locality#{locality}/total}}"
        self._c_hits = registry.raw(
            f"{prefix}/count/cache-hits", "gid resolutions served locally"
        )
        self._c_misses = registry.raw(
            f"{prefix}/count/cache-misses",
            "gid resolutions that went to the AGAS service",
        )
        self._c_time = registry.raw(
            f"{prefix}/time/resolve", "cumulative resolution time (ns)"
        )

    def resolve(self, gid: GlobalId) -> tuple[int, int]:
        """Resolve ``gid``; returns ``(home locality, cost_ns)``.

        The caller is responsible for charging ``cost_ns`` to the simulated
        clock (the parcelport adds it to the parcel's departure delay).
        """
        home = self._cache.get(gid.gid)
        if home is not None:
            cost = self.params.hit_ns
            self._c_hits.increment()
        else:
            home = self.service.home(gid)
            self._cache[gid.gid] = home
            cost = self.params.miss_ns
            self._c_misses.increment()
        self._c_time.increment(cost)
        return home, cost

    def invalidate_homed_on(self, locality: int) -> int:
        """Drop every cached mapping that points at ``locality``.

        Called by crash recovery after re-homing a dead locality's gids;
        returns how many entries were dropped.  The next resolution of each
        dropped gid is a miss that learns the survivor home.
        """
        stale = [g for g, h in self._cache.items() if h == locality]
        for g in stale:
            del self._cache[g]
        return len(stale)
