"""Comparison scheduling policies for the ablation benchmarks.

The paper notes that "different schedulers optimize performance for different
task size" and defers the scheduler study to future work (Sec. I-A, VI).
These variants let the ablation benches quantify that interaction on the
same simulated platforms:

- :class:`StaticScheduler` — per-worker dual queues, **no stealing**.  Coarse
  grain starves badly here because imbalance can never be corrected.
- :class:`GlobalQueueScheduler` — one shared dual queue.  Perfect balance but
  every access contends on one structure; fine grain suffers most.
- :class:`NumaBlindStealingScheduler` — Priority-Local's structure but steals
  in flat worker order, ignoring NUMA domains; isolates the value of the
  paper's NUMA-aware search order (steps 3-6 of Fig. 1).
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.task import Task
from repro.schedulers.base import FoundWork, SchedulingPolicy, WorkSource
from repro.schedulers.queues import DualQueue


class StaticScheduler(SchedulingPolicy):
    """Per-worker queues with no work stealing at all."""

    name = "static"

    def __init__(self) -> None:
        super().__init__()
        self._queues: list[DualQueue] = []

    def _build_queues(self) -> None:
        self._queues = [DualQueue() for _ in range(self.num_workers)]

    def enqueue_staged(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        self._queues[worker].push_staged(task)

    def enqueue_pending(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        self._queues[worker].push_pending(task)

    def find_work(self, worker: int) -> FoundWork | None:
        own = self._queues[worker]
        task = own.pop_pending()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_PENDING)
        task = own.pop_staged()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_STAGED)
        return None

    def queues(self) -> Iterator[DualQueue]:
        yield from self._queues

    def worker_queue_depth(self, worker: int) -> int:
        q = self._queues[worker]
        return q.pending_len + q.staged_len


class GlobalQueueScheduler(SchedulingPolicy):
    """A single dual queue shared by every worker.

    The executor's contention model already scales management costs with the
    number of active workers; the shared structure additionally serializes
    FIFO order, so locality is entirely lost (every pop is effectively a
    steal from the program's point of view, charged at local rates).
    """

    name = "global-queue"

    #: per-competing-worker synchronization cost of the shared queue (ns);
    #: models CAS/lock contention on the single structure
    CONTENTION_NS_PER_WORKER = 35

    def __init__(self) -> None:
        super().__init__()
        self._queue: DualQueue | None = None

    def shared_structure_penalty_ns(self, active_workers: int) -> int:
        return self.CONTENTION_NS_PER_WORKER * max(0, active_workers - 1)

    def _build_queues(self) -> None:
        self._queue = DualQueue()

    def enqueue_staged(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        assert self._queue is not None
        self._queue.push_staged(task)

    def enqueue_pending(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        assert self._queue is not None
        self._queue.push_pending(task)

    def find_work(self, worker: int) -> FoundWork | None:
        assert self._queue is not None
        task = self._queue.pop_pending()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_PENDING)
        task = self._queue.pop_staged()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_STAGED)
        return None

    def queues(self) -> Iterator[DualQueue]:
        if self._queue is not None:
            yield self._queue


class NumaBlindStealingScheduler(SchedulingPolicy):
    """Per-worker dual queues with flat, NUMA-unaware stealing.

    Searches every other worker in ascending index order (staged first, then
    pending), so roughly half of all steals cross the socket boundary on the
    two-domain platforms and pay the remote-steal cost.
    """

    name = "numa-blind"

    def __init__(self) -> None:
        super().__init__()
        self._queues: list[DualQueue] = []

    def _build_queues(self) -> None:
        self._queues = [DualQueue() for _ in range(self.num_workers)]

    def enqueue_staged(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        self._queues[worker].push_staged(task)

    def enqueue_pending(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        self._queues[worker].push_pending(task)

    def _source(self, worker: int, other: int, staged: bool) -> WorkSource:
        assert self.machine is not None
        same = self.machine.domain_of(worker) == self.machine.domain_of(other)
        if staged:
            return WorkSource.NUMA_STAGED if same else WorkSource.REMOTE_STAGED
        return WorkSource.NUMA_PENDING if same else WorkSource.REMOTE_PENDING

    def find_work(self, worker: int) -> FoundWork | None:
        queues = self._queues
        own = queues[worker]
        task = own.pop_pending()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_PENDING)
        task = own.pop_staged()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_STAGED)
        for other in range(self.num_workers):
            if other == worker:
                continue
            task = queues[other].pop_staged()
            if task is not None:
                return FoundWork(task, self._source(worker, other, staged=True))
        for other in range(self.num_workers):
            if other == worker:
                continue
            task = queues[other].pop_pending()
            if task is not None:
                return FoundWork(task, self._source(worker, other, staged=False))
        return None

    def queues(self) -> Iterator[DualQueue]:
        yield from self._queues

    def worker_queue_depth(self, worker: int) -> int:
        q = self._queues[worker]
        return q.pending_len + q.staged_len
