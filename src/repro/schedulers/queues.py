"""Dual staged/pending task queues with access accounting.

"All HPX-thread scheduling policies use a dual-queue scheme to manage
threads" (paper Sec. I-B): thread *descriptions* wait in a staged queue
(cheap to create and to move between memory domains), and context-equipped
threads ready to run wait in a pending queue.

The paper's Fig. 9/10 metric — pending-queue accesses and misses — is counted
here, at the queue, so every scheduling policy gets the accounting for free
and the counts register genuine scheduler activity rather than a model.

Each queue optionally carries an :class:`repro.overload.admission.
AdmissionControl` (``admission``; default ``None`` — the unbounded legacy
path).  With a controller attached, new staged pushes go through its
admission gate, overflow lands in the queue's *deferred* lane (``block`` /
``spill`` policies), and every pop first re-admits deferred work while
depth allows.  ``push_pending`` is never gated: resumed tasks already
hold contexts and must not deadlock behind their own backpressure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.runtime.task import Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.overload.admission import AdmissionControl


@dataclass
class QueueStats:
    """Access/miss counts for one dual queue.

    An *access* is one look by the thread scheduler into the queue; a *miss*
    is an access that found no work there (paper Sec. II-A).
    """

    pending_accesses: int = 0
    pending_misses: int = 0
    staged_accesses: int = 0
    staged_misses: int = 0

    def merge(self, other: "QueueStats") -> None:
        self.pending_accesses += other.pending_accesses
        self.pending_misses += other.pending_misses
        self.staged_accesses += other.staged_accesses
        self.staged_misses += other.staged_misses


@dataclass
class DualQueue:
    """One staged + pending FIFO pair, as attached to each worker thread."""

    stats: QueueStats = field(default_factory=QueueStats)
    _staged: deque[Task] = field(default_factory=deque)
    _pending: deque[Task] = field(default_factory=deque)
    #: overflow lane: (task, deferred_at_ns) pairs awaiting re-admission
    _deferred: deque[tuple[Task, int]] = field(default_factory=deque)
    #: admission controller; ``None`` keeps the exact unbounded behaviour
    admission: "AdmissionControl | None" = None

    # -- producers ------------------------------------------------------------

    def push_staged(self, task: Task) -> None:
        admission = self.admission
        if admission is None:
            self._staged.append(task)
        else:
            admission.offer(self, task)

    def push_pending(self, task: Task) -> None:
        self._pending.append(task)
        admission = self.admission
        if admission is not None:
            admission.note_pending_push(self)

    # -- consumers (every pop counts an access) --------------------------------

    def pop_pending(self) -> Task | None:
        """FIFO-pop from the pending queue, counting the access."""
        admission = self.admission
        if admission is not None:
            admission.drain(self)
        stats = self.stats
        stats.pending_accesses += 1
        if self._pending:
            return self._pending.popleft()
        stats.pending_misses += 1
        return None

    def pop_staged(self) -> Task | None:
        """FIFO-pop from the staged queue, counting the access."""
        admission = self.admission
        if admission is not None:
            admission.drain(self)
        stats = self.stats
        stats.staged_accesses += 1
        if self._staged:
            return self._staged.popleft()
        stats.staged_misses += 1
        return None

    # -- introspection (no access counted; used for termination checks) --------

    def head_task(self) -> Task | None:
        """Peek the oldest hot entry (earliest ``created_ns``), or None.

        Companion to :meth:`head_created_ns` for deadline-ordered root
        selection that needs the head *task* (the RT EDF scheduler reads
        its deadline tag).  Both lanes are FIFO, so the older of the two
        heads is the queue's earliest arrival.  No access is counted.
        """
        head = self._pending[0] if self._pending else None
        if self._staged:
            staged_head = self._staged[0]
            if head is None or staged_head.created_ns < head.created_ns:
                head = staged_head
        return head

    def head_created_ns(self) -> int | None:
        """Earliest ``created_ns`` among the queue heads, or None if hot-empty.

        Introspection for deadline-ordered root selection (the QoS bucket
        scheduler): both lanes are FIFO, so their heads are the oldest
        entries and the minimum over them is the queue's earliest arrival.
        No access is counted — this is a peek, not a scheduling attempt.
        """
        head = None
        if self._pending:
            head = self._pending[0].created_ns
        if self._staged:
            staged_head = self._staged[0].created_ns
            if head is None or staged_head < head:
                head = staged_head
        return head

    @property
    def pending_len(self) -> int:
        return len(self._pending)

    @property
    def staged_len(self) -> int:
        return len(self._staged)

    @property
    def deferred_len(self) -> int:
        return len(self._deferred)

    @property
    def is_empty(self) -> bool:
        return not self._pending and not self._staged and not self._deferred
