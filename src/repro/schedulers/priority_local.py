"""The Priority Local-FIFO scheduler — the policy used for every measurement
in the paper (Sec. I-B, Fig. 1).

Structure:

- one **normal-priority dual queue** (staged + pending FIFO) per worker;
- a configurable number of **high-priority dual queues** (default: one per
  worker, as in HPX); high-priority work is always checked first;
- one **low-priority queue** for the whole scheduler, "for threads that will
  be scheduled only when all other work has been done".

Work-finding order for worker *w* (paper Fig. 1, numbered 1-6, with the
priority queues around it):

  HP: w's high-priority pending, then staged
  1. w's own pending queue
  2. w's own staged queue
  3. staged queues of other workers in w's NUMA domain
  4. pending queues of other workers in w's NUMA domain
  5. staged queues of workers in remote NUMA domains
  6. pending queues of workers in remote NUMA domains
  HP of other workers (stealing high-priority work before going idle)
  LP: the global low-priority queue

Staged work is preferred when stealing because a thread *description* has no
context yet and is cheap to migrate between memory domains (Sec. I-B).
"""

from __future__ import annotations

from typing import Iterator

from repro.runtime.task import Priority, Task
from repro.schedulers.base import FoundWork, SchedulingPolicy, WorkSource
from repro.schedulers.queues import DualQueue


class PriorityLocalScheduler(SchedulingPolicy):
    """Priority Local scheduling policy over lock-free-FIFO-style queues."""

    name = "priority-local"

    def __init__(self, num_high_priority_queues: int | None = None) -> None:
        super().__init__()
        self._requested_hp_queues = num_high_priority_queues
        self._normal: list[DualQueue] = []
        self._high: list[DualQueue] = []
        self._low: DualQueue | None = None
        # Precomputed steal orders, one pair of tuples per worker.
        self._same_domain: list[tuple[int, ...]] = []
        self._remote: list[tuple[int, ...]] = []

    def _build_queues(self) -> None:
        n = self.num_workers
        hp = self._requested_hp_queues if self._requested_hp_queues is not None else n
        if not 1 <= hp <= n:
            raise ValueError(f"high-priority queue count {hp} outside 1..{n}")
        self._normal = [DualQueue() for _ in range(n)]
        self._high = [DualQueue() for _ in range(hp)]
        self._low = DualQueue()
        assert self.machine is not None
        self._same_domain = [
            self.machine.same_domain_cores(w) for w in range(n)
        ]
        self._remote = [self.machine.remote_domain_cores(w) for w in range(n)]

    # -- producers -------------------------------------------------------------

    def _queue_for(self, task: Task, worker: int) -> DualQueue:
        if task.priority is Priority.HIGH:
            return self._high[worker % len(self._high)]
        if task.priority is Priority.LOW:
            assert self._low is not None
            return self._low
        return self._normal[worker]

    def enqueue_staged(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        self._queue_for(task, worker).push_staged(task)

    def enqueue_pending(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        self._queue_for(task, worker).push_pending(task)

    # -- consumer ----------------------------------------------------------------

    def find_work(self, worker: int) -> FoundWork | None:
        normal = self._normal
        high = self._high

        # High-priority work owned by this worker comes first.
        if worker < len(high):
            hq = high[worker]
            task = hq.pop_pending()
            if task is not None:
                return FoundWork(task, WorkSource.HIGH_PRIORITY)
            task = hq.pop_staged()
            if task is not None:
                return FoundWork(task, WorkSource.HIGH_PRIORITY)

        # 1. own pending; 2. own staged.
        own = normal[worker]
        task = own.pop_pending()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_PENDING)
        task = own.pop_staged()
        if task is not None:
            # Mirror HPX's mechanics: the staged description is converted
            # into a pending thread and immediately popped again, so the
            # pending-queue counters register the conversion traffic that
            # Fig. 9/10 measure.
            own.push_pending(task)
            task = own.pop_pending()
            assert task is not None
            return FoundWork(task, WorkSource.LOCAL_STAGED)

        # 3./4. same NUMA domain: staged queues first, then pending.  A
        # stolen description converts through the *thief's* pending queue
        # (it is safe to reuse ``own`` here: step 1 just found it empty).
        same = self._same_domain[worker]
        for other in same:
            task = normal[other].pop_staged()
            if task is not None:
                own.push_pending(task)
                task = own.pop_pending()
                assert task is not None
                return FoundWork(task, WorkSource.NUMA_STAGED)
        for other in same:
            task = normal[other].pop_pending()
            if task is not None:
                return FoundWork(task, WorkSource.NUMA_PENDING)

        # 5./6. remote NUMA domains: staged first, then pending.
        remote = self._remote[worker]
        for other in remote:
            task = normal[other].pop_staged()
            if task is not None:
                own.push_pending(task)
                task = own.pop_pending()
                assert task is not None
                return FoundWork(task, WorkSource.REMOTE_STAGED)
        for other in remote:
            task = normal[other].pop_pending()
            if task is not None:
                return FoundWork(task, WorkSource.REMOTE_PENDING)

        # High-priority queues of other workers, before going idle.
        for i, hq in enumerate(high):
            if i == worker:
                continue
            task = hq.pop_pending()
            if task is not None:
                return FoundWork(task, WorkSource.HIGH_PRIORITY)
            task = hq.pop_staged()
            if task is not None:
                return FoundWork(task, WorkSource.HIGH_PRIORITY)

        # Low priority only when all other work has been done.
        assert self._low is not None
        task = self._low.pop_pending()
        if task is not None:
            return FoundWork(task, WorkSource.LOW_PRIORITY)
        task = self._low.pop_staged()
        if task is not None:
            return FoundWork(task, WorkSource.LOW_PRIORITY)
        return None

    # -- introspection -------------------------------------------------------------

    def queues(self) -> Iterator[DualQueue]:
        yield from self._normal
        yield from self._high
        if self._low is not None:
            yield self._low

    def normal_queue(self, worker: int) -> DualQueue:
        """The normal-priority dual queue of ``worker`` (tests/counters)."""
        return self._normal[worker]

    def worker_queue_depth(self, worker: int) -> int:
        """Hot (staged+pending) depth of the queues homed on ``worker``.

        Counts the worker's normal queue, its high-priority queue (if it
        owns one) and — at worker 0, to keep totals exact — the global
        low-priority queue.
        """
        q = self._normal[worker]
        depth = q.pending_len + q.staged_len
        if worker < len(self._high):
            hq = self._high[worker]
            depth += hq.pending_len + hq.staged_len
        if worker == 0 and self._low is not None:
            depth += self._low.pending_len + self._low.staged_len
        return depth
