"""Thread-scheduling policies.

The paper's measurements all use the **Priority Local-FIFO** scheduler — "a
composition of the Priority Local scheduling policy and the lock free FIFO
queuing policy" (Sec. I-B) — implemented here in
:mod:`repro.schedulers.priority_local` with exactly the work-finding order of
the paper's Fig. 1:

1. local pending queue
2. local staged queue
3. staged queues of the local NUMA domain
4. pending queues of the local NUMA domain
5. staged queues of remote NUMA domains
6. pending queues of remote NUMA domains

:mod:`repro.schedulers.variants` adds the comparison policies used by the
ablation benchmarks (static/no-stealing, one global queue, NUMA-blind
stealing); the paper motivates studying such scheduler/granularity
interactions but defers it to future work, so these are extensions.
"""

from repro.schedulers.base import FoundWork, SchedulingPolicy, WorkSource
from repro.schedulers.lifo import PriorityLocalLifoScheduler
from repro.schedulers.priority_local import PriorityLocalScheduler
from repro.schedulers.queues import DualQueue, QueueStats
from repro.schedulers.variants import (
    GlobalQueueScheduler,
    NumaBlindStealingScheduler,
    StaticScheduler,
)

def _make_qos_scheduler() -> SchedulingPolicy:
    # Imported lazily: repro.qos sits *above* this package in the layering
    # (it builds on schedulers, counters and stats), so the registry refers
    # to it by factory instead of importing it at module load.
    from repro.qos.scheduler import QosBucketScheduler

    return QosBucketScheduler()


def _make_rt_edf_scheduler() -> SchedulingPolicy:
    # Same layering story as the QoS scheduler: repro.rt builds on this
    # package, so the registry refers to it by lazy factory.
    from repro.rt.scheduler import EdfScheduler

    return EdfScheduler()


#: Registry of scheduler constructors by command-line name.
SCHEDULERS = {
    "priority-local": PriorityLocalScheduler,
    "priority-local-lifo": PriorityLocalLifoScheduler,
    "static": StaticScheduler,
    "global-queue": GlobalQueueScheduler,
    "numa-blind": NumaBlindStealingScheduler,
    "qos": _make_qos_scheduler,
    "rt-edf": _make_rt_edf_scheduler,
}


def make_scheduler(name: str) -> SchedulingPolicy:
    """Instantiate a scheduler by registry name."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; expected one of {sorted(SCHEDULERS)}"
        ) from None


__all__ = [
    "FoundWork",
    "SchedulingPolicy",
    "WorkSource",
    "PriorityLocalScheduler",
    "PriorityLocalLifoScheduler",
    "DualQueue",
    "QueueStats",
    "StaticScheduler",
    "GlobalQueueScheduler",
    "NumaBlindStealingScheduler",
    "SCHEDULERS",
    "make_scheduler",
]
