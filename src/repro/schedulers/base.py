"""Scheduling-policy interface shared by the executors.

A policy owns the task queues and answers one question — *given an idle
worker, what should it run next?* — while the executor owns time, cost
charging and task execution.  This split lets the simulated and the real
thread executor share every policy unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.runtime.task import Priority, Task
from repro.schedulers.queues import DualQueue, QueueStats
from repro.sim.machine import Machine


class WorkSource(enum.Enum):
    """Where ``find_work`` found the task; drives the executor's cost charges
    and the stolen-task counters.  The enum order matches the search order of
    the paper's Fig. 1."""

    LOCAL_PENDING = 1
    LOCAL_STAGED = 2
    NUMA_STAGED = 3
    NUMA_PENDING = 4
    REMOTE_STAGED = 5
    REMOTE_PENDING = 6
    HIGH_PRIORITY = 0
    LOW_PRIORITY = 7

    @property
    def was_staged(self) -> bool:
        return self in (WorkSource.LOCAL_STAGED, WorkSource.NUMA_STAGED, WorkSource.REMOTE_STAGED)

    @property
    def was_stolen(self) -> bool:
        return self in (
            WorkSource.NUMA_STAGED,
            WorkSource.NUMA_PENDING,
            WorkSource.REMOTE_STAGED,
            WorkSource.REMOTE_PENDING,
        )

    @property
    def same_domain(self) -> bool:
        """True for steals that stayed inside the worker's NUMA domain."""
        return self in (WorkSource.NUMA_STAGED, WorkSource.NUMA_PENDING)


@dataclass(frozen=True)
class FoundWork:
    """A task plus the provenance the executor needs for cost accounting."""

    task: Task
    source: WorkSource


class SchedulingPolicy:
    """Base class for scheduling policies.

    Lifecycle: construct, then :meth:`attach` to a machine (builds queues),
    then any number of enqueue/find_work calls from the executor.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.machine: Machine | None = None
        self.num_workers: int = 0

    # -- setup ---------------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        """Bind to ``machine`` and build one queue set per worker."""
        self.machine = machine
        self.num_workers = machine.num_cores
        self._build_queues()

    def _build_queues(self) -> None:
        raise NotImplementedError

    # -- producer interface ----------------------------------------------------

    def enqueue_staged(self, task: Task, worker: int) -> None:
        """Place a newly created thread description near ``worker``."""
        raise NotImplementedError

    def enqueue_pending(self, task: Task, worker: int) -> None:
        """Requeue a resumed (previously suspended) thread near ``worker``."""
        raise NotImplementedError

    # -- consumer interface -----------------------------------------------------

    def find_work(self, worker: int) -> FoundWork | None:
        """The policy's work-finding algorithm for an idle ``worker``."""
        raise NotImplementedError

    def shared_structure_penalty_ns(self, active_workers: int) -> int:
        """Extra per-dispatch cost of contention on policy-owned shared
        structures.

        Per-worker-queue policies return 0 (their contention is already in
        the cost model's ``contention_coef``); a single shared queue pays a
        growing synchronization cost per pop, which is what makes the
        global-queue ablation honest.
        """
        return 0

    # -- introspection -----------------------------------------------------------

    def queues(self) -> Iterator[DualQueue]:
        """All dual queues owned by the policy (for stats aggregation)."""
        raise NotImplementedError

    def queued_tasks(self) -> int:
        """Tasks currently sitting in any queue (not active/suspended).

        Deferred tasks (parked by admission control, see
        :mod:`repro.overload.admission`) count: they are real queued work
        the consumers will re-admit, and the executor's give-up/deadlock
        checks must not treat them as gone.
        """
        return sum(
            q.pending_len + q.staged_len + q.deferred_len for q in self.queues()
        )

    def worker_queue_depth(self, worker: int) -> int:
        """Staged+pending depth of the queues homed on ``worker``.

        Feeds the per-worker ``/threads{...}/count/queue-depth`` gauge and
        the overload governor.  Policies with per-worker queues override
        this; the default suits single-shared-structure policies — the
        whole depth is reported at worker 0 so totals are not
        double-counted.  Deferred (cold) tasks are excluded: the gauge
        measures the hot structures workers actually scan.
        """
        if worker != 0:
            return 0
        return sum(q.pending_len + q.staged_len for q in self.queues())

    def aggregate_stats(self) -> QueueStats:
        """Summed access/miss counts over every queue."""
        total = QueueStats()
        for q in self.queues():
            total.merge(q.stats)
        return total

    @staticmethod
    def classify_priority(task: Task) -> Priority:
        return task.priority
