"""Priority Local-LIFO: the depth-first sibling of the paper's scheduler.

HPX ships both FIFO and LIFO composition of the Priority Local policy
(``local-priority-fifo`` — the paper's measured configuration — and
``local-priority-lifo``).  LIFO pops the *most recently* queued task from
the local queues, which keeps the working set of a fork-join recursion hot
(depth-first execution) at the price of fairness; steals still take the
oldest staged work, as in classic work-stealing runtimes (steal-from-the-
top, execute-from-the-bottom).

Only the local pop order differs from
:class:`repro.schedulers.priority_local.PriorityLocalScheduler`; the NUMA
search order of the paper's Fig. 1 is identical, so comparing the two
isolates the queue discipline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.task import Task
from repro.schedulers.priority_local import PriorityLocalScheduler
from repro.schedulers.queues import DualQueue


@dataclass
class LifoDualQueue(DualQueue):
    """Dual queue whose *local* pops are LIFO; steals use FIFO pops.

    ``pop_pending``/``pop_staged`` (used by the owner) take the newest
    entry; ``steal_pending``/``steal_staged`` (used by thieves) take the
    oldest, so the two ends never collide in intent.
    """

    def pop_pending(self) -> Task | None:
        admission = self.admission
        if admission is not None:
            admission.drain(self)
        stats = self.stats
        stats.pending_accesses += 1
        if self._pending:
            return self._pending.pop()
        stats.pending_misses += 1
        return None

    def pop_staged(self) -> Task | None:
        admission = self.admission
        if admission is not None:
            admission.drain(self)
        stats = self.stats
        stats.staged_accesses += 1
        if self._staged:
            return self._staged.pop()
        stats.staged_misses += 1
        return None

    def steal_pending(self) -> Task | None:
        return super().pop_pending()

    def steal_staged(self) -> Task | None:
        return super().pop_staged()


class PriorityLocalLifoScheduler(PriorityLocalScheduler):
    """Priority Local policy over LIFO local queues (HPX's
    ``local-priority-lifo``).

    Thief-side accesses go through the same ``pop_*`` methods as the
    owner's, i.e. steals also take the newest entry — matching HPX's
    ``local-priority-lifo``, whose queues have a single pop end.  The
    ``steal_*`` FIFO accessors on :class:`LifoDualQueue` exist for policies
    that want the classic steal-oldest discipline.
    """

    name = "priority-local-lifo"

    def _build_queues(self) -> None:
        super()._build_queues()
        self._normal = [LifoDualQueue() for _ in range(self.num_workers)]
        self._high = [LifoDualQueue() for _ in range(len(self._high))]
        self._low = LifoDualQueue()
