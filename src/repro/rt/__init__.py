"""repro.rt — the deadline & real-time scenario pack.

The paper's grain trade-off (task-management overhead vs starvation)
restated as a *timeliness* question: periodic/sporadic task sets with
deadlines run on the simulated HPX runtime, where subtask granularity is
the preemption granularity — cooperative tasks yield only at chunk
boundaries.  Splitting jobs finer buys urgent work shorter waits but
pays per-chunk management overhead; figE sweeps that axis and shows the
deadline-miss-rate U-shape, with the best grain coarsening as overhead
grows.

Layers (bottom up):

- :mod:`repro.rt.model` — task-set specs, seeded release/demand draws,
  the ``with_grain()`` splitter, JSON round-trip.
- :mod:`repro.rt.resources` — shared resources and the three protocols
  (``none`` / ``inherit`` / ``ceiling``) with inversion accounting.
- :mod:`repro.rt.scheduler` — rate-monotonic priority assignment and
  the job-level EDF policy (registry name ``rt-edf``).
- :mod:`repro.rt.service` — open-loop job release, chunk chaining,
  deadline tracking, the ``/rt...`` counter surface.
- :mod:`repro.rt.analysis` — the response-time schedulability oracle
  (:func:`rta`): the classical fixed-priority recurrence with
  per-protocol blocking terms and the runtime's per-chunk overhead
  priced into demand, cross-checked against measured miss sets.
"""

from repro.rt.analysis import (
    INFEASIBLE,
    SCHEDULABLE,
    UNKNOWN,
    RtaResult,
    TaskRta,
    response_time,
    rta,
)
from repro.rt.model import (
    PeriodicTaskSpec,
    RtTaskSpec,
    SporadicTaskSpec,
    TaskSet,
    split_exact,
)
from repro.rt.resources import PROTOCOLS, ResourceManager, ResourceStats
from repro.rt.scheduler import EdfScheduler, RtTag, rate_monotonic_priorities
from repro.rt.service import (
    Job,
    RtServiceConfig,
    RtServiceOutcome,
    RtTaskStats,
    run_rt_service,
)

__all__ = [
    "INFEASIBLE",
    "SCHEDULABLE",
    "UNKNOWN",
    "RtaResult",
    "TaskRta",
    "response_time",
    "rta",
    "PeriodicTaskSpec",
    "SporadicTaskSpec",
    "RtTaskSpec",
    "TaskSet",
    "split_exact",
    "PROTOCOLS",
    "ResourceManager",
    "ResourceStats",
    "EdfScheduler",
    "RtTag",
    "rate_monotonic_priorities",
    "Job",
    "RtServiceConfig",
    "RtServiceOutcome",
    "RtTaskStats",
    "run_rt_service",
]
