"""Response-time analysis: the schedulability oracle for `repro.rt`.

figE *measures* deadline misses by running task sets on the simulated
runtime; this module *predicts* them with the classical fixed-priority
response-time recurrence (Joseph & Pandya / Audsley):

    R_i = C_i + B_i + sum over j in hp(i) of ceil((R_i + J_j) / T_j) * C_j

iterated to a fixpoint, where ``C_j`` is the per-job demand, ``T_j`` the
minimum interarrival, ``J_j`` the release jitter, and ``B_i`` the
blocking term the resource protocol decides.  Task ``i`` is schedulable
when the fixpoint satisfies ``R_i <= D_i``.

The interesting part is making the textbook arithmetic *honest about
this runtime*.  The service layer (:mod:`repro.rt.service`) runs each
job as a chain of grain-split subtasks, and every subtask pays the full
task-management overhead — so the oracle's ``C_i`` is not the WCET but

    C_i = WCET * (1 + margin) + n_chunks * chunk_overhead [+ lock cost]

with ``chunk_overhead`` taken from the platform's calibrated
``task_overhead_ns`` (times the figE overhead factor) plus the timing
counters, and ``margin`` covering the cost model's bounded seeded jitter
(run-level and per-task, both within a few percent).  The fine-grain
wall therefore appears *inside the analysis*: shrinking the grain grows
``n_chunks`` until the inflated utilization exceeds the machine and
nothing is schedulable — the paper's overhead wall, derived rather than
simulated.  Preemption only happens at chunk boundaries, so ``B_i``
always includes one lower-priority chunk in flight (deferred-preemption
blocking — the analysis face of the coarse-grain wall: a monolithic
lower-priority job blocks an urgent task for its whole length).

Blocking per protocol (see :mod:`repro.rt.resources`):

``none``
    A lower-priority holder can be starved indefinitely by middle
    traffic while the urgent task waits, so the bound is *infinite*:
    any task that can block on a lower-priority holder is reported
    unschedulable.  That pessimism is the point — it is exactly the
    unbounded priority inversion figE observes.

``inherit``
    One maximal boosted critical section per resource that a
    lower-priority task shares with priority >= i (push-through
    blocking included), plus the chunk overheads the holder pays while
    boosted.

``ceiling``
    A single maximal such critical section — under the immediate
    ceiling a job is blocked at most once, before it starts.

Scope, stated precisely: the recurrence is a **sufficient** test for
the rate-monotonic / ``priority-local`` configuration on **one core**
(``RtServiceConfig(scheduler="rm", num_cores=1)``) — RTA-schedulable
means the measured run misses nothing, which
``tests/test_rt_analysis.py`` cross-checks against real
:func:`repro.rt.service.run_rt_service` miss sets.  It is **necessary**
only through the overload check: raw utilization above the core count
is reported ``infeasible`` and must miss in any configuration.
Everything else — multicore, EDF — is honestly ``unknown``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.rt.model import RtTaskSpec, TaskSet, split_exact
from repro.rt.resources import PROTOCOLS
from repro.rt.scheduler import rate_monotonic_priorities
from repro.runtime.task import Priority
from repro.sim.platforms import get_platform

__all__ = [
    "INFEASIBLE",
    "SCHEDULABLE",
    "UNKNOWN",
    "RtaResult",
    "TaskRta",
    "response_time",
    "rta",
]

#: every task's response-time fixpoint is at or under its deadline
SCHEDULABLE = "schedulable"
#: a *necessary* condition fails (raw utilization > cores): misses certain
INFEASIBLE = "infeasible"
#: the sufficient test failed or does not apply — no prediction either way
UNKNOWN = "unknown"

#: iteration cap for the recurrence; the fixpoint either lands or blows
#: through the deadline long before this on any sane task set
_MAX_ITERATIONS = 4096


def response_time(
    demand_ns: float,
    blocking_ns: float,
    deadline_ns: int,
    interferers: Sequence[tuple[float, int, int]],
    *,
    max_iterations: int = _MAX_ITERATIONS,
) -> float:
    """Solve ``R = C + B + sum ceil((R + J_j)/T_j) * C_j`` by iteration.

    ``interferers`` are ``(demand_ns, min_interarrival_ns, jitter_ns)``
    triples for every task of equal or higher priority.  Returns the
    fixpoint, or ``inf`` as soon as the iterate exceeds ``deadline_ns``
    (the recurrence is monotone, so overshooting once is final) or the
    blocking term is already unbounded.
    """
    if math.isinf(blocking_ns):
        return math.inf
    r = demand_ns + blocking_ns
    for _ in range(max_iterations):
        if r > deadline_ns:
            return math.inf
        total = (
            demand_ns
            + blocking_ns
            + sum(
                math.ceil((r + jitter) / period) * demand
                for demand, period, jitter in interferers
            )
        )
        if total == r:
            return r
        r = total
    return math.inf


@dataclass(frozen=True)
class TaskRta:
    """One task's share of the analysis."""

    name: str
    priority: Priority
    #: subtask chain length at the analyzed grain (WCET job)
    chunks: int
    #: overhead-inflated per-job demand bound (ns)
    demand_ns: float
    #: protocol blocking plus one lower-priority chunk in flight (ns)
    blocking_ns: float
    #: worst-case response fixpoint; ``inf`` = not schedulable / unknown
    response_ns: float
    deadline_ns: int

    @property
    def schedulable(self) -> bool:
        return self.response_ns <= self.deadline_ns


@dataclass(frozen=True)
class RtaResult:
    """The oracle's verdict plus every task's arithmetic."""

    verdict: str
    tasks: tuple[TaskRta, ...]
    #: raw WCET utilization of the set (no overhead)
    utilization: float
    #: utilization once per-chunk management overhead is priced in
    inflated_utilization: float
    num_cores: int
    protocol: str

    @property
    def schedulable(self) -> bool:
        return self.verdict == SCHEDULABLE

    def task(self, name: str) -> TaskRta:
        for entry in self.tasks:
            if entry.name == name:
                return entry
        raise KeyError(f"no RT task named {name!r} in the analysis")


def _chunk_lengths(spec: RtTaskSpec) -> tuple[int, ...]:
    """The WCET job's subtask lengths at the spec's grain.

    Drawn demand never exceeds the WCET and ``split_exact`` chunk counts
    are monotone in the total, so the WCET chain bounds every real job.
    """
    cs = spec.critical_section_ns
    return split_exact(cs, spec.grain_ns) + split_exact(
        spec.wcet_ns - cs, spec.grain_ns
    )


def rta(
    taskset: TaskSet,
    *,
    num_cores: int = 1,
    protocol: str = "inherit",
    platform: str = "haswell",
    overhead_factor: float = 1.0,
    margin: float = 0.05,
) -> RtaResult:
    """Analyze ``taskset`` for the given deployment; see the module doc.

    ``margin`` is the fractional allowance for the cost model's bounded
    seeded jitter (run-level and per-task are each within 2%); it
    inflates both compute demand and per-chunk overhead, keeping the
    sufficient test sufficient.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown resource protocol {protocol!r}; expected one of "
            f"{PROTOCOLS}"
        )
    if num_cores < 1:
        raise ValueError(f"num_cores must be >= 1, got {num_cores}")
    if overhead_factor <= 0:
        raise ValueError(
            f"overhead_factor must be positive, got {overhead_factor}"
        )
    if margin < 0:
        raise ValueError(f"margin must be >= 0, got {margin}")

    costs = get_platform(platform).costs
    chunk_overhead = (
        costs.task_overhead_ns * overhead_factor * (1.0 + margin)
        + costs.timer_overhead_ns
    )
    priorities = rate_monotonic_priorities(taskset)

    chunks = {t.name: _chunk_lengths(t) for t in taskset.tasks}
    demand: dict[str, float] = {}
    for t in taskset.tasks:
        demand[t.name] = (
            t.wcet_ns * (1.0 + margin)
            + len(chunks[t.name]) * chunk_overhead
            + (costs.lock_overhead_ns if t.resource is not None else 0.0)
        )

    utilization = taskset.utilization()
    inflated_utilization = sum(
        demand[t.name] / t.min_interarrival_ns for t in taskset.tasks
    )

    def cs_cost(spec: RtTaskSpec) -> float:
        """A holder's boosted critical section, chunk overheads included.

        The extra chunk covers the re-queued husk (``requeue_on_boost``)
        or, equivalently, one critical-section subtask already in flight
        when the waiter arrives.
        """
        n_cs = len(split_exact(spec.critical_section_ns, spec.grain_ns))
        return spec.critical_section_ns * (1.0 + margin) + (
            n_cs + 1
        ) * chunk_overhead

    def blocking(spec: RtTaskSpec) -> float:
        mine = priorities[spec.name]
        lower = [t for t in taskset.tasks if priorities[t.name] < mine]
        # Deferred preemption: cooperative tasks yield only at chunk
        # boundaries, so one lower-priority chunk is always in flight at
        # the critical instant.
        npb = max(
            (
                max(chunks[t.name], default=0) * (1.0 + margin)
                + chunk_overhead
                for t in lower
            ),
            default=0.0,
        )
        # A resource qualifies when a lower-priority task holds it and a
        # task at priority >= mine uses it (push-through blocking: the
        # holder can be boosted past me even if I never touch the bus).
        per_resource: list[float] = []
        for resource in taskset.resources():
            holders = [t for t in lower if t.resource == resource]
            if not holders:
                continue
            reachable = any(
                t.resource == resource and priorities[t.name] >= mine
                for t in taskset.tasks
            )
            if not reachable:
                continue
            if protocol == "none":
                # The holder keeps its LOW priority and middle traffic
                # starves it under the waiter: unbounded inversion.
                return math.inf
            per_resource.append(max(cs_cost(t) for t in holders))
        if not per_resource:
            return npb
        if protocol == "ceiling":
            return npb + max(per_resource)
        return npb + sum(per_resource)

    def analyze(spec: RtTaskSpec) -> TaskRta:
        mine = priorities[spec.name]
        interferers = [
            (demand[t.name], t.min_interarrival_ns, t.release_jitter_ns)
            for t in taskset.tasks
            if t is not spec and priorities[t.name] >= mine
        ]
        b = blocking(spec)
        response = response_time(
            demand[spec.name], b, spec.relative_deadline_ns, interferers
        )
        return TaskRta(
            name=spec.name,
            priority=mine,
            chunks=len(chunks[spec.name]),
            demand_ns=demand[spec.name],
            blocking_ns=b,
            response_ns=response,
            deadline_ns=spec.relative_deadline_ns,
        )

    if utilization > num_cores:
        # Necessary condition: long-run demand exceeds the machine, so a
        # growing backlog (and misses) is certain in every configuration.
        entries = tuple(
            TaskRta(
                name=t.name,
                priority=priorities[t.name],
                chunks=len(chunks[t.name]),
                demand_ns=demand[t.name],
                blocking_ns=0.0,
                response_ns=math.inf,
                deadline_ns=t.relative_deadline_ns,
            )
            for t in taskset.tasks
        )
        return RtaResult(
            verdict=INFEASIBLE,
            tasks=entries,
            utilization=utilization,
            inflated_utilization=inflated_utilization,
            num_cores=num_cores,
            protocol=protocol,
        )

    entries = tuple(analyze(t) for t in taskset.tasks)
    if num_cores != 1:
        # The uniprocessor recurrence proves nothing about a multicore
        # deployment (Dhall's effect cuts both ways) — report the
        # arithmetic but claim nothing.
        verdict = UNKNOWN
    else:
        verdict = (
            SCHEDULABLE if all(e.schedulable for e in entries) else UNKNOWN
        )
    return RtaResult(
        verdict=verdict,
        tasks=entries,
        utilization=utilization,
        inflated_utilization=inflated_utilization,
        num_cores=num_cores,
        protocol=protocol,
    )
