"""Real-time task-set model: periodic/sporadic specs with deadlines.

The paper's workloads care about *throughput*: how long until the whole
grid is done.  A real-time workload asks a per-job question instead — did
job ``k`` of task ``i`` finish by its deadline? — which turns the paper's
grain trade-off into a *timeliness* trade-off (the tiny-tasks paper,
arXiv 2202.11464): splitting a job finer creates more preemption points
(cooperative tasks only yield the core at subtask boundaries), so urgent
work waits less, but every subtask pays the full task-management overhead.

Two release models cover the classical taxonomy:

:class:`PeriodicTaskSpec`
    Job ``k`` releases at ``phase + k * period`` plus optional seeded
    release jitter — with zero jitter, releases are *exact*, which the
    hypothesis property tests pin.

:class:`SporadicTaskSpec`
    Consecutive releases are separated by at least ``min_separation_ns``
    plus a seeded exponential extra gap — the min-separation contract is
    an invariant of the generator, not a statistical tendency.

Both carry a WCET with seeded execution-time variation (actual demand is
drawn in ``[(1 - exec_variation) * wcet, wcet]``), a relative deadline, an
optional shared resource with a critical-section length, and a
``with_grain()`` splitter that decomposes one job into a chain of
subtasks none longer than the grain — total demand is preserved exactly,
so the grain axis applies to RT jobs exactly as it does to Task Bench.

Every draw is a pure function of ``(seed, role, task index, job index)``
through the SplitMix64 streams of :mod:`repro.faults.plan` (fresh role
tags 0xA0–0xA2), and a :class:`TaskSet` round-trips through JSON like
:class:`repro.verify.spec.WorkloadSpec` so scenarios replay anywhere.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields, replace
from typing import Any

from repro.faults.plan import stream_u64, stream_unit

__all__ = [
    "PeriodicTaskSpec",
    "SporadicTaskSpec",
    "RtTaskSpec",
    "TaskSet",
    "split_exact",
]

#: role tags for the RT decision streams; see repro.faults.plan for the
#: taken ones (0x11/0x22/0x33 faults, 0x44 breaker, 0x55 heartbeat,
#: 0x7B-0x7E taskbench/verify, 0x80-0x84 harness, 0x90-0x92 qos arrivals)
_ROLE_RELEASE = 0xA0
_ROLE_GAP = 0xA1
_ROLE_EXEC = 0xA2

#: hard cap on releases from one generator call — a mis-scaled period
#: should fail loudly, not allocate without bound
_MAX_RELEASES = 1_000_000


def split_exact(total_ns: int, grain_ns: int | None) -> tuple[int, ...]:
    """Split ``total_ns`` into near-equal chunks none longer than the grain.

    The sum of the chunks equals ``total_ns`` *exactly* (the property test
    pins this): the remainder of the integer division is spread one
    nanosecond at a time over the leading chunks.  ``grain_ns=None`` (or a
    grain at least as large as the total) keeps the job whole.
    """
    if total_ns <= 0:
        return ()
    if grain_ns is None or grain_ns >= total_ns:
        return (total_ns,)
    n = math.ceil(total_ns / grain_ns)
    base, rem = divmod(total_ns, n)
    return tuple(base + 1 if k < rem else base for k in range(n))


@dataclass(frozen=True)
class RtTaskSpec:
    """Fields shared by both release models.

    ``critical_section_ns`` is the leading portion of each job's demand
    executed while holding ``resource``; it is split by the grain like the
    rest of the job (the lock is held *across* the preemption points — the
    ingredient priority inversion needs to be observable at all).
    """

    name: str
    wcet_ns: int
    relative_deadline_ns: int
    release_jitter_ns: int = 0
    #: actual demand of job k is drawn in [(1 - exec_variation) * wcet, wcet]
    exec_variation: float = 0.0
    #: shared resource this task's critical section needs, or None
    resource: str | None = None
    critical_section_ns: int = 0
    #: subtask ceiling; None runs each job as one task (see with_grain)
    grain_ns: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an RT task needs a non-empty name")
        if self.wcet_ns < 1:
            raise ValueError(f"wcet_ns must be >= 1, got {self.wcet_ns}")
        if self.relative_deadline_ns < 1:
            raise ValueError(
                f"relative_deadline_ns must be >= 1, got "
                f"{self.relative_deadline_ns}"
            )
        if self.release_jitter_ns < 0:
            raise ValueError(
                f"release_jitter_ns must be >= 0, got {self.release_jitter_ns}"
            )
        if not 0.0 <= self.exec_variation < 1.0:
            raise ValueError(
                f"exec_variation must be in [0, 1), got {self.exec_variation}"
            )
        if self.critical_section_ns < 0:
            raise ValueError(
                f"critical_section_ns must be >= 0, got "
                f"{self.critical_section_ns}"
            )
        if self.critical_section_ns > self.wcet_ns:
            raise ValueError(
                f"critical section ({self.critical_section_ns} ns) cannot "
                f"exceed the WCET ({self.wcet_ns} ns)"
            )
        if self.critical_section_ns > 0 and self.resource is None:
            raise ValueError(
                "a critical section needs a resource to hold "
                f"(task {self.name!r})"
            )
        if self.resource is not None and self.critical_section_ns == 0:
            raise ValueError(
                f"task {self.name!r} names resource {self.resource!r} but "
                "has a zero-length critical section"
            )
        if self.grain_ns is not None and self.grain_ns < 1:
            raise ValueError(f"grain_ns must be >= 1, got {self.grain_ns}")

    # -- the grain axis --------------------------------------------------------

    def with_grain(self, grain_ns: int | None) -> "RtTaskSpec":
        """The same task decomposed into subtasks no longer than the grain."""
        return replace(self, grain_ns=grain_ns)

    def execution_ns(self, seed: int, task_index: int, job_index: int) -> int:
        """Seeded actual demand of job ``job_index`` (<= WCET, >= 1)."""
        if self.exec_variation == 0.0:
            return self.wcet_ns
        u = stream_unit(seed, _ROLE_EXEC, task_index, job_index)
        return max(1, int(self.wcet_ns * (1.0 - self.exec_variation * u)))

    def job_chunks(
        self, seed: int, task_index: int, job_index: int
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """One job's subtask chain: ``(critical chunks, remainder chunks)``.

        The critical-section region comes first (the job acquires its
        resource at release and holds it across the region's preemption
        points); both regions are grain-split and together sum exactly to
        the job's drawn demand.
        """
        demand = self.execution_ns(seed, task_index, job_index)
        cs = min(
            demand,
            int(
                round(
                    demand * self.critical_section_ns / self.wcet_ns
                )
            )
            if self.critical_section_ns
            else 0,
        )
        return split_exact(cs, self.grain_ns), split_exact(
            demand - cs, self.grain_ns
        )

    # -- schedulability arithmetic ---------------------------------------------

    @property
    def min_interarrival_ns(self) -> int:
        raise NotImplementedError

    @property
    def utilization(self) -> float:
        """Long-run demand fraction: WCET over the minimum interarrival."""
        return self.wcet_ns / self.min_interarrival_ns

    def release_times(
        self, seed: int, task_index: int, window_ns: int
    ) -> list[int]:
        """Strictly increasing release offsets in ``[0, window_ns)``."""
        raise NotImplementedError


@dataclass(frozen=True)
class PeriodicTaskSpec(RtTaskSpec):
    """Job ``k`` releases at ``phase + k * period (+ jitter)``."""

    period_ns: int = 1
    phase_ns: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_ns < 1:
            raise ValueError(f"period_ns must be >= 1, got {self.period_ns}")
        if self.phase_ns < 0:
            raise ValueError(f"phase_ns must be >= 0, got {self.phase_ns}")
        if self.release_jitter_ns >= self.period_ns:
            raise ValueError(
                f"release jitter ({self.release_jitter_ns} ns) must stay "
                f"below the period ({self.period_ns} ns) or releases could "
                "reorder"
            )

    @property
    def min_interarrival_ns(self) -> int:
        return self.period_ns

    def release_times(
        self, seed: int, task_index: int, window_ns: int
    ) -> list[int]:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        out: list[int] = []
        k = 0
        while k <= _MAX_RELEASES:
            t = self.phase_ns + k * self.period_ns
            if self.release_jitter_ns:
                t += stream_u64(seed, _ROLE_RELEASE, task_index, k) % (
                    self.release_jitter_ns + 1
                )
            if t >= window_ns:
                break
            out.append(t)
            k += 1
        return out


@dataclass(frozen=True)
class SporadicTaskSpec(RtTaskSpec):
    """Releases separated by >= ``min_separation_ns`` plus a seeded gap.

    The extra gap is exponential with mean ``mean_extra_gap_ns`` (defaults
    to the minimum separation), drawn from a SplitMix64 stream — so the
    *contract* (never closer than the minimum separation) is structural
    while the schedule stays irregular and bit-reproducible.
    """

    min_separation_ns: int = 1
    mean_extra_gap_ns: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.min_separation_ns < 1:
            raise ValueError(
                f"min_separation_ns must be >= 1, got {self.min_separation_ns}"
            )
        if self.mean_extra_gap_ns is not None and self.mean_extra_gap_ns < 0:
            raise ValueError(
                f"mean_extra_gap_ns must be >= 0, got {self.mean_extra_gap_ns}"
            )

    @property
    def min_interarrival_ns(self) -> int:
        return self.min_separation_ns

    def release_times(
        self, seed: int, task_index: int, window_ns: int
    ) -> list[int]:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        mean_extra = (
            float(self.min_separation_ns)
            if self.mean_extra_gap_ns is None
            else self.mean_extra_gap_ns
        )
        out: list[int] = []
        t = 0
        k = 0
        while t < window_ns and k <= _MAX_RELEASES:
            out.append(t)
            extra = 0
            if mean_extra > 0.0:
                u = stream_unit(seed, _ROLE_GAP, task_index, k)
                extra = int(-mean_extra * math.log(1.0 - u))
            t += self.min_separation_ns + extra
            k += 1
        return out


#: JSON tag -> concrete spec class (stable serialization API)
_KINDS: dict[str, type[RtTaskSpec]] = {
    "periodic": PeriodicTaskSpec,
    "sporadic": SporadicTaskSpec,
}


def _spec_kind(spec: RtTaskSpec) -> str:
    for kind, cls in _KINDS.items():
        if type(spec) is cls:
            return kind
    raise TypeError(f"unregistered RT task spec type {type(spec).__name__}")


@dataclass(frozen=True)
class TaskSet:
    """An ordered set of RT tasks released together over one window.

    ``seed`` feeds every release/execution draw; task indices are list
    positions, so the same JSON replays the same schedule anywhere.
    """

    tasks: tuple[RtTaskSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a TaskSet needs at least one task")
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate RT task names: {names}")

    def utilization(self) -> float:
        """Total long-run demand fraction (of one core) of the set."""
        return sum(t.utilization for t in self.tasks)

    def with_grain(self, grain_ns: int | None) -> "TaskSet":
        """Every task decomposed at the same grain — the figE x axis."""
        return replace(
            self, tasks=tuple(t.with_grain(grain_ns) for t in self.tasks)
        )

    def resources(self) -> tuple[str, ...]:
        """The distinct resource names the set's critical sections use."""
        seen: dict[str, None] = {}
        for t in self.tasks:
            if t.resource is not None:
                seen.setdefault(t.resource, None)
        return tuple(seen)

    def max_critical_section_ns(self) -> int:
        return max(
            (t.critical_section_ns for t in self.tasks), default=0
        )

    # -- JSON round-trip -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out_tasks = []
        for t in self.tasks:
            entry: dict[str, Any] = {"kind": _spec_kind(t)}
            for f in fields(t):
                entry[f.name] = getattr(t, f.name)
            out_tasks.append(entry)
        return {"seed": self.seed, "tasks": out_tasks}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TaskSet":
        tasks = []
        for entry in data["tasks"]:
            entry = dict(entry)
            kind = entry.pop("kind")
            try:
                spec_cls = _KINDS[kind]
            except KeyError:
                raise ValueError(
                    f"unknown RT task kind {kind!r}; expected one of "
                    f"{sorted(_KINDS)}"
                ) from None
            tasks.append(spec_cls(**entry))
        return cls(tasks=tuple(tasks), seed=data.get("seed", 0))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TaskSet":
        return cls.from_dict(json.loads(text))
