"""Shared resources and the protocols that bound (or fail to bound) blocking.

A job that reaches its critical section *acquires* its resource and holds
it across the region's subtask boundaries — the cooperative preemption
points the grain axis creates.  While it holds, other jobs of the set run
in between its subtasks; a higher-priority job that needs the same
resource must *wait*.  How long it waits is the whole story of priority
inversion, and the protocol decides it:

``none``
    Requests queue by priority but the holder keeps its own (possibly
    LOW) priority.  Under the Priority Local scheduler, LOW work runs
    only when nothing else is queued — medium-priority traffic therefore
    starves the holder indefinitely while the HIGH waiter blocks.  That
    *unbounded* blocking is textbook priority inversion, and this
    protocol exists so the effect is observable rather than assumed.

``inherit``
    Priority inheritance: while a higher-priority job waits, the holder's
    *effective* priority is boosted to the waiter's.  The holder's
    remaining critical-section subtasks then spawn at the boosted
    priority, so blocking is bounded by the remaining critical section
    plus one subtask in flight.

``ceiling``
    Immediate priority ceiling: acquiring a resource boosts the holder to
    the resource's ceiling (the highest base priority of any task that
    uses it) for the whole critical section — inversion never begins.

:class:`ResourceManager` implements all three over *jobs* (anything with
``job_id`` / ``base_priority`` / ``effective_priority`` attributes — the
:class:`repro.rt.service.Job`), and accumulates the counters the service
layer exposes as ``/rt/count/{inversions,inheritance-boosts,blocked}``
and ``/rt/time/blocked``.  An *inversion* is counted when a wait's
blocked duration exceeds the manager's ``inversion_threshold_ns`` — a
bound chosen so that a holder which made steady progress (any protocol
that boosts it) always releases in time, while a starved holder cannot.

The lock operation itself costs time: :meth:`repro.sim.costmodel.
CostModel.lock_cost_ns` (``CostParams.lock_overhead_ns``) is charged to
the acquiring subtask by the service layer, so contention shows up in the
simulated clock, not just in the counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.runtime.task import Priority

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service imports us)
    from repro.rt.service import Job

__all__ = ["PROTOCOLS", "ResourceManager", "ResourceStats"]

#: the three resource protocols, by CLI/config name
PROTOCOLS = ("none", "inherit", "ceiling")


@dataclass
class ResourceStats:
    """Counters accumulated by one :class:`ResourceManager`."""

    #: grants whose blocked duration exceeded the inversion threshold
    inversions: int = 0
    #: times a holder's effective priority was raised by a waiter/ceiling
    inheritance_boosts: int = 0
    #: acquire attempts that found the resource held
    blocked: int = 0
    #: total virtual time jobs spent blocked on a held resource
    blocked_ns: int = 0
    #: longest single blocked wait observed
    max_blocked_ns: int = 0

    def record_wait(self, waited_ns: int, threshold_ns: int) -> None:
        self.blocked_ns += waited_ns
        if waited_ns > self.max_blocked_ns:
            self.max_blocked_ns = waited_ns
        if waited_ns > threshold_ns:
            self.inversions += 1


@dataclass
class _ResourceState:
    holder: "Job | None" = None
    #: FIFO of (job, blocked_since_ns); grant order re-sorts by priority
    waiters: list[tuple["Job", int]] = field(default_factory=list)


class ResourceManager:
    """Grant/queue/boost logic for one task set's shared resources.

    ``ceilings`` maps resource name -> highest base priority of any task
    using it (the service computes this from the :class:`TaskSet`); only
    the ``ceiling`` protocol reads it.  All tie-breaks are deterministic
    (priority, then blocked-since, then job id), so runs replay
    bit-identically.
    """

    def __init__(
        self,
        resources: tuple[str, ...],
        *,
        protocol: str = "none",
        inversion_threshold_ns: int = 0,
        ceilings: dict[str, Priority] | None = None,
    ) -> None:
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown resource protocol {protocol!r}; expected one of "
                f"{PROTOCOLS}"
            )
        if inversion_threshold_ns < 0:
            raise ValueError(
                f"inversion_threshold_ns must be >= 0, got "
                f"{inversion_threshold_ns}"
            )
        self.protocol = protocol
        self.inversion_threshold_ns = inversion_threshold_ns
        self.ceilings = dict(ceilings or {})
        self.stats = ResourceStats()
        self._state = {name: _ResourceState() for name in resources}
        #: called with the boosted job after every effective-priority raise;
        #: the service layer uses it to *re-queue* a chunk the job already
        #: has waiting at the stale priority (a real RTOS re-inserts the
        #: boosted thread into its new priority queue — without this, a
        #: starved LOW chunk would never feel the boost and inheritance
        #: could not bound anything)
        self.on_boost: "Callable[[Job], None] | None" = None

    # -- the protocol-facing surface -------------------------------------------

    def acquire(self, job: "Job", resource: str, now_ns: int) -> bool:
        """Try to take ``resource`` for ``job``; False parks it as a waiter.

        On a grant the ``ceiling`` protocol boosts the new holder
        immediately; on a block the ``inherit`` protocol boosts the
        current holder to the waiter's effective priority.
        """
        state = self._state[resource]
        if state.holder is None:
            state.holder = job
            self._apply_ceiling(job, resource)
            return True
        self.stats.blocked += 1
        state.waiters.append((job, now_ns))
        if self.protocol == "inherit":
            self._boost(state.holder, job.effective_priority)
        return False

    def release(self, job: "Job", resource: str, now_ns: int) -> "Job | None":
        """Release ``resource``; returns the next holder (already granted).

        The releasing job's effective priority drops back to its base;
        the grant goes to the highest-effective-priority waiter (earliest
        blocked, then lowest job id, on ties), whose blocked time is
        recorded — and compared against the inversion threshold — here.
        """
        state = self._state[resource]
        if state.holder is not job:
            raise RuntimeError(
                f"job {job.job_id} released {resource!r} it does not hold"
            )
        state.holder = None
        if job.effective_priority != job.base_priority:
            job.effective_priority = job.base_priority
        if not state.waiters:
            return None
        state.waiters.sort(
            key=lambda w: (-int(w[0].effective_priority), w[1], w[0].job_id)
        )
        winner, since = state.waiters.pop(0)
        self.stats.record_wait(now_ns - since, self.inversion_threshold_ns)
        state.holder = winner
        self._apply_ceiling(winner, resource)
        if self.protocol == "inherit":
            # Waiters still queued keep the new holder boosted.
            for other, _ in state.waiters:
                self._boost(winner, other.effective_priority)
        return winner

    def holder(self, resource: str) -> "Job | None":
        return self._state[resource].holder

    def waiting(self, resource: str) -> int:
        return len(self._state[resource].waiters)

    # -- boosts ----------------------------------------------------------------

    def _boost(self, job: "Job", to: Priority) -> None:
        if to > job.effective_priority:
            job.effective_priority = to
            self.stats.inheritance_boosts += 1
            if self.on_boost is not None:
                self.on_boost(job)

    def _apply_ceiling(self, job: "Job", resource: str) -> None:
        if self.protocol != "ceiling":
            return
        ceiling = self.ceilings.get(resource)
        if ceiling is not None:
            self._boost(job, ceiling)
