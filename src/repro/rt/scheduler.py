"""Deadline-aware scheduling: rate-monotonic assignment and job-level EDF.

Two classical policies, mapped onto the repo's existing machinery instead
of reinvented:

**Rate-monotonic** is a *priority assignment*, not a new queue structure:
:func:`rate_monotonic_priorities` ranks a task set by minimum interarrival
(shortest period = most urgent) onto the three queue priorities of the
paper's Priority Local scheduler — the shortest-period tier runs HIGH,
the longest LOW, everything between NORMAL.  The service layer spawns
each job's subtasks at the assigned (or inherited, see
:mod:`repro.rt.resources`) priority and the stock ``priority-local``
policy does the rest.  This is deliberately the configuration where
priority inversion is *observable*: the LOW tier runs only when every
other queue is empty.

**Job-level EDF** (:class:`EdfScheduler`, registry name ``rt-edf``) reuses
the QoS bucket scheduler's clock-free EDF root selection: one bucket per
RT task (keyed by the :class:`RtTag` each subtask carries in ``Task.qos``),
and the bucket to serve next is the one whose *head* job has the earliest
absolute deadline.  Within a bucket releases are monotone and the relative
deadline is constant, so FIFO order *is* deadline order — which makes the
bucket selection exactly job-level EDF while selection stays a pure
function of queue contents (no clock reads, bit-reproducible everywhere).
Subtasks without an :class:`RtTag` fall into a default bucket whose
deadline is ``arrival + default_latency_ns``, so mixed workloads (and the
differential fuzzer) run unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.runtime.task import Priority, Task
from repro.schedulers.base import FoundWork, SchedulingPolicy, WorkSource
from repro.schedulers.queues import DualQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.rt.model import TaskSet

__all__ = [
    "RtTag",
    "rate_monotonic_priorities",
    "EdfScheduler",
    "EDF_ROOT_CONTENTION_NS_PER_WORKER",
]

#: per-dispatch cost of the shared EDF root state (cf. the QoS scheduler's
#: ROOT_CONTENTION_NS_PER_WORKER): every worker's find_work scans the same
#: bucket-deadline structure
EDF_ROOT_CONTENTION_NS_PER_WORKER = 12

#: bucket for subtasks that carry no RtTag
_UNTAGGED = "@untagged"


@dataclass(frozen=True)
class RtTag:
    """Deadline transport: rides in ``Task.qos`` (an ``Any`` slot that
    non-QoS-aware schedulers ignore entirely) from the service layer to
    the EDF scheduler.  Duck-typed via ``getattr``, so tasks tagged with a
    :class:`repro.qos.QosClass` — or nothing — coexist freely."""

    #: the job's absolute deadline on the simulated clock
    absolute_deadline_ns: int
    #: EDF bucket this subtask sorts under (the RT task's name)
    bucket_key: str
    #: job sequence number within the task (diagnostics/tie-breaks)
    job_id: int = 0


def rate_monotonic_priorities(taskset: "TaskSet") -> dict[str, Priority]:
    """RM assignment onto the three queue priorities, by task name.

    Tasks are ranked by minimum interarrival: every task sharing the
    shortest one runs HIGH, every task sharing the longest runs LOW, and
    the middle tiers run NORMAL.  A set with a single distinct period has
    no rate ordering to express and stays all-NORMAL.
    """
    periods = sorted({t.min_interarrival_ns for t in taskset.tasks})
    if len(periods) == 1:
        return {t.name: Priority.NORMAL for t in taskset.tasks}
    out: dict[str, Priority] = {}
    for t in taskset.tasks:
        if t.min_interarrival_ns == periods[0]:
            out[t.name] = Priority.HIGH
        elif t.min_interarrival_ns == periods[-1]:
            out[t.name] = Priority.LOW
        else:
            out[t.name] = Priority.NORMAL
    return out


class _RtBucket:
    """Per-task EDF state: one DualQueue per worker, FIFO = deadline order."""

    __slots__ = ("key", "queues")

    def __init__(self, key: str, num_workers: int):
        self.key = key
        self.queues = [DualQueue() for _ in range(num_workers)]

    def has_work(self) -> bool:
        return any(not q.is_empty for q in self.queues)

    def deadline(self, default_latency_ns: int) -> float:
        """Earliest head deadline across the bucket's queues.

        Heads carry their absolute deadline in the :class:`RtTag`;
        untagged heads get ``created_ns + default_latency_ns``.  Hot-empty
        queues contribute nothing (deferred work is cold by design).
        """
        earliest = float("inf")
        for q in self.queues:
            head = q.head_task()
            if head is None:
                continue
            deadline = getattr(head.qos, "absolute_deadline_ns", None)
            if deadline is None:
                deadline = head.created_ns + default_latency_ns
            if deadline < earliest:
                earliest = deadline
        return earliest


class EdfScheduler(SchedulingPolicy):
    """Job-level EDF via per-task buckets and clock-free root selection."""

    name = "rt-edf"

    def __init__(self, *, default_latency_ns: int = 5_000_000) -> None:
        super().__init__()
        if default_latency_ns < 0:
            raise ValueError(
                f"default_latency_ns must be >= 0, got {default_latency_ns}"
            )
        self.default_latency_ns = default_latency_ns
        self._buckets: list[_RtBucket] = []
        self._by_key: dict[str, int] = {}
        self._same_domain: list[tuple[int, ...]] = []
        self._remote: list[tuple[int, ...]] = []

    # -- setup ---------------------------------------------------------------

    def _build_queues(self) -> None:
        self._buckets = []
        self._by_key = {}
        assert self.machine is not None
        n = self.num_workers
        self._same_domain = [self.machine.same_domain_cores(w) for w in range(n)]
        self._remote = [self.machine.remote_domain_cores(w) for w in range(n)]

    def _bucket_of(self, task: Task) -> _RtBucket:
        key = getattr(task.qos, "bucket_key", None)
        if not isinstance(key, str) or not key:
            key = _UNTAGGED
        idx = self._by_key.get(key)
        if idx is None:
            # Buckets appear in first-enqueue order, which is itself a
            # deterministic function of the workload — ties in deadline
            # break on this index, keeping selection total and replayable.
            idx = len(self._buckets)
            self._by_key[key] = idx
            self._buckets.append(_RtBucket(key, self.num_workers))
        return self._buckets[idx]

    # -- producers -------------------------------------------------------------

    def enqueue_staged(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        self._bucket_of(task).queues[worker].push_staged(task)

    def enqueue_pending(self, task: Task, worker: int) -> None:
        task.home_worker = worker
        self._bucket_of(task).queues[worker].push_pending(task)

    # -- consumer ----------------------------------------------------------------

    def _selection_order(self) -> list[_RtBucket]:
        """Root phase: non-empty buckets by (head deadline, bucket index)."""
        candidates = [
            (b.deadline(self.default_latency_ns), i, b)
            for i, b in enumerate(self._buckets)
            if b.has_work()
        ]
        candidates.sort(key=lambda entry: (entry[0], entry[1]))
        return [b for _, _, b in candidates]

    def _find_in_bucket(self, bucket: _RtBucket, worker: int) -> FoundWork | None:
        """Thread phase inside one bucket: the paper's Fig. 1 order."""
        queues = bucket.queues
        own = queues[worker]
        task = own.pop_pending()
        if task is not None:
            return FoundWork(task, WorkSource.LOCAL_PENDING)
        task = own.pop_staged()
        if task is not None:
            # Convert through the pending queue (as priority-local does) so
            # the staged->pending traffic registers in the Fig. 9/10 counters.
            own.push_pending(task)
            task = own.pop_pending()
            assert task is not None
            return FoundWork(task, WorkSource.LOCAL_STAGED)
        for other in self._same_domain[worker]:
            task = queues[other].pop_staged()
            if task is not None:
                own.push_pending(task)
                task = own.pop_pending()
                assert task is not None
                return FoundWork(task, WorkSource.NUMA_STAGED)
        for other in self._same_domain[worker]:
            task = queues[other].pop_pending()
            if task is not None:
                return FoundWork(task, WorkSource.NUMA_PENDING)
        for other in self._remote[worker]:
            task = queues[other].pop_staged()
            if task is not None:
                own.push_pending(task)
                task = own.pop_pending()
                assert task is not None
                return FoundWork(task, WorkSource.REMOTE_STAGED)
        for other in self._remote[worker]:
            task = queues[other].pop_pending()
            if task is not None:
                return FoundWork(task, WorkSource.REMOTE_PENDING)
        return None

    def find_work(self, worker: int) -> FoundWork | None:
        for bucket in self._selection_order():
            found = self._find_in_bucket(bucket, worker)
            if found is not None:
                return found
        return None

    def shared_structure_penalty_ns(self, active_workers: int) -> int:
        """The EDF root scan is shared by every worker's dispatch."""
        return EDF_ROOT_CONTENTION_NS_PER_WORKER * max(0, active_workers - 1)

    # -- introspection -------------------------------------------------------------

    def queues(self) -> Iterator[DualQueue]:
        for bucket in self._buckets:
            yield from bucket.queues

    def worker_queue_depth(self, worker: int) -> int:
        return sum(
            bucket.queues[worker].pending_len + bucket.queues[worker].staged_len
            for bucket in self._buckets
        )
