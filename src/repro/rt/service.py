"""Open-loop job release, deadline tracking, and the RT counter surface.

:func:`run_rt_service` is the top of the RT stack, shaped after
:func:`repro.qos.service.run_qos_service`: every job release in the
window is scheduled on the simulator *before* the run (open loop — the
environment does not wait for the system), and each released
:class:`Job` then executes as a *chain* of subtasks whose lengths come
from :meth:`repro.rt.model.RtTaskSpec.job_chunks`.  Chaining, not
batching, is the point: only one subtask of a job is in flight at a
time, so the scheduler gets a preemption opportunity at every chunk
boundary — the grain axis *is* the preemption granularity, which is the
paper's task-size trade-off wearing a deadline costume.

Jobs whose task names a shared resource acquire it (through the
:class:`~repro.rt.resources.ResourceManager`) before their leading
critical-section chunks and release it after the last one; a blocked
job's chain simply does not start until the grant arrives, and the
grant happens inside the holder's release — all on the simulated clock,
so blocked time is exact.

Accounting is exposed twice, like the QoS layer: programmatically as
:class:`RtServiceOutcome` (per-task :class:`RtTaskStats` with exact
lateness samples and nearest-rank tardiness percentiles, plus the
:class:`~repro.rt.resources.ResourceStats`), and through the counter
registry as ``/rt{task#N}/...`` per-task counters plus the ``/rt/...``
resource-protocol aggregates.  Conservation holds by construction and
is asserted by figE and the PF409 fuzzer invariant::

    released == completed on time + missed
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.counters.registry import CounterRegistry
from repro.rt.model import TaskSet
from repro.rt.resources import PROTOCOLS, ResourceManager, ResourceStats
from repro.rt.scheduler import EdfScheduler, RtTag, rate_monotonic_priorities
from repro.runtime.future import Future
from repro.runtime.runtime import Runtime, RuntimeConfig, RunResult
from repro.runtime.task import Priority, Task, TaskState
from repro.runtime.work import FixedWork, NoWork
from repro.schedulers.base import SchedulingPolicy
from repro.sim.platforms import get_platform
from repro.util.stats import quantile

__all__ = [
    "Job",
    "RtServiceConfig",
    "RtServiceOutcome",
    "RtTaskStats",
    "run_rt_service",
]


def _unit() -> int:
    """The body of one subtask (pure bookkeeping; cost is in the chunk)."""
    return 1


class Job:
    """One release of one RT task: a chunk chain with a deadline.

    Carries exactly the surface the :class:`ResourceManager` duck-types
    (``job_id`` / ``base_priority`` / ``effective_priority``) plus the
    chain cursor the service advances.  ``effective_priority`` is what
    each *next* subtask spawns at — a priority boost therefore takes
    effect at the following preemption point, never retroactively,
    which is precisely the bounded-blocking granularity the protocols
    promise.
    """

    __slots__ = (
        "job_id",
        "task_index",
        "name",
        "release_ns",
        "deadline_ns",
        "base_priority",
        "effective_priority",
        "chunks",
        "cs_len",
        "cursor",
        "holds",
        "generation",
        "pending_task",
    )

    def __init__(
        self,
        *,
        job_id: int,
        task_index: int,
        name: str,
        release_ns: int,
        deadline_ns: int,
        priority: Priority,
        cs_chunks: tuple[int, ...],
        rest_chunks: tuple[int, ...],
    ) -> None:
        self.job_id = job_id
        self.task_index = task_index
        self.name = name
        self.release_ns = release_ns
        self.deadline_ns = deadline_ns
        self.base_priority = priority
        self.effective_priority = priority
        self.chunks: tuple[int, ...] = cs_chunks + rest_chunks
        self.cs_len = len(cs_chunks)
        self.cursor = 0
        self.holds = False
        #: bumped on every re-queue; stale chunk completions check it
        self.generation = 0
        #: the chunk currently queued or running, for re-queue on boost
        self.pending_task: "Task | None" = None


@dataclass
class RtTaskStats:
    """Deadline accounting for one task of the set.

    ``lateness_ns`` keeps one exact sample per completed job
    (completion minus absolute deadline; negative = early), so the
    tardiness percentiles are nearest-rank over real observations, the
    same convention as the QoS latency quantiles.
    """

    released: int = 0
    on_time: int = 0
    missed: int = 0
    lateness_ns: list[int] = field(default_factory=list)
    #: job ids that missed, in completion order (rerun-identity checks)
    missed_jobs: list[int] = field(default_factory=list)

    def record_completion(self, job_id: int, lateness_ns: int) -> None:
        self.lateness_ns.append(lateness_ns)
        if lateness_ns <= 0:
            self.on_time += 1
        else:
            self.missed += 1
            self.missed_jobs.append(job_id)

    @property
    def completed(self) -> int:
        return self.on_time + self.missed

    def miss_rate(self) -> float:
        """Fraction of released jobs that missed their deadline."""
        return self.missed / self.released if self.released else 0.0

    def tardiness_p(self, q: float) -> float:
        """Nearest-rank tardiness quantile (lateness clamped at zero)."""
        if not self.lateness_ns:
            return 0.0
        return float(quantile([max(0, x) for x in self.lateness_ns], q))

    def max_lateness_ns(self) -> int:
        return max(self.lateness_ns, default=0)


@dataclass(frozen=True)
class RtServiceConfig:
    """One RT deployment: machine, scheduler, protocol, window.

    ``scheduler=None`` runs job-level EDF (:class:`EdfScheduler`);
    ``scheduler="rm"`` maps rate-monotonic priorities onto the stock
    ``priority-local`` policy (the configuration where priority
    inversion is observable); any other policy or registry name runs
    the same traffic unmodified — the figE scheduler axis.

    ``overhead_factor`` scales the platform's per-task management cost
    (``task_overhead_ns``), the figE overhead-regime axis.

    ``inversion_threshold_ns=None`` derives a bound from the task set:
    a holder that keeps making progress (because a protocol boosts it)
    releases within a few critical sections' worth of time, while a
    starved holder cannot — see :mod:`repro.rt.resources`.
    """

    platform: str = "haswell"
    num_cores: int = 2
    seed: int = 0
    window_ns: int = 400_000
    protocol: str = "inherit"
    scheduler: SchedulingPolicy | str | None = None
    overhead_factor: float = 1.0
    inversion_threshold_ns: int | None = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {self.window_ns}")
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown resource protocol {self.protocol!r}; expected one "
                f"of {PROTOCOLS}"
            )
        if self.overhead_factor <= 0:
            raise ValueError(
                f"overhead_factor must be positive, got {self.overhead_factor}"
            )
        if (
            self.inversion_threshold_ns is not None
            and self.inversion_threshold_ns < 0
        ):
            raise ValueError(
                f"inversion_threshold_ns must be >= 0, got "
                f"{self.inversion_threshold_ns}"
            )


@dataclass(frozen=True)
class RtServiceOutcome:
    """A finished RT window plus per-task and resource accounting."""

    result: RunResult
    taskset: TaskSet
    stats: dict[int, RtTaskStats]
    resources: ResourceStats

    def stats_for(self, task_name: str) -> RtTaskStats:
        for index, task in enumerate(self.taskset.tasks):
            if task.name == task_name:
                return self.stats[index]
        raise KeyError(f"no RT task named {task_name!r}")

    def released(self) -> int:
        return sum(s.released for s in self.stats.values())

    def missed(self) -> int:
        return sum(s.missed for s in self.stats.values())

    def miss_rate(self) -> float:
        total = self.released()
        return self.missed() / total if total else 0.0

    def conserved(self) -> bool:
        """Per-task conservation: every release finished, on time or late."""
        return all(
            s.released == s.on_time + s.missed for s in self.stats.values()
        )

    def missed_jobs(self) -> tuple[tuple[int, int], ...]:
        """Sorted ``(task_index, job_id)`` misses — the rerun-identity set."""
        out = [
            (index, job_id)
            for index, s in self.stats.items()
            for job_id in s.missed_jobs
        ]
        return tuple(sorted(out))


def default_inversion_threshold_ns(taskset: TaskSet) -> int:
    """Blocking bound a *boosted* holder always meets.

    Inheritance bounds a wait by the holder's remaining critical section
    plus one subtask in flight plus per-chunk management overhead; three
    maximal critical sections plus a generous fixed overhead allowance
    covers that on every platform regime figE sweeps, while a LOW holder
    starved behind steady NORMAL traffic overshoots it by an order of
    magnitude.
    """
    return 3 * taskset.max_critical_section_ns() + 30_000


def register_rt_counters(
    registry: CounterRegistry,
    taskset: TaskSet,
    stats: dict[int, RtTaskStats],
    resources: ResourceStats,
) -> None:
    """Expose per-task ``/rt{task#N}/...`` and aggregate ``/rt/...`` counters."""
    for index, task in enumerate(taskset.tasks):
        s = stats[index]
        prefix = f"/rt{{task#{index}}}"
        registry.derived(
            f"{prefix}/count/released",
            lambda s=s: float(s.released),
            f"jobs released by RT task {task.name!r}",
        )
        registry.derived(
            f"{prefix}/count/on-time",
            lambda s=s: float(s.on_time),
            f"jobs of {task.name!r} completed by their deadline",
        )
        registry.derived(
            f"{prefix}/count/missed",
            lambda s=s: float(s.missed),
            f"jobs of {task.name!r} that missed their deadline",
        )
        registry.derived(
            f"{prefix}/time/tardiness-p99@gauge",
            lambda s=s: s.tardiness_p(0.99),
            f"p99 tardiness of {task.name!r} (ns, nearest-rank)",
        )
        registry.derived(
            f"{prefix}/time/max-lateness@gauge",
            lambda s=s: float(s.max_lateness_ns()),
            f"maximum lateness of {task.name!r} (ns; negative = early)",
        )
    registry.derived(
        "/rt/count/inversions",
        lambda r=resources: float(r.inversions),
        "resource waits longer than the inversion threshold",
    )
    registry.derived(
        "/rt/count/inheritance-boosts",
        lambda r=resources: float(r.inheritance_boosts),
        "priority boosts applied by the inherit/ceiling protocols",
    )
    registry.derived(
        "/rt/count/blocked",
        lambda r=resources: float(r.blocked),
        "acquire attempts that found the resource held",
    )
    registry.derived(
        "/rt/time/blocked",
        lambda r=resources: float(r.blocked_ns),
        "total virtual time jobs spent blocked on held resources",
    )
    registry.derived(
        "/rt/time/max-blocked@gauge",
        lambda r=resources: float(r.max_blocked_ns),
        "longest single blocked wait (ns)",
    )


def _resolve_policy(
    cfg: RtServiceConfig, taskset: TaskSet
) -> SchedulingPolicy | str:
    if cfg.scheduler is None:
        return EdfScheduler()
    if cfg.scheduler == "rm":
        # RM is a priority assignment, not a queue structure: jobs spawn
        # at rate-monotonic priorities (see run_rt_service) and the stock
        # priority scheduler does the rest.
        return "priority-local"
    return cfg.scheduler


def _scaled_platform(cfg: RtServiceConfig):
    spec = get_platform(cfg.platform)
    if cfg.overhead_factor == 1.0:
        return spec
    costs = dataclasses.replace(
        spec.costs,
        task_overhead_ns=spec.costs.task_overhead_ns * cfg.overhead_factor,
    )
    return dataclasses.replace(spec, costs=costs)


def run_rt_service(
    taskset: TaskSet,
    config: RtServiceConfig | None = None,
) -> RtServiceOutcome:
    """Run one RT window; returns per-task deadline outcomes.

    Release schedules depend only on ``(taskset.seed, task index)`` and
    the runtime underneath is the deterministic simulator, so the whole
    outcome — miss sets, lateness samples, blocked times — is
    bit-reproducible for a given ``(taskset, config)``.
    """
    cfg = config if config is not None else RtServiceConfig()
    priorities = rate_monotonic_priorities(taskset)
    ceilings: dict[str, Priority] = {}
    for task in taskset.tasks:
        if task.resource is not None:
            ceiling = ceilings.get(task.resource, Priority.LOW)
            ceilings[task.resource] = max(ceiling, priorities[task.name])
    threshold = (
        default_inversion_threshold_ns(taskset)
        if cfg.inversion_threshold_ns is None
        else cfg.inversion_threshold_ns
    )
    manager = ResourceManager(
        taskset.resources(),
        protocol=cfg.protocol,
        inversion_threshold_ns=threshold,
        ceilings=ceilings,
    )

    rt = Runtime(
        RuntimeConfig(
            platform=_scaled_platform(cfg),
            num_cores=cfg.num_cores,
            scheduler=_resolve_policy(cfg, taskset),
            seed=cfg.seed,
        )
    )
    lock_cost = rt.cost_model.lock_cost_ns()
    stats = {i: RtTaskStats() for i in range(len(taskset.tasks))}
    register_rt_counters(rt.registry, taskset, stats, manager.stats)

    def spawn_chunk(job: Job) -> None:
        # Spawned by hand (the body of Runtime.async_) so the service keeps
        # the Task handle: re-queue on boost needs to reach into the queue.
        spec = taskset.tasks[job.task_index]
        index = job.cursor
        work_ns = job.chunks[index]
        if job.holds and index == 0:
            # The acquiring subtask pays the lock fast path.
            work_ns += lock_cost
        future = Future(f"rt:{spec.name}#{job.job_id}.{index}")

        def body() -> None:
            future.set_value(_unit())

        task = Task(
            body,
            work=FixedWork(work_ns),
            name=future.name,
            priority=job.effective_priority,
            qos=RtTag(
                absolute_deadline_ns=job.deadline_ns,
                bucket_key=spec.name,
                job_id=job.job_id,
            ),
        )
        task.failure_hook = future.set_exception
        if rt.checker is not None:
            rt.checker.register_future(future)
        job.pending_task = task
        generation = job.generation
        rt.spawn(task)

        def settle(f: Future) -> None:
            if job.generation != generation:
                return  # a re-queued (tombstoned) chunk; the respawn owns
                # the chain now
            job.pending_task = None
            finish_chunk(job)

        future.on_ready(settle)

    def requeue_on_boost(job: Job) -> None:
        # Priority inheritance/ceiling raised `job`; if its current chunk
        # is still *waiting* at the stale priority, pull it (zero its work
        # — the popped husk costs only management time, like an aborted
        # HPX-thread) and respawn the same chunk at the boosted priority.
        # A running or finished chunk needs nothing: the next spawn reads
        # effective_priority anyway.
        task = job.pending_task
        if task is None or task.state not in (
            TaskState.STAGED,
            TaskState.PENDING,
        ):
            return
        task.work = NoWork()
        job.generation += 1
        spawn_chunk(job)

    manager.on_boost = requeue_on_boost

    def finish_chunk(job: Job) -> None:
        spec = taskset.tasks[job.task_index]
        job.cursor += 1
        now = rt.simulator.now
        if job.holds and job.cursor >= job.cs_len:
            job.holds = False
            assert spec.resource is not None
            winner = manager.release(job, spec.resource, now)
            if winner is not None:
                # The grant resumes the waiter's chain from its front.
                winner.holds = True
                spawn_chunk(winner)
        if job.cursor < len(job.chunks):
            spawn_chunk(job)
        else:
            stats[job.task_index].record_completion(
                job.job_id, now - job.deadline_ns
            )

    def release(job: Job) -> None:
        spec = taskset.tasks[job.task_index]
        stats[job.task_index].released += 1
        if spec.resource is not None and job.cs_len > 0:
            if not manager.acquire(job, spec.resource, rt.simulator.now):
                # Parked: the chain starts when the holder's release
                # grants the resource (finish_chunk above).
                return
            job.holds = True
        spawn_chunk(job)

    for task_index, spec in enumerate(taskset.tasks):
        releases = spec.release_times(taskset.seed, task_index, cfg.window_ns)
        for job_id, at_ns in enumerate(releases):
            cs_chunks, rest_chunks = spec.job_chunks(
                taskset.seed, task_index, job_id
            )
            job = Job(
                job_id=job_id,
                task_index=task_index,
                name=spec.name,
                release_ns=at_ns,
                deadline_ns=at_ns + spec.relative_deadline_ns,
                priority=priorities[spec.name],
                cs_chunks=cs_chunks,
                rest_chunks=rest_chunks,
            )
            rt.simulator.schedule_at(
                at_ns, (lambda j: lambda: release(j))(job)
            )

    result = rt.run()
    return RtServiceOutcome(
        result=result, taskset=taskset, stats=stats, resources=manager.stats
    )
