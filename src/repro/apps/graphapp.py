"""Task-parallel graph traversal: the "scaling impaired" application class.

The paper motivates granularity adaptation with "classes of scaling impaired
applications, such as graph applications, that inherently employ fine-grained
tasks" (Sec. I-A).  This module provides that workload: a wavefront
(BFS-order) traversal of a synthetic layered DAG where every vertex visit is
one task whose dependencies are its in-neighbours.

Unlike the stencil, the task population is *irregular* — layer widths and
in-degrees vary — so the scheduler's load balancing (stealing) is genuinely
exercised.  Grain size is controlled by ``visits_per_task``: consecutive
vertices of a layer are batched into one task, the same
aggregation-as-granularity knob the paper applies to the stencil.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from repro.runtime.future import Future
from repro.runtime.runtime import RunResult, Runtime, RuntimeConfig
from repro.runtime.work import FixedWork


@dataclass(frozen=True)
class GraphAppConfig:
    """Synthetic layered-DAG traversal parameters."""

    layers: int = 20
    mean_width: int = 64
    edges_per_vertex: int = 3
    visit_ns: int = 2_000
    visits_per_task: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        if self.layers < 1 or self.mean_width < 1:
            raise ValueError("layers and mean_width must be >= 1")
        if self.visits_per_task < 1:
            raise ValueError("visits_per_task must be >= 1")
        if self.edges_per_vertex < 1:
            raise ValueError("edges_per_vertex must be >= 1")


def make_layered_graph(config: GraphAppConfig) -> nx.DiGraph:
    """A random layered DAG with varying layer widths.

    Vertex attribute ``layer`` gives the BFS level; every vertex in layer
    L > 0 has ``edges_per_vertex`` in-edges from layer L-1 (with repetition
    collapsed), so the wavefront structure is exact.
    """
    rng = random.Random(config.seed)
    g = nx.DiGraph()
    layers: list[list[int]] = []
    next_id = 0
    for layer in range(config.layers):
        lo = max(1, config.mean_width // 2)
        hi = config.mean_width + config.mean_width // 2
        width = rng.randint(lo, hi)
        ids = list(range(next_id, next_id + width))
        next_id += width
        for v in ids:
            g.add_node(v, layer=layer)
        if layer > 0:
            prev = layers[-1]
            for v in ids:
                for _ in range(config.edges_per_vertex):
                    g.add_edge(rng.choice(prev), v)
        layers.append(ids)
    return g


def run_graph_bfs(
    runtime_config: RuntimeConfig, config: GraphAppConfig
) -> RunResult:
    """Traverse the DAG with one task per batch of same-layer vertices.

    Each batch task depends on the batches (in the previous layer) containing
    any in-neighbour of its vertices.  The task value is the number of visits
    performed; the sum over all batches must equal the vertex count, which is
    verified before returning.
    """
    g = make_layered_graph(config)
    rt = Runtime(runtime_config)

    by_layer: dict[int, list[int]] = {}
    for v, data in g.nodes(data=True):
        by_layer.setdefault(data["layer"], []).append(v)

    batch_future: dict[int, Future] = {}  # vertex -> future of its batch
    all_batches: list[Future] = []
    for layer in sorted(by_layer):
        vertices = sorted(by_layer[layer])
        for start in range(0, len(vertices), config.visits_per_task):
            batch = vertices[start:start + config.visits_per_task]
            dep_futures: list[Future] = []
            seen: set[int] = set()
            for v in batch:
                for pred in g.predecessors(v):
                    f = batch_future[pred]
                    if id(f) not in seen:
                        seen.add(id(f))
                        dep_futures.append(f)
            count = len(batch)
            future = rt.dataflow(
                lambda *_deps, count=count: count,
                dep_futures,
                work=FixedWork(config.visit_ns * count),
                name=f"bfs@L{layer}[{start}]",
            )
            for v in batch:
                batch_future[v] = future
            all_batches.append(future)

    result = rt.run()
    visited = sum(f.value for f in all_batches)
    if visited != g.number_of_nodes():
        raise RuntimeError(
            f"visited {visited} vertices, expected {g.number_of_nodes()}"
        )
    return result
