"""Micro-benchmarks: controlled task populations.

The paper notes that "we obtained similar results from micro benchmarks but
for brevity they are not included" (Sec. I-C).  These generators provide
those simpler populations, which the tests and ablation benches use to probe
the runtime with known-shape workloads:

- :func:`run_task_ladder` — N independent equal-size tasks; the purest
  grain-size experiment (total work fixed, task count varies);
- :func:`run_forkjoin_tree` — a binary fork-join recursion, the classic
  task-parallel dependency shape;
- :func:`run_suspension_chain` — generator tasks that suspend on futures,
  exercising the suspended state and the thread-phase counters
  (``/threads/count/cumulative-phases``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.future import Future
from repro.runtime.runtime import RunResult, Runtime, RuntimeConfig
from repro.runtime.task import Task
from repro.runtime.work import FixedWork


@dataclass(frozen=True)
class MicrobenchConfig:
    """Shared knobs: total virtual work split into ``num_tasks`` pieces."""

    total_work_ns: int = 100_000_000
    num_tasks: int = 1000

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.total_work_ns < self.num_tasks:
            raise ValueError("total_work_ns must be >= num_tasks")

    @property
    def task_ns(self) -> int:
        return self.total_work_ns // self.num_tasks


def run_task_ladder(
    runtime_config: RuntimeConfig, config: MicrobenchConfig
) -> RunResult:
    """N independent FixedWork tasks; total work held constant.

    Sweeping ``num_tasks`` reproduces the fine→coarse transition with no
    dependency structure at all: every overhead observed is pure scheduling.
    """
    rt = Runtime(runtime_config)
    futures = [
        rt.async_(lambda: None, work=FixedWork(config.task_ns), name=f"rung#{i}")
        for i in range(config.num_tasks)
    ]
    result = rt.run()
    unready = sum(1 for f in futures if not f.is_ready)
    if unready:
        raise RuntimeError(f"{unready} ladder tasks never completed")
    return result


def run_forkjoin_tree(
    runtime_config: RuntimeConfig, depth: int, leaf_ns: int
) -> RunResult:
    """A binary fork-join tree of depth ``depth``.

    Leaves carry ``leaf_ns`` of work; interior joins are dataflow nodes with
    small fixed cost.  Returns after verifying the root completed with the
    expected leaf count as its value.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    rt = Runtime(runtime_config)

    def build(level: int) -> Future:
        if level == 0:
            return rt.async_(lambda: 1, work=FixedWork(leaf_ns), name="leaf")
        left = build(level - 1)
        right = build(level - 1)
        return rt.dataflow(
            lambda a, b: a + b,
            [left, right],
            work=FixedWork(max(1, leaf_ns // 20)),
            name=f"join@{level}",
        )

    root = build(depth)
    result = rt.run()
    expected = 2**depth
    if root.value != expected:
        raise RuntimeError(f"fork-join sum {root.value} != {expected}")
    return result


def run_suspension_chain(
    runtime_config: RuntimeConfig, length: int, phase_ns: int
) -> RunResult:
    """``length`` producer/consumer pairs where each consumer *suspends*.

    Each consumer is a generator task: it runs one phase, yields on its
    producer's future (entering the suspended state), and resumes for a
    final phase once the producer completes — two phases per consumer, which
    the phase counters must reflect.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    rt = Runtime(runtime_config)
    outputs: list[Future] = []
    for i in range(length):
        produced = rt.async_(
            lambda i=i: i * i, work=FixedWork(phase_ns), name=f"producer#{i}"
        )
        done = Future(f"consumer#{i}")

        def consumer(produced: Future = produced, done: Future = done):
            # Phase 1 ends here; the yield suspends until the producer is done.
            yield produced
            done.set_value(produced.value + 1)

        rt.spawn(Task(consumer, work=FixedWork(phase_ns), name=f"consumer#{i}"))
        outputs.append(done)
    result = rt.run()
    for i, f in enumerate(outputs):
        if f.value != i * i + 1:
            raise RuntimeError(f"consumer#{i} produced {f.value}")
    return result
