"""2-D wavefront: a compute-bound, pipeline-parallel granularity workload.

The stencil is bandwidth-bound with ring-neighbour dependencies; this
companion workload has the *other* classic dependency topology: a 2-D
dynamic-programming wavefront (global sequence alignment), where tile
(I, J) depends on its north and west neighbours.  Parallelism grows along
anti-diagonals, so grain (tile size) trades scheduling overhead against
pipeline fill/drain — a different granularity trade-off than the
stencil's, on which the paper's metrics and tuner work unchanged.

Payloads:

- token mode (default): tiles carry :class:`FixedWork` proportional to
  their cell count; used for sweeps;
- ``validate=True``: tiles compute a real Needleman-Wunsch score block with
  NumPy, exchanging boundary rows/columns/corners through their futures,
  and the final score must equal :func:`serial_alignment_score`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.runtime.future import Future, make_ready_future
from repro.runtime.runtime import RunResult, Runtime, RuntimeConfig
from repro.runtime.work import FixedWork

#: alignment scoring (classic small-integer scheme)
MATCH = 2
MISMATCH = -1
GAP = -1


@dataclass(frozen=True)
class WavefrontConfig:
    """An ``n x n``-cell DP table processed in ``tile x tile`` blocks."""

    n: int = 1 << 10
    tile: int = 64
    #: virtual compute cost per cell (token mode)
    cell_ns: int = 2
    validate: bool = False
    seed: int = 5

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if not 1 <= self.tile <= self.n:
            raise ValueError(f"tile={self.tile} outside 1..{self.n}")
        if self.cell_ns < 1:
            raise ValueError("cell_ns must be >= 1")

    @property
    def tiles_per_side(self) -> int:
        return math.ceil(self.n / self.tile)

    @property
    def total_tasks(self) -> int:
        return self.tiles_per_side**2


def random_sequences(config: WavefrontConfig) -> tuple[np.ndarray, np.ndarray]:
    """Two deterministic pseudo-random DNA-like sequences of length n."""
    rng = np.random.default_rng(config.seed)
    return (
        rng.integers(0, 4, size=config.n, dtype=np.int8),
        rng.integers(0, 4, size=config.n, dtype=np.int8),
    )


def _dp_rows(
    a: np.ndarray,
    b: np.ndarray,
    top_row: np.ndarray,
    left_col: np.ndarray,
    corner: int,
) -> tuple[np.ndarray, np.ndarray]:
    """DP over a block: returns (last row of H incl. corner, east column).

    ``top_row[j]`` is H[i0-1][j0+j] for j in 1..len(b) (so len == len(b));
    ``left_col[i]`` is H[i0+i][j0-1] for i in 1..len(a); ``corner`` is
    H[i0-1][j0-1].
    """
    cols = len(b)
    h_prev = np.empty(cols + 1, dtype=np.int64)
    h_prev[0] = corner
    h_prev[1:] = top_row
    east = np.empty(len(a), dtype=np.int64)
    for i in range(len(a)):
        cur = np.empty(cols + 1, dtype=np.int64)
        cur[0] = left_col[i]
        sub = np.where(b == a[i], MATCH, MISMATCH)
        # Diagonal and north moves vectorize; the west move is a sequential
        # running max along the row.
        cand = np.maximum(h_prev[:-1] + sub, h_prev[1:] + GAP)
        running = int(cur[0])
        out = cur[1:]
        for j in range(cols):
            value = cand[j]
            west = running + GAP
            running = value if value >= west else west
            out[j] = running
        east[i] = running
        h_prev = cur
    return h_prev, east


def serial_alignment_score(a: np.ndarray, b: np.ndarray) -> int:
    """Reference Needleman-Wunsch score: the whole table as one block."""
    top = np.arange(1, len(b) + 1, dtype=np.int64) * GAP
    left = np.arange(1, len(a) + 1, dtype=np.int64) * GAP
    last_row, _ = _dp_rows(a, b, top, left, corner=0)
    return int(last_row[-1])


def run_wavefront(
    runtime_config: RuntimeConfig, config: WavefrontConfig
) -> tuple[RunResult, int | None]:
    """Run the tiled wavefront; returns (run result, score or None).

    Each tile is one dataflow node depending on its north and west tiles;
    tile values are ``(south_row, east_col, south_east_corner)`` triples
    (``None`` placeholders in token mode).  The north-west corner each
    interior tile also needs is exchanged through a per-run dict keyed by
    tile index — safe because the simulated executor runs bodies
    sequentially in dependency order.
    """
    rt = Runtime(runtime_config)
    tps = config.tiles_per_side
    starts = [k * config.tile for k in range(tps)]
    bounds = [min((k + 1) * config.tile, config.n) for k in range(tps)]

    validate = config.validate
    if validate:
        a, b = random_sequences(config)
    corners: dict[tuple[int, int], int] = {}

    def north_border(tj: int) -> Future:
        if validate:
            row = np.arange(starts[tj] + 1, bounds[tj] + 1, dtype=np.int64) * GAP
            value = (row, None, bounds[tj] * GAP)
        else:
            value = (None, None, None)
        return make_ready_future(value, name=f"border-n{tj}")

    def west_border(ti: int) -> Future:
        if validate:
            col = np.arange(starts[ti] + 1, bounds[ti] + 1, dtype=np.int64) * GAP
            value = (None, col, bounds[ti] * GAP)
        else:
            value = (None, None, None)
        return make_ready_future(value, name=f"border-w{ti}")

    tiles: dict[tuple[int, int], Future] = {}
    for diag in range(2 * tps - 1):
        for ti in range(max(0, diag - tps + 1), min(diag + 1, tps)):
            tj = diag - ti
            north = tiles.get((ti - 1, tj)) or north_border(tj)
            west = tiles.get((ti, tj - 1)) or west_border(ti)
            cells = (bounds[ti] - starts[ti]) * (bounds[tj] - starts[tj])

            if validate:
                a_slice = a[starts[ti]:bounds[ti]]
                b_slice = b[starts[tj]:bounds[tj]]

                def body(north_v, west_v, a_slice=a_slice, b_slice=b_slice,
                         ti=ti, tj=tj):
                    if ti == 0 and tj == 0:
                        corner = 0
                    elif ti == 0:
                        corner = starts[tj] * GAP  # H[0][sj]
                    elif tj == 0:
                        corner = starts[ti] * GAP  # H[si][0]
                    else:
                        corner = corners[(ti - 1, tj - 1)]
                    last_row, east = _dp_rows(
                        a_slice, b_slice, north_v[0], west_v[1], corner
                    )
                    se = int(last_row[-1])
                    corners[(ti, tj)] = se
                    return (last_row[1:], east, se)
            else:
                def body(_n, _w):
                    return (None, None, None)

            tiles[(ti, tj)] = rt.dataflow(
                body,
                [north, west],
                work=FixedWork(max(1, cells * config.cell_ns)),
                name=f"tile[{ti}][{tj}]",
            )

    result = rt.run()
    score: int | None = None
    if validate:
        score = tiles[(tps - 1, tps - 1)].value[2]
    return result, score


def wavefront_run_fn(n: int, cell_ns: int = 2):
    """A ``(RuntimeConfig, grain) -> RunResult`` closure for the
    characterization driver and tuner, with the grain expressed as the tile
    side length."""

    def run(runtime_config: RuntimeConfig, tile: int) -> RunResult:
        config = WavefrontConfig(n=n, tile=min(tile, n), cell_ns=cell_ns)
        result, _ = run_wavefront(runtime_config, config)
        return result

    return run
