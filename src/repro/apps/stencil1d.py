"""HPX-Stencil: the futurized 1-D heat-diffusion benchmark (paper Sec. I-C).

"The calculation simulates the diffusion of heat across a ring by breaking
the ring up into discrete points and using the temperature of the point and
the temperatures of the neighboring points to calculate the temperature of
the next time step. [...] the data points have been split into partitions,
and each partition is represented with a future.  By changing the number of
data points in each partition [...] we can change the number of calculations
contained in each future.  In this way, we are able to control the grain
size of the problem."

The dependency structure is the paper's Fig. 2: to compute partition *j* at
time *t+1*, the three closest partitions (*j−1*, *j*, *j+1*, with ring
wraparound) from time *t* must be ready.  Each update is one
:func:`repro.runtime.future.dataflow` node carrying a
:class:`repro.runtime.work.StencilWork` descriptor, so the simulated duration
scales with the partition's point count while the *scheduling* is fully real.

Two execution payloads:

- ``validate=False`` (default, used by all sweeps): partition values are
  lightweight tokens; only the dependency graph and the cost model matter.
- ``validate=True``: partitions are NumPy arrays and each task applies the
  real heat kernel; :func:`serial_reference` recomputes the result without
  the runtime, and the two must agree to machine precision.  This pins the
  task graph to the mathematics it claims to implement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.runtime.future import Future, make_ready_future
from repro.runtime.runtime import RunResult, Runtime, RuntimeConfig
from repro.runtime.work import StencilWork


@dataclass(frozen=True)
class StencilConfig:
    """Problem definition.

    The paper computes 100 million grid points for 50 time steps (5 on the
    Xeon Phi).  Defaults here are scaled down (see DESIGN.md's substitution
    table); the *structure* — a ring of ``ceil(total/partition)`` partitions
    re-launched every step — is identical at any scale.
    """

    total_points: int = 1 << 20
    partition_points: int = 4096
    time_steps: int = 50
    #: k·dt/dx² of the explicit heat update; must stay below 0.5 for
    #: numerical stability of the scheme.
    heat_coefficient: float = 0.25
    #: compute real NumPy partitions and check against the serial reference
    validate: bool = False

    def __post_init__(self) -> None:
        if self.total_points < 1:
            raise ValueError("total_points must be >= 1")
        if not 1 <= self.partition_points <= self.total_points:
            raise ValueError(
                f"partition_points={self.partition_points} outside "
                f"1..{self.total_points}"
            )
        if self.time_steps < 0:
            raise ValueError("time_steps must be >= 0")
        if not 0.0 < self.heat_coefficient <= 0.5:
            raise ValueError("heat_coefficient must be in (0, 0.5]")

    @property
    def num_partitions(self) -> int:
        return math.ceil(self.total_points / self.partition_points)

    def partition_sizes(self) -> list[int]:
        """Point counts per partition; only the last may be smaller."""
        sizes = [self.partition_points] * (self.num_partitions - 1)
        sizes.append(self.total_points - self.partition_points * (self.num_partitions - 1))
        return sizes

    @property
    def total_tasks(self) -> int:
        """Task count of the full run: one per partition per time step."""
        return self.num_partitions * self.time_steps


def initial_condition(total_points: int) -> np.ndarray:
    """Deterministic initial temperatures (a jagged sawtooth so diffusion is
    visible and asymmetric around the ring)."""
    x = np.arange(total_points, dtype=np.float64)
    return (x % 97.0) + 0.5 * (x % 13.0)


def heat_partition(
    left: np.ndarray, mid: np.ndarray, right: np.ndarray, coefficient: float
) -> np.ndarray:
    """One explicit heat step on a partition given its ring neighbours.

    Only the last element of ``left`` and the first of ``right`` are read —
    exactly the data a distributed HPX partition would communicate.
    """
    ext = np.concatenate((left[-1:], mid, right[:1]))
    return mid + coefficient * (ext[:-2] - 2.0 * mid + ext[2:])


def serial_reference(
    u0: np.ndarray, time_steps: int, coefficient: float
) -> np.ndarray:
    """Runtime-free reference: the same scheme on the whole ring at once."""
    u = u0.copy()
    for _ in range(time_steps):
        u = u + coefficient * (np.roll(u, 1) - 2.0 * u + np.roll(u, -1))
    return u


def build_stencil_graph(
    runtime: Runtime, config: StencilConfig
) -> list[Future]:
    """Construct the full futurized dependency tree (paper Fig. 2).

    Returns the futures of the final time step's partitions.  As in
    ``1d_stencil_4``, the whole tree for every step is expressed up front;
    tasks become runnable wave by wave as their dependencies complete.
    """
    sizes = config.partition_sizes()
    np_count = config.num_partitions
    coeff = config.heat_coefficient

    current: list[Future]
    if config.validate:
        u0 = initial_condition(config.total_points)
        bounds = np.cumsum([0] + sizes)
        current = [
            make_ready_future(u0[bounds[i]:bounds[i + 1]], name=f"U[0][{i}]")
            for i in range(np_count)
        ]
    else:
        # Token payloads: the partition index stands in for the data.
        current = [
            make_ready_future(i, name=f"U[0][{i}]") for i in range(np_count)
        ]

    for step in range(1, config.time_steps + 1):
        nxt: list[Future] = []
        for i in range(np_count):
            deps = [
                current[(i - 1) % np_count],
                current[i],
                current[(i + 1) % np_count],
            ]
            if config.validate:
                body: Any = (
                    lambda left, mid, right: heat_partition(left, mid, right, coeff)
                )
            else:
                body = lambda _left, mid, _right: mid
            nxt.append(
                runtime.dataflow(
                    body,
                    deps,
                    work=StencilWork(points=sizes[i]),
                    name=f"U[{step}][{i}]",
                )
            )
        current = nxt
    return current


@dataclass(frozen=True)
class StencilOutcome:
    """A finished stencil run: the runtime result plus (optionally) data."""

    result: RunResult
    config: StencilConfig
    final_partitions: list[np.ndarray] | None

    def final_array(self) -> np.ndarray:
        if self.final_partitions is None:
            raise ValueError("run with validate=True to collect data")
        return np.concatenate(self.final_partitions)


def run_stencil(
    runtime_config: RuntimeConfig, config: StencilConfig
) -> StencilOutcome:
    """Run HPX-Stencil to completion on a fresh simulated runtime."""
    runtime = Runtime(runtime_config)
    finals = build_stencil_graph(runtime, config)
    result = runtime.run()
    partitions = None
    if config.validate:
        partitions = [f.value for f in finals]
    else:
        # Even token runs must have completed every final future.
        unready = sum(1 for f in finals if not f.is_ready)
        if unready:
            raise RuntimeError(f"{unready} final partitions never completed")
    return StencilOutcome(result=result, config=config, final_partitions=partitions)


def stencil_run_fn(
    total_points: int,
    time_steps: int,
    *,
    validate: bool = False,
    heat_coefficient: float = 0.25,
):
    """A ``(RuntimeConfig, grain) -> RunResult`` closure for the
    characterization driver (:mod:`repro.core.characterize`), with the grain
    expressed as points-per-partition, as in the paper's sweeps."""

    def run(runtime_config: RuntimeConfig, partition_points: int) -> RunResult:
        config = StencilConfig(
            total_points=total_points,
            partition_points=partition_points,
            time_steps=time_steps,
            heat_coefficient=heat_coefficient,
            validate=validate,
        )
        return run_stencil(runtime_config, config).result

    return run
