"""Benchmark applications.

- :mod:`repro.apps.stencil1d` — **HPX-Stencil** (the paper's ``1d_stencil_4``):
  futurized 1-D heat diffusion over a ring, partitioned so that grain size is
  controlled by the points-per-partition parameter (Sec. I-C);
- :mod:`repro.apps.microbench` — homogeneous task-spawn ladders and fork-join
  trees ("we obtained similar results from micro benchmarks", Sec. I-C);
- :mod:`repro.apps.graphapp` — a task-parallel BFS over synthetic graphs,
  standing in for the "scaling impaired" fine-grained graph applications the
  paper's introduction motivates;
- :mod:`repro.apps.wavefront2d` — a tiled 2-D dynamic-programming wavefront
  (sequence alignment), the compute-bound, pipeline-parallel counterpoint to
  the stencil's bandwidth-bound ring.
"""

from repro.apps.stencil1d import (
    StencilConfig,
    StencilOutcome,
    build_stencil_graph,
    heat_partition,
    run_stencil,
    serial_reference,
)
from repro.apps.microbench import (
    MicrobenchConfig,
    run_forkjoin_tree,
    run_task_ladder,
    run_suspension_chain,
)
from repro.apps.graphapp import GraphAppConfig, make_layered_graph, run_graph_bfs
from repro.apps.wavefront2d import (
    WavefrontConfig,
    run_wavefront,
    serial_alignment_score,
    wavefront_run_fn,
)

__all__ = [
    "StencilConfig",
    "StencilOutcome",
    "build_stencil_graph",
    "heat_partition",
    "run_stencil",
    "serial_reference",
    "MicrobenchConfig",
    "run_task_ladder",
    "run_forkjoin_tree",
    "run_suspension_chain",
    "GraphAppConfig",
    "make_layered_graph",
    "run_graph_bfs",
    "WavefrontConfig",
    "run_wavefront",
    "serial_alignment_score",
    "wavefront_run_fn",
]
