"""Distributed HPX-Stencil: the 1-D heat ring across localities.

The single-node benchmark (:mod:`repro.apps.stencil1d`) splits the ring
into partitions and futurizes every per-step update.  Here the partitions
are additionally **block-decomposed** across localities: locality *k* owns
a contiguous block of partitions, so with L > 1 localities the ring has
exactly L block boundaries and each time step moves 2·L halos across the
network (one in each direction per boundary).

A halo is what a real distributed HPX stencil communicates: the single edge
point of the neighbouring partition (8 bytes of payload under an HPX parcel
envelope).  Each boundary dependency is an explicit
:meth:`repro.dist.DistRuntime.remote_value` proxy whose sender projects the
edge out of the partition, resolves the *consuming* partition's AGAS gid
(first send per neighbour misses the cache, later steps hit), and ships the
parcel; interior dependencies stay plain local futures.

As on a single node, ``validate=True`` runs the real NumPy kernel and must
match :func:`repro.apps.stencil1d.serial_reference` to machine precision —
now also proving the halo plumbing moves the right bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.apps.stencil1d import initial_condition
from repro.dist.runtime import DistConfig, DistRunResult, DistRuntime
from repro.runtime.future import Future
from repro.runtime.work import StencilWork

#: payload bytes of one halo parcel: a single float64 edge point
HALO_BYTES = 8


@dataclass(frozen=True)
class DistStencilConfig:
    """Problem definition; the locality count lives in :class:`DistConfig`."""

    total_points: int = 1 << 20
    partition_points: int = 4096
    time_steps: int = 10
    heat_coefficient: float = 0.25
    #: compute real NumPy partitions and check against the serial reference
    validate: bool = False
    #: partition → locality mapping: ``"block"`` (contiguous, 2·L halos per
    #: step regardless of grain) or ``"cyclic"`` (round-robin: *every*
    #: adjacent pair of partitions crosses a locality boundary, so the
    #: cross-network halo count scales with the partition count — the
    #: communication-heavy regime figR uses to expose per-parcel fault cost)
    decomposition: str = "block"

    def __post_init__(self) -> None:
        if self.decomposition not in ("block", "cyclic"):
            raise ValueError(
                f"decomposition must be 'block' or 'cyclic', "
                f"got {self.decomposition!r}"
            )
        if self.total_points < 1:
            raise ValueError("total_points must be >= 1")
        if not 1 <= self.partition_points <= self.total_points:
            raise ValueError(
                f"partition_points={self.partition_points} outside "
                f"1..{self.total_points}"
            )
        if self.time_steps < 0:
            raise ValueError("time_steps must be >= 0")
        if not 0.0 < self.heat_coefficient <= 0.5:
            raise ValueError("heat_coefficient must be in (0, 0.5]")

    @property
    def num_partitions(self) -> int:
        return math.ceil(self.total_points / self.partition_points)

    def partition_sizes(self) -> list[int]:
        """Point counts per partition; only the last may be smaller."""
        sizes = [self.partition_points] * (self.num_partitions - 1)
        sizes.append(
            self.total_points - self.partition_points * (self.num_partitions - 1)
        )
        return sizes

    def owners(self, num_localities: int) -> list[int]:
        """Partition index → owning locality, per ``decomposition``.

        ``"block"``: contiguous blocks, sized as evenly as possible (the
        first ``num_partitions % L`` localities get one extra partition).
        ``"cyclic"``: partition ``i`` lives on locality ``i % L``.  Both
        require at least one partition per locality.
        """
        np_count = self.num_partitions
        if np_count < num_localities:
            raise ValueError(
                f"{np_count} partitions cannot cover {num_localities} "
                "localities; coarsest usable grain is "
                f"total_points/num_localities"
            )
        if self.decomposition == "cyclic":
            return [i % num_localities for i in range(np_count)]
        base, extra = divmod(np_count, num_localities)
        owners: list[int] = []
        for loc in range(num_localities):
            owners.extend([loc] * (base + (1 if loc < extra else 0)))
        return owners

    def cross_halos_per_step(self, num_localities: int) -> int:
        """Cross-locality halo parcels per time step.

        Block decomposition crosses the network only at its 2·L block
        boundaries; cyclic decomposition crosses at (nearly) every
        partition boundary, so its count scales with the partition count.
        Computed exactly: 2 parcels per adjacent-partition pair with
        distinct owners (one halo in each direction).
        """
        if num_localities == 1:
            return 0
        owners = self.owners(num_localities)
        n = len(owners)
        return 2 * sum(
            1 for i in range(n) if owners[i] != owners[(i + 1) % n]
        )


def heat_partition_halo(
    left_point: float, mid: np.ndarray, right_point: float, coefficient: float
) -> np.ndarray:
    """One explicit heat step given the two neighbouring *edge points*.

    Same mathematics as :func:`repro.apps.stencil1d.heat_partition`, with
    the neighbour data already projected to the halo a distributed
    partition would receive.
    """
    ext = np.concatenate(([left_point], mid, [right_point]))
    return mid + coefficient * (ext[:-2] - 2.0 * mid + ext[2:])


def _left_edge(value: Any) -> Any:
    """The edge a partition exposes to its *left* neighbour (first point)."""
    return value[0] if isinstance(value, np.ndarray) else value


def _right_edge(value: Any) -> Any:
    """The edge a partition exposes to its *right* neighbour (last point)."""
    return value[-1] if isinstance(value, np.ndarray) else value


def build_dist_stencil_graph(
    dist: DistRuntime, config: DistStencilConfig
) -> list[Future]:
    """Construct the distributed dependency tree; returns the final step's
    partition futures (each owned by its partition's home locality)."""
    sizes = config.partition_sizes()
    np_count = config.num_partitions
    coeff = config.heat_coefficient
    owners = config.owners(dist.num_localities)

    # Long-lived AGAS identities: one gid per partition, homed where the
    # partition lives.  Senders resolve the *consumer's* gid per halo send.
    gids = [
        dist.register_gid(owners[i], name=f"partition[{i}]")
        for i in range(np_count)
    ]

    current: list[Future]
    if config.validate:
        u0 = initial_condition(config.total_points)
        bounds = np.cumsum([0] + sizes)
        current = [
            dist.make_ready_future(
                u0[bounds[i]:bounds[i + 1]],
                locality=owners[i],
                name=f"U[0][{i}]",
            )
            for i in range(np_count)
        ]
    else:
        # Token payloads: the partition index stands in for the data.
        current = [
            dist.make_ready_future(i, locality=owners[i], name=f"U[0][{i}]")
            for i in range(np_count)
        ]

    def halo(source: Future, source_ix: int, consumer_ix: int, edge) -> Future:
        """The dependency partition ``consumer_ix`` takes on ``source``."""
        if owners[source_ix] == owners[consumer_ix]:
            return source
        return dist.remote_value(
            source,
            owners[consumer_ix],
            payload_bytes=HALO_BYTES,
            transform=edge,
            gid=gids[consumer_ix],
            name=f"{source.name}->loc{owners[consumer_ix]}",
            # Under recovery="reexecute", a lost halo re-runs the producing
            # partition update before re-sending — so recovery cost scales
            # with the grain, the effect figR measures.
            recovery_work=StencilWork(points=sizes[source_ix]),
        )

    if config.validate:
        def make_body(i: int):
            def body(left: Any, mid: np.ndarray, right: Any) -> np.ndarray:
                return heat_partition_halo(
                    _right_edge(left), mid, _left_edge(right), coeff
                )
            return body
    else:
        def make_body(i: int):
            return lambda _left, mid, _right: mid

    for step in range(1, config.time_steps + 1):
        nxt: list[Future] = []
        for i in range(np_count):
            left_ix = (i - 1) % np_count
            right_ix = (i + 1) % np_count
            deps = [
                halo(current[left_ix], left_ix, i, _right_edge),
                current[i],
                halo(current[right_ix], right_ix, i, _left_edge),
            ]
            nxt.append(
                dist.dataflow(
                    make_body(i),
                    deps,
                    locality=owners[i],
                    work=StencilWork(points=sizes[i]),
                    name=f"U[{step}][{i}]",
                )
            )
        current = nxt
    return current


@dataclass(frozen=True)
class DistStencilOutcome:
    """A finished distributed run plus (optionally) the computed data."""

    result: DistRunResult
    config: DistStencilConfig
    final_partitions: list[np.ndarray] | None

    def final_array(self) -> np.ndarray:
        if self.final_partitions is None:
            raise ValueError("run with validate=True to collect data")
        return np.concatenate(self.final_partitions)


def run_dist_stencil(
    dist_config: DistConfig, config: DistStencilConfig
) -> DistStencilOutcome:
    """Run the distributed stencil on a fresh :class:`DistRuntime`."""
    dist = DistRuntime(dist_config)
    finals = build_dist_stencil_graph(dist, config)
    # wait() re-raises any error a final partition carries (ParcelLostError
    # from an exhausted halo, LocalityCrashError for a dead producer, the
    # original exception from a failing task body) instead of hanging or
    # silently returning partial results.
    result = dist.wait(finals)
    partitions = None
    if config.validate:
        partitions = [f.value for f in finals]
    return DistStencilOutcome(
        result=result, config=config, final_partitions=partitions
    )
