"""Dependence-pattern generators: the Task Bench task grid.

A workload is a grid of ``width x steps`` tasks.  Task ``(step, i)`` may
depend only on tasks of step ``step - 1`` — the Task Bench construction —
so every generated graph is acyclic **by construction**; the property tests
verify the invariant over the whole catalogue anyway.

Each :class:`Pattern` is a pure function ``(width, step, index, seed) ->
parent columns``: no state, no RNG objects.  ``random_nearest`` draws its
neighbours through the SplitMix64 streams of :mod:`repro.faults.plan`, so
the same seed reproduces the same edge set in any process, independent of
``PYTHONHASHSEED`` or call order.

The catalogue (densities are the maximum in-degree ``d``):

=====================  ===  ==============================================
pattern                 d   structure
=====================  ===  ==============================================
``trivial``             0   no edges; width x steps independent tasks
``serial_chain``        1   column ``i`` is an isolated chain through time
``stencil_1d``          3   left/self/right neighbours, clipped at edges
``stencil_1d_periodic`` 3   left/self/right on a ring
``tree``                2   alternating binary fan-in / fan-out sweeps
``fft``                 2   butterfly: partner distance ``2^(s mod log2 w)``
``random_nearest``      3   self + 2 seeded draws within distance 3
``spread``              3   3 parents spread across the width, shifting
                            one column per step
=====================  ===  ==============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.faults.plan import stream_u64
from repro.taskbench.kernels import ComputeKernel, KernelSpec

#: ``random_nearest``: how far a drawn neighbour may sit from the task
NEAREST_RADIUS = 3
#: ``random_nearest``: seeded draws per task (on top of the self edge)
NEAREST_DRAWS = 2
#: ``spread``: parents per task
SPREAD_DEGREE = 3
#: role tag keeping taskbench draws disjoint from the fault injector's
_ROLE_NEAREST = 0x7B


@dataclass(frozen=True)
class Pattern:
    """One dependence pattern; see the module docstring's catalogue."""

    name: str
    description: str
    #: maximum in-degree a task of this pattern can have
    max_deps: int
    #: ``(width, step, index, seed) -> sorted unique parent columns``;
    #: only consulted for ``step >= 1``
    deps_fn: Callable[[int, int, int, int], tuple[int, ...]]
    #: butterfly-style patterns need a power-of-two width
    requires_pow2_width: bool = False

    def validate(self, width: int) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if self.requires_pow2_width and width & (width - 1):
            raise ValueError(
                f"pattern {self.name!r} needs a power-of-two width, "
                f"got {width}"
            )

    def dependencies(
        self, width: int, step: int, index: int, *, seed: int = 0
    ) -> tuple[int, ...]:
        """Parent columns (in step ``step - 1``) of task ``(step, index)``."""
        if not 0 <= index < width:
            raise ValueError(f"index {index} outside width {width}")
        if step <= 0:
            return ()
        return self.deps_fn(width, step, index, seed)


# -- the catalogue ------------------------------------------------------------------


def _trivial(width: int, step: int, index: int, seed: int) -> tuple[int, ...]:
    return ()


def _serial_chain(width: int, step: int, index: int, seed: int) -> tuple[int, ...]:
    return (index,)


def _stencil_1d(width: int, step: int, index: int, seed: int) -> tuple[int, ...]:
    return tuple(
        sorted({max(0, index - 1), index, min(width - 1, index + 1)})
    )


def _stencil_1d_periodic(
    width: int, step: int, index: int, seed: int
) -> tuple[int, ...]:
    return tuple(
        sorted({(index - 1) % width, index, (index + 1) % width})
    )


def _levels(width: int) -> int:
    """Sweep length of the tree/fft phases: ``ceil(log2(width))``, >= 1."""
    return max(1, math.ceil(math.log2(width))) if width > 1 else 1


def _tree(width: int, step: int, index: int, seed: int) -> tuple[int, ...]:
    """Alternating binary fan-in and fan-out sweeps.

    The first ``levels`` steps reduce: at distance ``d = 2^k`` the surviving
    columns (``index % 2d == 0``) combine with their ``index + d`` partner,
    every other column just carries itself forward.  The next ``levels``
    steps broadcast the same shape in reverse.  Density alternates between
    1 and 2 — the sparsest genuinely-coupled pattern in the catalogue.
    """
    levels = _levels(width)
    phase = (step - 1) % (2 * levels)
    if phase < levels:  # fan-in, distance doubling
        d = 1 << phase
        if index % (2 * d) == 0 and index + d < width:
            return (index, index + d)
        return (index,)
    # fan-out, distance halving: the mirror image of the fan-in step
    d = 1 << (2 * levels - 1 - phase)
    if index % (2 * d) == d:
        return (index - d, index)
    return (index,)


def _fft(width: int, step: int, index: int, seed: int) -> tuple[int, ...]:
    levels = _levels(width)
    d = 1 << ((step - 1) % levels)
    partner = index ^ d
    if partner >= width:  # width == 1
        return (index,)
    return tuple(sorted({index, partner}))


def _random_nearest(
    width: int, step: int, index: int, seed: int
) -> tuple[int, ...]:
    deps = {index}
    for draw in range(NEAREST_DRAWS):
        u = stream_u64(seed, _ROLE_NEAREST, step, index, draw)
        offset = (u % (2 * NEAREST_RADIUS + 1)) - NEAREST_RADIUS
        deps.add((index + offset) % width)
    return tuple(sorted(deps))


def _spread(width: int, step: int, index: int, seed: int) -> tuple[int, ...]:
    k = min(SPREAD_DEGREE, width)
    stride = max(1, width // k)
    return tuple(
        sorted({(index + j * stride + (step - 1)) % width for j in range(k)})
    )


PATTERNS: dict[str, Pattern] = {
    p.name: p
    for p in (
        Pattern("trivial", "no dependencies at all", 0, _trivial),
        Pattern("serial_chain", "independent per-column chains", 1,
                _serial_chain),
        Pattern("stencil_1d", "left/self/right, clipped at the boundary", 3,
                _stencil_1d),
        Pattern("stencil_1d_periodic", "left/self/right on a ring", 3,
                _stencil_1d_periodic),
        Pattern("tree", "alternating binary fan-in/fan-out sweeps", 2, _tree),
        Pattern("fft", "butterfly with doubling partner distance", 2, _fft,
                requires_pow2_width=True),
        Pattern("random_nearest",
                "self + 2 seeded draws within distance "
                f"{NEAREST_RADIUS}", NEAREST_DRAWS + 1, _random_nearest),
        Pattern("spread", f"{SPREAD_DEGREE} parents spread across the "
                "width, shifting each step", SPREAD_DEGREE, _spread),
    )
}


def get_pattern(name: str) -> Pattern:
    try:
        return PATTERNS[name]
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; expected one of {sorted(PATTERNS)}"
        ) from None


# -- the workload spec ---------------------------------------------------------------


@dataclass(frozen=True)
class TaskBenchSpec:
    """One parameterized task-graph workload: pattern x grid x kernel.

    ``seed`` feeds both the pattern (``random_nearest`` edges) and the
    kernel (``imbalanced`` per-task jitter); it is *distinct* from the
    runtime seed, so the same workload can be replayed on differently
    seeded runtimes.
    """

    pattern: str | Pattern = "stencil_1d"
    width: int = 64
    steps: int = 16
    kernel: KernelSpec = field(default_factory=lambda: ComputeKernel(2_000))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        self.resolve_pattern().validate(self.width)

    def resolve_pattern(self) -> Pattern:
        if isinstance(self.pattern, Pattern):
            return self.pattern
        return get_pattern(self.pattern)

    @property
    def pattern_name(self) -> str:
        return self.resolve_pattern().name

    @property
    def total_tasks(self) -> int:
        return self.width * self.steps

    def dependencies(self, step: int, index: int) -> tuple[int, ...]:
        """Parent columns (at ``step - 1``) of task ``(step, index)``."""
        return self.resolve_pattern().dependencies(
            self.width, step, index, seed=self.seed
        )

    def edges(self) -> Iterator[tuple[tuple[int, int], tuple[int, int]]]:
        """Every ``((step - 1, parent), (step, child))`` edge of the graph."""
        for step in range(1, self.steps):
            for index in range(self.width):
                for parent in self.dependencies(step, index):
                    yield ((step - 1, parent), (step, index))

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def with_grain(self, grain: int) -> "TaskBenchSpec":
        """The same workload at a different task granularity."""
        from dataclasses import replace

        return replace(self, kernel=self.kernel.with_grain(grain))
