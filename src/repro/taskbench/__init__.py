"""repro.taskbench: parameterized task-graph workloads and METG.

The paper characterizes grain size on one application (HPX-Stencil).  Task
Bench (Slaughter et al., arXiv:1908.05790 — PAPERS.md) decouples the
*dependence pattern* from the *runtime under test*: a workload is a
``(width, steps)`` grid of tasks plus a pattern function naming which
previous-step columns feed each task, and a single scalar — **METG(50%)**,
the minimum effective task granularity at which the runtime still delivers
50 % efficiency — summarizes the runtime's overhead wall.  Wu et al.
(arXiv:2207.12127) apply exactly that harness to HPX, making METG the
canonical companion metric to this paper's idle-rate threshold.

This package is that harness for the repro runtimes:

- :mod:`repro.taskbench.patterns` — declarative dependence patterns
  (``trivial`` ... ``fft`` ... ``random_nearest``) and the
  :class:`TaskBenchSpec` tying a pattern to a kernel;
- :mod:`repro.taskbench.kernels` — per-task work specs (compute-bound,
  memory-bound, seeded-imbalanced) lowered through the existing
  :mod:`repro.sim.costmodel` descriptors;
- :mod:`repro.taskbench.driver` — one mapper lowering any spec onto the
  single-node :class:`repro.runtime.Runtime`, the real-thread
  :class:`repro.runtime.ThreadRuntime`, and the multi-locality
  :class:`repro.dist.DistRuntime` (block/cyclic placement, cross-locality
  edges become parcels);
- :mod:`repro.taskbench.metg` — efficiency-vs-grain sweeps and the
  METG bisection, where efficiency is exactly ``1 - idle-rate`` (Eq. 1), so
  METG(50%) is the grain at which the paper's headline metric crosses 50 %.

The ``figT`` experiment (:mod:`repro.experiments.figT_taskbench_metg`)
builds the cross-pattern characterization on top; ``docs/taskbench.md`` is
the narrative documentation.
"""

from repro.taskbench.driver import (
    run_taskbench,
    run_taskbench_dist,
    run_taskbench_threads,
)
from repro.taskbench.kernels import (
    ComputeKernel,
    ImbalancedKernel,
    KernelSpec,
    MemoryKernel,
)
from repro.taskbench.metg import (
    EfficiencyPoint,
    MetgResult,
    efficiency_curve,
    metg,
)
from repro.taskbench.patterns import (
    PATTERNS,
    Pattern,
    TaskBenchSpec,
    get_pattern,
)

__all__ = [
    "ComputeKernel",
    "EfficiencyPoint",
    "ImbalancedKernel",
    "KernelSpec",
    "MemoryKernel",
    "MetgResult",
    "PATTERNS",
    "Pattern",
    "TaskBenchSpec",
    "efficiency_curve",
    "get_pattern",
    "metg",
    "run_taskbench",
    "run_taskbench_dist",
    "run_taskbench_threads",
]
