"""Lowering a :class:`TaskBenchSpec` onto every runtime this repo has.

One mapper, three substrates:

- :func:`run_taskbench` — the simulated single-node
  :class:`repro.runtime.Runtime`; returns the ordinary :class:`RunResult`,
  so every run yields the paper's counters (idle-rate, t_d, t_o,
  pending-queue accesses) for free;
- :func:`run_taskbench_threads` — the real-OS-thread
  :class:`repro.runtime.ThreadRuntime` (correctness only, never
  measurement: the GIL distorts exactly what METG measures);
- :func:`run_taskbench_dist` — the multi-locality
  :class:`repro.dist.DistRuntime` with ``"block"`` or ``"cyclic"`` column
  placement; any edge whose parent lives on another locality is
  transparently shipped as a parcel, so ``/parcels{locality#N/total}``
  counters come along for free.

Every task computes the literal value 1; after the run the driver verifies
all ``width x steps`` futures are ready and sum to the task count — a
lowering or wiring bug cannot silently return a plausible measurement.

:func:`taskbench_run_fn` adapts a spec to the characterization protocol
``(RuntimeConfig, grain) -> RunResult`` of :func:`repro.core.characterize`,
so the paper's whole methodology (COV statistics, selection rules, the
idle-rate threshold) applies to any Task Bench pattern unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dist.runtime import DistConfig, DistRunResult, DistRuntime
from repro.runtime.future import Future
from repro.runtime.runtime import RunResult, Runtime, RuntimeConfig
from repro.runtime.thread_executor import ThreadRuntime
from repro.taskbench.patterns import TaskBenchSpec

#: column -> locality maps for the distributed lowering
PLACEMENTS = ("block", "cyclic")


def _unit() -> int:
    return 1


def _unit_of(*_values: int) -> int:
    return 1


def make_placement(
    placement: str, width: int, num_localities: int
) -> Callable[[int], int]:
    """Column ``i`` -> owning locality.

    ``"block"``: contiguous column blocks (nearest-neighbour patterns cross
    the network only at block boundaries); ``"cyclic"``: round-robin (every
    neighbour edge crosses — the communication-heavy regime).
    """
    if placement not in PLACEMENTS:
        raise ValueError(
            f"placement must be one of {PLACEMENTS}, got {placement!r}"
        )
    if num_localities > width:
        raise ValueError(
            f"{num_localities} localities cannot all own one of "
            f"{width} columns"
        )
    if placement == "cyclic":
        return lambda i: i % num_localities
    return lambda i: i * num_localities // width


def build_taskbench_graph(
    rt: Runtime | ThreadRuntime | DistRuntime,
    spec: TaskBenchSpec,
    *,
    placement: Callable[[int], int] | None = None,
) -> list[Future]:
    """Futurize the whole grid on ``rt``; returns all ``width x steps``
    futures in ``(step, index)`` order.

    ``placement`` (distributed runtimes only) maps a column to its home
    locality; edges between differently-placed columns become parcels via
    the runtime's own dependency localization.
    """
    pattern = spec.resolve_pattern()
    kernel = spec.kernel
    futures: list[Future] = []
    prev: list[Future] = []
    for step in range(spec.steps):
        cur: list[Future] = []
        for i in range(spec.width):
            kwargs = {} if placement is None else {"locality": placement(i)}
            work = kernel.work_for(step, i, spec.seed)
            name = f"{pattern.name}[{step}][{i}]"
            deps = spec.dependencies(step, i)
            if deps:
                f = rt.dataflow(
                    _unit_of,
                    [prev[j] for j in deps],
                    work=work,
                    name=name,
                    **kwargs,
                )
            else:
                f = rt.async_(_unit, work=work, name=name, **kwargs)
            cur.append(f)
        futures.extend(cur)
        prev = cur
    return futures


def _verify(futures: Sequence[Future], spec: TaskBenchSpec) -> None:
    unready = sum(1 for f in futures if not f.is_ready)
    if unready:
        raise RuntimeError(
            f"{unready} of {spec.total_tasks} {spec.pattern_name} tasks "
            "never completed"
        )
    total = sum(f.value for f in futures)
    if total != spec.total_tasks:
        raise RuntimeError(
            f"{spec.pattern_name} grid computed {total}, "
            f"expected {spec.total_tasks}"
        )


def run_taskbench(config: RuntimeConfig, spec: TaskBenchSpec) -> RunResult:
    """Run ``spec`` on a fresh simulated :class:`Runtime`."""
    rt = Runtime(config)
    futures = build_taskbench_graph(rt, spec)
    result = rt.run()
    _verify(futures, spec)
    return result


def taskbench_run_fn(
    spec: TaskBenchSpec,
) -> Callable[[RuntimeConfig, int], RunResult]:
    """Adapt ``spec`` to the ``(RuntimeConfig, grain) -> RunResult``
    workload protocol of :func:`repro.core.characterize.characterize`,
    with "grain" meaning the kernel's granularity knob."""

    def run_fn(config: RuntimeConfig, grain: int) -> RunResult:
        return run_taskbench(config, spec.with_grain(grain))

    return run_fn


def run_taskbench_threads(
    spec: TaskBenchSpec,
    *,
    num_workers: int = 4,
    scheduler: str = "priority-local",
    timeout_s: float = 120.0,
) -> int:
    """Run ``spec`` on real OS threads; returns the task count executed.

    Proof of portability, not a measurement: the thread executor ignores
    work descriptors and the GIL serializes the (trivial) task bodies.
    """
    with ThreadRuntime(num_workers=num_workers, scheduler=scheduler) as rt:
        futures = build_taskbench_graph(rt, spec)
        rt.wait_idle(timeout_s=timeout_s)
    _verify(futures, spec)
    return len(futures)


def run_taskbench_dist(
    dist_config: DistConfig,
    spec: TaskBenchSpec,
    *,
    placement: str = "block",
) -> DistRunResult:
    """Run ``spec`` on a fresh :class:`DistRuntime`.

    Columns are placed per ``placement``; every cross-locality edge ships
    the parent's value as a parcel, so the result's ``/parcels`` counters
    measure the pattern's communication density directly.
    """
    dist = DistRuntime(dist_config)
    place = make_placement(
        placement, spec.width, dist_config.num_localities
    )
    futures = build_taskbench_graph(dist, spec, placement=place)
    result = dist.wait(futures)
    _verify(futures, spec)
    return result
