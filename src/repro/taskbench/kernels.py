"""Per-task work specs for the task grid.

A kernel answers one question: what :class:`repro.runtime.work.WorkDescriptor`
does task ``(step, index)`` carry?  Everything downstream — cache residency,
bandwidth contention, per-platform calibration — is the *existing* cost
model's business (:mod:`repro.sim.costmodel`), so every platform from
:mod:`repro.sim.platforms` applies to Task Bench workloads unchanged.

Three kinds:

- :class:`ComputeKernel` — every task is ``task_ns`` of pure compute
  (:class:`~repro.runtime.work.FixedWork`); the granularity knob METG
  sweeps;
- :class:`MemoryKernel` — every task streams a ``points``-sized stencil
  partition (:class:`~repro.runtime.work.StencilWork`), inheriting the
  cache-capacity and bandwidth-saturation mechanisms;
- :class:`ImbalancedKernel` — compute-bound with a seeded multiplicative
  skew: task ``(step, index)`` runs ``task_ns * (1 + imbalance * u)`` with
  ``u`` a SplitMix64 draw in ``[0, 1)`` keyed by ``(seed, step, index)`` —
  reproducible imbalance, the load-balancing stressor.

``with_grain(grain)`` rescales a kernel's granularity (ns of compute, or
points for the memory kernel): the single knob the METG sweep turns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.faults.plan import stream_unit
from repro.runtime.work import FixedWork, StencilWork, WorkDescriptor

#: role tag keeping kernel-jitter draws disjoint from pattern/fault draws
_ROLE_IMBALANCE = 0x7C


class KernelSpec:
    """Base type; subclasses are frozen dataclasses."""

    __slots__ = ()

    def work_for(self, step: int, index: int, seed: int) -> WorkDescriptor:
        raise NotImplementedError

    def with_grain(self, grain: int) -> "KernelSpec":
        """The same kernel at a different nominal granularity."""
        raise NotImplementedError

    def grain(self) -> int:
        """The nominal granularity knob (ns of compute, or grid points)."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class ComputeKernel(KernelSpec):
    """Every task is ``task_ns`` of pure (jitter-free-nominal) compute."""

    task_ns: int = 2_000

    def __post_init__(self) -> None:
        if self.task_ns < 1:
            raise ValueError(f"task_ns must be >= 1, got {self.task_ns}")

    def work_for(self, step: int, index: int, seed: int) -> WorkDescriptor:
        return FixedWork(self.task_ns)

    def with_grain(self, grain: int) -> "ComputeKernel":
        return replace(self, task_ns=grain)

    def grain(self) -> int:
        return self.task_ns


@dataclass(frozen=True, slots=True)
class MemoryKernel(KernelSpec):
    """Every task updates a ``points``-sized stencil partition.

    Duration goes through :meth:`repro.sim.costmodel.CostModel.compute_ns`:
    it bends with cache residency and stretches under bandwidth
    oversubscription, exactly as the paper's stencil tasks do.
    """

    points: int = 4_096

    def __post_init__(self) -> None:
        if self.points < 1:
            raise ValueError(f"points must be >= 1, got {self.points}")

    def work_for(self, step: int, index: int, seed: int) -> WorkDescriptor:
        return StencilWork(points=self.points)

    def with_grain(self, grain: int) -> "MemoryKernel":
        return replace(self, points=grain)

    def grain(self) -> int:
        return self.points


@dataclass(frozen=True, slots=True)
class ImbalancedKernel(KernelSpec):
    """Compute-bound with seeded per-task skew in ``[1, 1 + imbalance)``.

    The mean task is ``task_ns * (1 + imbalance / 2)``; the skew is a pure
    function of ``(seed, step, index)``, so the imbalance *shape* is part
    of the workload and survives replays on any runtime or platform.
    """

    task_ns: int = 2_000
    imbalance: float = 1.0

    def __post_init__(self) -> None:
        if self.task_ns < 1:
            raise ValueError(f"task_ns must be >= 1, got {self.task_ns}")
        if self.imbalance < 0.0:
            raise ValueError(
                f"imbalance must be >= 0, got {self.imbalance}"
            )

    def work_for(self, step: int, index: int, seed: int) -> WorkDescriptor:
        u = stream_unit(seed, _ROLE_IMBALANCE, step, index)
        return FixedWork(max(1, int(self.task_ns * (1.0 + self.imbalance * u))))

    def with_grain(self, grain: int) -> "ImbalancedKernel":
        return replace(self, task_ns=grain)

    def grain(self) -> int:
        return self.task_ns
