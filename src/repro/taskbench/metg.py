"""METG: minimum effective task granularity (Task Bench's scalar).

For a given workload shape and machine, sweep the kernel granularity and
measure **efficiency** at each grain.  Efficiency here is exactly
``1 - idle-rate`` — the complement of the paper's Eq. 1: the fraction of the
core-time budget spent inside task bodies.  That identification is the whole
point of the subsystem: METG(50%) is the grain at which the paper's
headline counter crosses 50 %, so the idle-rate selection rule
(:func:`repro.core.selection.select_by_idle_rate`, threshold 30 %) *must*
land inside the METG-acceptable region — a claim figT checks by machine.

``metg()`` runs a geometric sweep, then bisects (in log-grain space)
between the coarsest failing and finest passing grain until the bracket is
within ``rel_tol``.  Everything is seeded and the simulator deterministic,
so the returned :class:`MetgResult` is bit-reproducible per seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dist.runtime import DistConfig
from repro.runtime.runtime import RuntimeConfig
from repro.taskbench.driver import run_taskbench, run_taskbench_dist
from repro.taskbench.patterns import TaskBenchSpec


def default_grain_sweep(
    finest: int = 200, coarsest: int = 100_000, per_decade: int = 3
) -> list[int]:
    """Geometric grain grid (ns or points, per the kernel) for the sweep."""
    if not 1 <= finest <= coarsest:
        raise ValueError(f"need 1 <= finest <= coarsest, got {finest}..{coarsest}")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    if finest == coarsest:
        return [finest]
    ratio = 10.0 ** (1.0 / per_decade)
    sweep: list[int] = []
    value = float(finest)
    while value < coarsest:
        grain = int(round(value))
        if not sweep or grain > sweep[-1]:
            sweep.append(grain)
        value *= ratio
    if sweep[-1] != coarsest:
        sweep.append(coarsest)
    return sweep


@dataclass(frozen=True)
class EfficiencyPoint:
    """One measured (grain, efficiency) sample."""

    grain: int
    efficiency: float
    idle_rate: float
    execution_time_ns: int
    tasks_executed: int


@dataclass(frozen=True)
class MetgResult:
    """The efficiency-vs-grain characterization plus its METG scalar."""

    pattern_name: str
    platform_name: str
    num_cores: int
    num_localities: int
    target: float
    #: finest *measured* grain meeting the target; None if no grain did
    grain: int | None
    #: log-interpolated crossing between the bracketing measurements —
    #: continuous, so cross-pattern orderings are not quantized to the grid
    interpolated_grain: float | None
    #: every measured sample (sweep + bisection), sorted by grain
    curve: tuple[EfficiencyPoint, ...]

    @property
    def achieved(self) -> bool:
        return self.grain is not None

    def efficiency_at(self, grain: int) -> float:
        """The measured efficiency at ``grain`` (must be a swept grain)."""
        for p in self.curve:
            if p.grain == grain:
                return p.efficiency
        raise KeyError(
            f"grain {grain} was not measured for {self.pattern_name}"
        )

    def summary(self) -> str:
        where = (
            f"{self.num_localities} localities x " if self.num_localities > 1
            else ""
        )
        metg = (
            f"{self.interpolated_grain:.0f}" if self.interpolated_grain
            is not None else "not reached"
        )
        return (
            f"METG({self.target:.0%})[{self.pattern_name} @ {where}"
            f"{self.num_cores} cores {self.platform_name}] = {metg}"
        )


def measure_efficiency(
    spec: TaskBenchSpec,
    grain: int,
    *,
    platform: str = "haswell",
    num_cores: int = 8,
    scheduler: str = "priority-local",
    seed: int = 0,
    num_localities: int = 1,
) -> EfficiencyPoint:
    """Run one grain point and read efficiency = 1 - idle-rate off it."""
    sized = spec.with_grain(grain)
    if num_localities > 1:
        result = run_taskbench_dist(
            DistConfig(
                num_localities=num_localities,
                platform=platform,
                cores_per_locality=num_cores,
                scheduler=scheduler,
                seed=seed,
            ),
            sized,
        )
    else:
        result = run_taskbench(
            RuntimeConfig(
                platform=platform,
                num_cores=num_cores,
                scheduler=scheduler,
                seed=seed,
            ),
            sized,
        )
    idle = result.idle_rate
    return EfficiencyPoint(
        grain=grain,
        efficiency=1.0 - idle,
        idle_rate=idle,
        execution_time_ns=result.execution_time_ns,
        tasks_executed=result.tasks_executed,
    )


def efficiency_curve(
    spec: TaskBenchSpec,
    grains: list[int] | None = None,
    **kwargs,
) -> list[EfficiencyPoint]:
    """Measure efficiency over a grain sweep (see :func:`measure_efficiency`
    for the keyword knobs)."""
    if grains is None:
        grains = default_grain_sweep()
    return [measure_efficiency(spec, g, **kwargs) for g in grains]


def _interpolate_crossing(
    below: EfficiencyPoint, above: EfficiencyPoint, target: float
) -> float:
    """Log-grain-linear efficiency crossing between two bracketing points."""
    if above.efficiency == below.efficiency:
        return float(above.grain)
    frac = (target - below.efficiency) / (above.efficiency - below.efficiency)
    frac = min(1.0, max(0.0, frac))
    lo, hi = math.log(below.grain), math.log(above.grain)
    return math.exp(lo + frac * (hi - lo))


def metg(
    spec: TaskBenchSpec,
    *,
    target: float = 0.5,
    grains: list[int] | None = None,
    rel_tol: float = 0.02,
    platform: str = "haswell",
    num_cores: int = 8,
    scheduler: str = "priority-local",
    seed: int = 0,
    num_localities: int = 1,
) -> MetgResult:
    """Sweep + bisect for the minimum grain with efficiency >= ``target``.

    The sweep locates the coarsest failing / finest passing bracket; the
    bisection narrows it (geometric midpoints) until ``hi <= lo * (1 +
    rel_tol)``.  With the finest swept grain already passing, METG is
    reported *at* that grain (the true METG may be finer — widen the sweep);
    with no grain passing, ``grain`` is None.
    """
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    if rel_tol <= 0.0:
        raise ValueError("rel_tol must be positive")
    if grains is None:
        grains = default_grain_sweep()
    kwargs = dict(
        platform=platform,
        num_cores=num_cores,
        scheduler=scheduler,
        seed=seed,
        num_localities=num_localities,
    )
    curve = [measure_efficiency(spec, g, **kwargs) for g in grains]
    samples = {p.grain: p for p in curve}

    crossing = next(
        (i for i, p in enumerate(curve) if p.efficiency >= target), None
    )
    if crossing is None:
        return _result(spec, kwargs, target, None, None, samples)
    if crossing == 0:
        # No failing grain below: the sweep never saw the overhead wall.
        first = curve[0]
        return _result(
            spec, kwargs, target, first.grain, float(first.grain), samples
        )

    below, above = curve[crossing - 1], curve[crossing]
    while above.grain > int(below.grain * (1.0 + rel_tol)) + 1:
        mid = int(round(math.sqrt(below.grain * above.grain)))
        if mid <= below.grain or mid >= above.grain:
            break
        point = measure_efficiency(spec, mid, **kwargs)
        samples[mid] = point
        if point.efficiency >= target:
            above = point
        else:
            below = point
    return _result(
        spec,
        kwargs,
        target,
        above.grain,
        _interpolate_crossing(below, above, target),
        samples,
    )


def _result(
    spec: TaskBenchSpec,
    kwargs: dict,
    target: float,
    grain: int | None,
    interpolated: float | None,
    samples: dict[int, EfficiencyPoint],
) -> MetgResult:
    return MetgResult(
        pattern_name=spec.pattern_name,
        platform_name=str(kwargs["platform"]),
        num_cores=int(kwargs["num_cores"]),
        num_localities=int(kwargs["num_localities"]),
        target=target,
        grain=grain,
        interpolated_grain=interpolated,
        curve=tuple(samples[g] for g in sorted(samples)),
    )
