"""repro.faults — deterministic fault injection and resilience primitives.

The paper's thesis is that per-task overhead sets the usable grain-size
region; once work spans localities, per-parcel costs join it — and on real
clusters those parcels are lost, delayed and duplicated.  This package
makes the simulated runtime a place where the follow-on question — *how
does fault-recovery overhead shift the optimal grain size?* — is
answerable and regression-tested:

- :mod:`repro.faults.plan` — :class:`FaultPlan` (declarative, seeded fault
  schedules: drops, duplication, doomed parcels, link-degradation windows,
  stragglers, crashes) and :class:`FaultInjector` (per-decision answers as
  a pure function of seed and key, so every schedule is bit-reproducible);
- :mod:`repro.faults.transport` — :class:`RetryParams`, the
  ack/timeout/retransmit protocol the parcelport runs in reliable mode;
- :mod:`repro.faults.errors` — the typed failure modes
  (:class:`ParcelLostError`, :class:`LocalityCrashError`,
  :class:`UnrecoverableCrashError`, :class:`WatchdogTimeout`) that replace
  silent hangs and generic deadlocks.

Crash *survival* — heartbeat failure detection, checkpoint/restart and
lineage re-execution on top of these primitives — lives in
:mod:`repro.recovery` (see docs/recovery.md).

See docs/resilience.md for the fault model and counter catalogue,
``experiments/figR_resilience_grain.py`` for the resilience-vs-grain-size
experiment, and ``examples/fault_injection.py`` for a quickstart.
"""

from repro.faults.errors import (
    FaultError,
    LocalityCrashError,
    ParcelLostError,
    UnrecoverableCrashError,
    WatchdogTimeout,
)
from repro.faults.plan import (
    CrashAt,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    Straggler,
    stream_u64,
    stream_unit,
)
from repro.faults.transport import RetryParams

__all__ = [
    "FaultError",
    "LocalityCrashError",
    "ParcelLostError",
    "UnrecoverableCrashError",
    "WatchdogTimeout",
    "CrashAt",
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "Straggler",
    "stream_u64",
    "stream_unit",
    "RetryParams",
]
