"""Typed failure modes of the resilient distributed runtime.

The pre-resilience runtime had exactly one way to fail:
:class:`repro.runtime.sim_executor.DeadlockError`, raised when the event
heap drained with tasks still outstanding.  Under fault injection that is a
diagnosis-free dead end — a dropped parcel, a crashed locality and a genuine
dependency cycle all look identical.  These exception types carry the
*cause*: which parcel, which link, which locality, how many attempts.

All inherit :class:`FaultError` so callers can catch the whole family, and
``RuntimeError`` so legacy ``except DeadlockError``-adjacent handlers that
catch broadly keep working.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class of every fault-layer failure."""


class ParcelLostError(FaultError):
    """A parcel could not be delivered within its retry budget.

    Raised (or stored into the consuming proxy future) when either the
    reliable transport exhausts ``max_retries`` retransmissions, or an
    unreliable run drops a parcel the simulation then starves on.  The
    message names the parcel, the link it died on, and both localities —
    the three things a postmortem needs.
    """

    def __init__(
        self,
        parcel_id: int,
        source: int,
        destination: int,
        attempts: int,
        *,
        detail: str = "",
    ) -> None:
        self.parcel_id = parcel_id
        self.source = source
        self.destination = destination
        self.attempts = attempts
        noun = "attempt" if attempts == 1 else "attempts"
        message = (
            f"parcel #{parcel_id} lost on link locality {source} -> "
            f"locality {destination} after {attempts} {noun}"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class LocalityCrashError(FaultError):
    """A future can never be satisfied because its producer's locality died."""

    def __init__(self, locality: int, *, detail: str = "") -> None:
        self.locality = locality
        message = f"locality {locality} crashed"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class UnrecoverableCrashError(FaultError):
    """Crash recovery ran out of budget: more localities died than
    :class:`repro.recovery.RecoveryConfig` ``max_crashes`` allows (or no
    survivor remains to re-home work onto).  The run cannot complete; the
    message names every locality declared dead so far.
    """

    def __init__(self, localities: tuple[int, ...], *, detail: str = "") -> None:
        self.localities = tuple(localities)
        names = ", ".join(str(i) for i in self.localities)
        message = (
            f"crash recovery budget exhausted: localities [{names}] declared "
            "dead"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class FencedEpochError(FaultError):
    """A fenced locality tried to commit work from a superseded epoch.

    Partition fencing (:mod:`repro.tail`) bumps a locality's epoch the
    instant the crash quorum declares it dead.  A declared locality that
    "comes back" — the asymmetric-partition / split-brain window in which
    the gray detector still hears it — must not commit stale results:
    sends from it raise this error, and its in-flight parcels stamped with
    the old epoch are rejected on arrival.  The message names the fenced
    locality and both epochs, which is what a split-brain postmortem needs.
    """

    def __init__(
        self, locality: int, epoch: int, current_epoch: int, *, detail: str = ""
    ) -> None:
        self.locality = locality
        self.epoch = epoch
        self.current_epoch = current_epoch
        message = (
            f"locality {locality} is fenced: epoch {epoch} was superseded by "
            f"epoch {current_epoch} when the crash quorum declared it dead"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class WatchdogTimeout(FaultError):
    """The watchdog deadline passed with the system still not finished.

    Where a silent hang gives no information, the watchdog names what it
    caught in the act: localities with outstanding tasks, parcels still
    awaiting acknowledgement, and anything already known to be lost.
    """

    def __init__(self, deadline_ns: int, diagnosis: str) -> None:
        self.deadline_ns = deadline_ns
        self.diagnosis = diagnosis
        super().__init__(
            f"watchdog deadline of {deadline_ns} ns passed before the run "
            f"finished — {diagnosis}"
        )
