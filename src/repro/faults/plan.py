"""Deterministic, seeded fault plans and their injector.

A :class:`FaultPlan` is a *declarative* description of everything that may
go wrong during one distributed run: parcel drops and duplications, windows
of link degradation, straggler localities, and fail-stop crashes.  The
:class:`FaultInjector` turns the plan into per-decision answers
("does transmission (parcel #12, attempt 2) survive the wire?") that are a
pure function of ``(seed, parcel id, attempt)`` — **not** of a shared
sequential RNG — so:

- the same seed reproduces the same fault schedule exactly, run after run
  and process after process (no dependence on ``PYTHONHASHSEED`` or on the
  order in which other components draw randomness);
- changing one component's behaviour (e.g. a different retry budget) does
  not perturb the fate of unrelated parcels, which keeps experiments
  comparable across configurations.

The hash underneath is SplitMix64, chosen because it is a few integer
multiplies per decision (the injector sits on the parcel hot path) and has
no observable correlation between adjacent keys at this scale.

``FaultPlan.none()`` is the explicit "injection disabled" plan:
:class:`repro.dist.DistRuntime` treats an inactive plan exactly like no
plan at all, so the resilience layer costs nothing when off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_MASK = (1 << 64) - 1
#: role tags keep the drop / duplicate / jitter decision streams disjoint
#: even for identical (parcel, attempt) keys
_ROLE_DROP = 0x11
_ROLE_DUPLICATE = 0x22
_ROLE_JITTER = 0x33
#: heartbeat emission jitter of the crash-recovery failure detector
#: (repro.recovery); registered here so the role-tag space stays collision-
#: free as components add streams (0x44 breaker probe, 0x7B-0x7E taskbench/
#: verify generators, 0x80-0x85 verify harness incl. the RT and tail legs,
#: 0x90-0x92 qos arrivals, 0xA0-0xA2 rt release/gap/exec draws,
#: 0xB0-0xB2 reserved for repro.tail)
ROLE_HEARTBEAT = 0x55


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


def stream_u64(seed: int, *key: int) -> int:
    """A deterministic 64-bit draw for ``(seed, *key)``."""
    x = seed & _MASK
    for part in key:
        x = _splitmix64(x ^ (part & _MASK))
    return _splitmix64(x)


def stream_unit(seed: int, *key: int) -> float:
    """A deterministic draw in ``[0, 1)`` for ``(seed, *key)``."""
    return stream_u64(seed, *key) / float(1 << 64)


@dataclass(frozen=True)
class LinkDegradation:
    """A transient window in which a link (or every link) runs degraded.

    During ``[start_ns, end_ns)`` the affected link's latency is multiplied
    by ``latency_factor`` and its bandwidth by ``bandwidth_factor`` (so a
    factor of 0.5 *halves* the bandwidth).  ``src``/``dst`` of ``None``
    match every locality — a cluster-wide interconnect brown-out.
    """

    start_ns: int
    end_ns: int
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    src: int | None = None
    dst: int | None = None

    def __post_init__(self) -> None:
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ValueError(
                f"degradation window [{self.start_ns}, {self.end_ns}) is empty"
            )
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1 (a degradation)")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")

    def matches(self, src: int, dst: int, at_ns: int) -> bool:
        if not self.start_ns <= at_ns < self.end_ns:
            return False
        if self.src is not None and self.src != src:
            return False
        return self.dst is None or self.dst == dst


@dataclass(frozen=True)
class Straggler:
    """One locality whose every task runs ``factor`` times slower.

    Models a node with a failing fan, a co-scheduled tenant, or thermal
    throttling — the classic cause of tail latency in bulk-synchronous
    codes.  Applied as a multiplier on the locality's per-task compute and
    management costs at runtime construction.
    """

    locality: int
    factor: float

    def __post_init__(self) -> None:
        if self.locality < 0:
            raise ValueError("locality must be >= 0")
        if self.factor < 1.0:
            raise ValueError("a straggler factor must be >= 1")


@dataclass(frozen=True)
class CrashAt:
    """Fail-stop: ``locality`` dies at virtual time ``at_ns``.

    From that instant the locality runs no further tasks, sends nothing,
    and every parcel arriving at it is dropped on the floor.
    """

    locality: int
    at_ns: int

    def __post_init__(self) -> None:
        if self.locality < 0:
            raise ValueError("locality must be >= 0")
        if self.at_ns < 0:
            raise ValueError("at_ns must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, reproducible from ``seed``.

    ``drop_rate`` / ``duplicate_rate`` apply independently to every wire
    transmission (retransmissions included).  ``doom_every`` > 0
    additionally dooms every parcel whose id is a multiple of it — *all* of
    a doomed parcel's transmissions are dropped, modelling a message whose
    path is broken outright; this is what guarantees retry-budget
    exhaustion (and hence recovery) at a known, deterministic rate, where a
    plain per-transmission drop rate almost never exhausts a healthy
    budget.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    doom_every: int = 0
    degradations: tuple[LinkDegradation, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    crashes: tuple[CrashAt, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError(
                f"duplicate_rate must be in [0, 1), got {self.duplicate_rate}"
            )
        if self.doom_every < 0:
            raise ValueError("doom_every must be >= 0 (0 disables)")
        seen = [s.locality for s in self.stragglers]
        if len(seen) != len(set(seen)):
            raise ValueError("at most one Straggler per locality")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The explicit no-faults plan; the runtime treats it as absent."""
        return cls()

    @property
    def is_active(self) -> bool:
        """True when this plan can actually perturb a run."""
        return bool(
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.doom_every > 0
            or self.degradations
            or self.stragglers
            or self.crashes
        )


class FaultInjector:
    """Answers per-decision fault questions for one run, deterministically.

    One instance per :class:`repro.dist.DistRuntime`; stateless between
    calls, so asking the same question twice gives the same answer (the
    property the figR determinism check rides on).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._straggler = {s.locality: s.factor for s in plan.stragglers}
        self._crash = {c.locality: c.at_ns for c in plan.crashes}

    # -- the wire ------------------------------------------------------------

    def doomed(self, parcel_id: int) -> bool:
        """True when every transmission of this parcel is dropped."""
        every = self.plan.doom_every
        return every > 0 and parcel_id % every == 0

    def drops(self, parcel_id: int, attempt: int) -> bool:
        """Does transmission ``attempt`` of ``parcel_id`` die on the wire?"""
        if self.doomed(parcel_id):
            return True
        rate = self.plan.drop_rate
        if rate <= 0.0:
            return False
        return stream_unit(self.plan.seed, _ROLE_DROP, parcel_id, attempt) < rate

    def duplicates(self, parcel_id: int, attempt: int) -> bool:
        """Does the network deliver a spurious second copy of this one?"""
        rate = self.plan.duplicate_rate
        if rate <= 0.0:
            return False
        return (
            stream_unit(self.plan.seed, _ROLE_DUPLICATE, parcel_id, attempt)
            < rate
        )

    def jitter_ns(self, parcel_id: int, attempt: int, cap_ns: int) -> int:
        """Seeded retransmit-backoff jitter in ``[0, cap_ns]``."""
        if cap_ns <= 0:
            return 0
        return int(
            stream_unit(self.plan.seed, _ROLE_JITTER, parcel_id, attempt)
            * (cap_ns + 1)
        )

    def link_multipliers(
        self, src: int, dst: int, at_ns: int
    ) -> tuple[float, float]:
        """(latency multiplier, bandwidth multiplier) for a send at ``at_ns``.

        Overlapping degradation windows compound multiplicatively.
        """
        latency = 1.0
        bandwidth = 1.0
        for window in self.plan.degradations:
            if window.matches(src, dst, at_ns):
                latency *= window.latency_factor
                bandwidth *= window.bandwidth_factor
        return latency, bandwidth

    # -- the machines --------------------------------------------------------

    def straggler_factor(self, locality: int) -> float:
        """Per-task cost multiplier of ``locality`` (1.0 = healthy)."""
        return self._straggler.get(locality, 1.0)

    def crash_time(self, locality: int) -> int | None:
        """When ``locality`` fail-stops, or None if it never does."""
        return self._crash.get(locality)
