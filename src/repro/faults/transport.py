"""Reliable-transport parameters: ack / timeout / retransmit with backoff.

HPX's TCP and MPI parcelports sit on reliable byte streams; a runtime that
models *lossy* transport needs the reliability protocol those streams hide.
The model here is the classic positive-ack scheme:

- every delivered parcel is acknowledged with a tiny control message over
  the reverse link (acks themselves are never dropped — they stand in for
  the whole control channel, and losing them would only produce the
  spurious-duplicate behaviour :class:`repro.faults.plan.FaultPlan` can
  already inject directly via ``duplicate_rate``);
- the sender arms a retransmit timer per transmission; on expiry it resends
  with exponential backoff plus seeded jitter (decorrelating retry storms,
  as real transports do) and books the elapsed wait into
  ``/parcels{locality#N/total}/time/retry-backoff``;
- after ``max_retries`` retransmissions the parcel is declared lost and the
  sender's ``on_lost`` hook fires — propagating a typed
  :class:`repro.faults.errors.ParcelLostError` into the consuming proxy
  future (or triggering producer re-execution) instead of deadlocking.

The default timeout is ~4x the round trip of the default commodity link
(15 us latency each way plus serialization), so a healthy network
retransmits nothing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryParams:
    """Tuning of the ack/timeout/retransmit protocol, per runtime."""

    #: retransmit timer for the first transmission of each parcel
    ack_timeout_ns: int = 120_000
    #: timer growth per retransmission (exponential backoff)
    backoff_factor: float = 2.0
    #: upper bound of the seeded per-retry jitter added to each timeout
    max_jitter_ns: int = 10_000
    #: retransmissions allowed before the parcel is declared lost
    max_retries: int = 4
    #: payload bytes of the acknowledgement control message
    ack_bytes: int = 0

    def __post_init__(self) -> None:
        if self.ack_timeout_ns <= 0:
            raise ValueError("ack_timeout_ns must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_jitter_ns < 0:
            raise ValueError("max_jitter_ns must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.ack_bytes < 0:
            raise ValueError("ack_bytes must be >= 0")

    def timeout_ns(self, attempt: int) -> int:
        """The pre-jitter retransmit timer for transmission ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return int(self.ack_timeout_ns * self.backoff_factor**attempt)
