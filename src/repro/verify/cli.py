"""Command-line driver: ``python -m repro.verify``.

Subcommands::

    python -m repro.verify fuzz --seeds 0:50            # the CI net (make fuzz)
    python -m repro.verify fuzz --seeds 3,17 --out frz  # chosen seeds
    python -m repro.verify fuzz --seeds 0:5 --plant thread   # self-test: prove
                                                             # the net catches
    python -m repro.verify replay frz/reproducer-3.json # re-run a shrunk spec
    python -m repro.verify list-invariants              # the PF4xx catalogue

``fuzz`` generates one :class:`WorkloadSpec` per seed, runs the full
differential ladder on each, and — on any PF4xx finding — shrinks the spec
to a minimal reproducer and writes it as JSON under ``--out``.  The seed
list is fixed in the Makefile so CI failures reproduce locally verbatim;
``--budget-s`` stops cleanly (and says so) if the corpus overruns its slot.

Exit status mirrors ``repro.analysis``: 0 = clean, 1 = findings, 2 = usage
error.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.findings import Finding
from repro.verify.harness import flip_fingerprint, verify_spec
from repro.verify.invariants import INVARIANTS
from repro.verify.shrink import shrink, spec_size
from repro.verify.spec import WorkloadSpec, generate_spec


def _parse_seeds(value: str) -> list[int]:
    """``"0:50"`` -> range, ``"3,17,40"`` -> list, ``"7"`` -> [7]."""
    value = value.strip()
    if ":" in value:
        lo_s, hi_s = value.split(":", 1)
        lo, hi = int(lo_s), int(hi_s)
        if hi <= lo:
            raise ValueError(f"empty seed range {value!r}")
        return list(range(lo, hi))
    return [int(v) for v in value.split(",") if v.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential parity fuzzing across the repro runtimes.",
    )
    sub = parser.add_subparsers(dest="command")

    fuzz = sub.add_parser(
        "fuzz", help="run seeded specs through the differential harness"
    )
    fuzz.add_argument(
        "--seeds", default="0:50", metavar="SPEC",
        help="'lo:hi' range or comma-separated list (default: 0:50)",
    )
    fuzz.add_argument(
        "--budget-s", type=float, default=60.0, metavar="S",
        help="wall-clock budget; stop (and say so) when exceeded",
    )
    fuzz.add_argument(
        "--out", default="fuzz-reproducers", metavar="DIR",
        help="directory for shrunk-reproducer JSON (default: fuzz-reproducers)",
    )
    fuzz.add_argument(
        "--plant", default=None, metavar="BACKEND",
        help="self-test hook: corrupt BACKEND's fingerprint (e.g. 'thread') "
        "to prove the net catches and shrinks a planted divergence",
    )

    replay = sub.add_parser(
        "replay", help="re-run a reproducer (or bare WorkloadSpec) JSON file"
    )
    replay.add_argument("file", help="reproducer JSON written by fuzz")

    sub.add_parser("list-invariants", help="print the PF4xx invariant catalogue")
    return parser


def _print_findings(findings: list[Finding]) -> None:
    for f in findings:
        print(f.format())


def _run_fuzz(args: argparse.Namespace) -> int:
    try:
        seeds = _parse_seeds(args.seeds)
    except ValueError as exc:
        print(f"error: bad --seeds: {exc}", file=sys.stderr)
        return 2
    mutate = flip_fingerprint(args.plant) if args.plant else None
    out_dir = Path(args.out)

    started = time.monotonic()
    ran, failures = 0, 0
    for seed in seeds:
        if time.monotonic() - started > args.budget_s:
            print(
                f"budget exhausted after {ran}/{len(seeds)} specs "
                f"({args.budget_s:.0f} s) — remaining seeds NOT checked"
            )
            break
        spec = generate_spec(seed)
        report = verify_spec(spec, mutate=mutate)
        ran += 1
        if report.ok:
            continue
        failures += 1
        print(f"seed {seed}: {len(report.findings)} finding(s), shrinking...")
        _print_findings(report.findings)
        result = shrink(
            spec, lambda s: not verify_spec(s, mutate=mutate).ok
        )
        shrunk_report = verify_spec(result.spec, mutate=mutate)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"reproducer-{seed}.json"
        path.write_text(
            json.dumps(
                {
                    "fuzz_seed": seed,
                    "planted": args.plant,
                    "spec": result.spec.to_dict(),
                    "findings": [f.to_dict() for f in shrunk_report.findings],
                    "original_size": spec_size(spec),
                    "shrunk_size": spec_size(result.spec),
                    "shrink_steps": result.steps,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(
            f"seed {seed}: shrunk size {spec_size(spec)} -> "
            f"{spec_size(result.spec)} ({result.spec.total_tasks} task(s)) "
            f"in {result.steps} step(s); wrote {path}"
        )
    elapsed = time.monotonic() - started
    verdict = "all parity invariants held" if not failures else "DIVERGENCE"
    print(
        f"fuzz: {ran} spec(s), {failures} failing, "
        f"{elapsed:.1f} s — {verdict}"
    )
    return 1 if failures else 0


def _run_replay(args: argparse.Namespace) -> int:
    path = Path(args.file)
    if not path.is_file():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    try:
        data = json.loads(path.read_text())
        planted = data.get("planted")
        spec = WorkloadSpec.from_dict(data.get("spec", data))
    except (ValueError, TypeError, KeyError) as exc:
        print(f"error: bad reproducer {path}: {exc}", file=sys.stderr)
        return 2
    mutate = flip_fingerprint(planted) if planted else None
    report = verify_spec(spec, mutate=mutate)
    _print_findings(report.findings)
    label = f"{spec.total_tasks} task(s), size {spec_size(spec)}"
    if report.ok:
        print(f"replay {path.name}: clean ({label})")
        return 0
    print(f"replay {path.name}: {len(report.findings)} finding(s) ({label})")
    return 1


def _run_list(_args: argparse.Namespace) -> int:
    for inv in INVARIANTS.values():
        print(f"{inv.rule_id}  {inv.name}: {inv.description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "fuzz":
        return _run_fuzz(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "list-invariants":
        return _run_list(args)
    parser.print_usage(sys.stderr)
    print("error: no subcommand given", file=sys.stderr)
    return 2
