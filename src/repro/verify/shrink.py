"""Greedy spec shrinking: from "seed 1234 diverges" to a 1-task reproducer.

When the differential harness finds a violation, the failing spec is
usually far bigger than the bug: a three-pattern, faulted, prioritized,
two-locality grid where the divergence actually reproduces on a single
``trivial`` task.  :func:`shrink` minimizes it the way property-testing
shrinkers do, but over the workload-spec lattice instead of a bytestream:

- each candidate in :func:`shrink_candidates` is one *structurally
  simpler* spec — drop pattern phases, halve the grid, drop the fault
  plan, the crash-with-recovery leg, the real-time leg, or the
  tail-tolerance leg, collapse to one locality, turn priorities or
  per-task QoS classes off, coarsen the grain;
- every candidate **strictly reduces** ``spec.size()`` (candidates that
  would not are never yielded), so greedy descent provably terminates:
  size is a positive integer and each accepted step decreases it;
- greedy descent re-checks the violation predicate at each step and keeps
  the first simpler spec that still violates, restarting from it.

The result is the smallest spec this transformation set can reach that
still exhibits the failure — serialized as JSON by the CLI so
``python -m repro.verify replay`` reproduces it anywhere.  The hypothesis
property tests (tests/test_verify_shrink.py) pin monotonicity,
termination, and violation preservation over the generator's whole corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.verify.spec import COARSE_GRAIN_NS, WorkloadSpec


def spec_size(spec: WorkloadSpec) -> int:
    """The strictly-decreasing metric greedy descent walks down."""
    return spec.size()


def _valid(candidate: WorkloadSpec | None) -> bool:
    return candidate is not None


def _try(spec: WorkloadSpec, **changes) -> WorkloadSpec | None:
    """``replace`` that returns None when validation rejects the combo."""
    try:
        return replace(spec, **changes)
    except ValueError:
        return None


def shrink_candidates(spec: WorkloadSpec) -> Iterator[WorkloadSpec]:
    """Structurally simpler variants of ``spec``, most aggressive first.

    Every yielded candidate is valid and has ``size()`` strictly below
    ``spec.size()`` — the invariant the termination proof rests on.
    """
    candidates: list[WorkloadSpec | None] = []
    if len(spec.patterns) > 1:
        # keep only the first phase, then try dropping each phase alone
        candidates.append(_try(spec, patterns=spec.patterns[:1]))
        for k in range(len(spec.patterns)):
            kept = spec.patterns[:k] + spec.patterns[k + 1 :]
            candidates.append(_try(spec, patterns=kept))
    if spec.steps > 1:
        candidates.append(_try(spec, steps=max(1, spec.steps // 2)))
    if spec.width > 1:
        # halving a power-of-two width keeps fft admissible; localities
        # may not outnumber columns, so clamp them together
        clamped = min(spec.num_localities, spec.width // 2)
        candidates.append(
            _try(
                spec,
                width=spec.width // 2,
                num_localities=clamped,
                use_recovery=spec.use_recovery and clamped > 1,
                use_tail=spec.use_tail and clamped > 1,
            )
        )
    if spec.num_localities > 1:
        # recovery and tail tolerance both need a survivor, so collapsing
        # to one locality drops those legs with it
        candidates.append(
            _try(spec, num_localities=1, use_recovery=False, use_tail=False)
        )
    if spec.use_recovery:
        candidates.append(_try(spec, use_recovery=False))
    if spec.use_rt:
        candidates.append(_try(spec, use_rt=False))
    if spec.use_tail:
        candidates.append(_try(spec, use_tail=False))
    if spec.faults_active:
        candidates.append(_try(spec, drop_rate=0.0, duplicate_rate=0.0))
    if spec.use_priorities:
        candidates.append(_try(spec, use_priorities=False))
    if spec.use_qos:
        # the scheduler stays "qos"; only the per-task class draws go
        candidates.append(_try(spec, use_qos=False))
    if spec.grain_ns < COARSE_GRAIN_NS:
        candidates.append(_try(spec, grain_ns=COARSE_GRAIN_NS))

    base = spec_size(spec)
    seen: set[tuple] = set()
    for candidate in candidates:
        if candidate is None or spec_size(candidate) >= base:
            continue
        key = tuple(sorted(candidate.to_dict().items(), key=lambda kv: kv[0]))
        key = tuple((k, tuple(v) if isinstance(v, list) else v) for k, v in key)
        if key in seen:
            continue
        seen.add(key)
        yield candidate


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one greedy descent."""

    #: the smallest still-violating spec reached
    spec: WorkloadSpec
    #: every accepted intermediate, in order (original first)
    trail: tuple[WorkloadSpec, ...]

    @property
    def steps(self) -> int:
        return len(self.trail) - 1


def shrink(
    spec: WorkloadSpec,
    violates: Callable[[WorkloadSpec], bool],
    *,
    max_checks: int = 10_000,
) -> ShrinkResult:
    """Greedily minimize ``spec`` while ``violates`` keeps holding.

    ``violates(spec)`` must be True on entry (the caller just observed the
    failure); the returned spec is the last one it held for.  ``max_checks``
    bounds predicate evaluations as a safety valve — the size metric
    already guarantees termination long before any sane bound.
    """
    trail = [spec]
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in shrink_candidates(spec):
            checks += 1
            if violates(candidate):
                spec = candidate
                trail.append(candidate)
                improved = True
                break
            if checks >= max_checks:
                break
    return ShrinkResult(spec=spec, trail=tuple(trail))
