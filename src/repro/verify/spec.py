"""Self-describing fuzz workloads: :class:`WorkloadSpec` and its generator.

A :class:`WorkloadSpec` pins *everything* one differential run needs — the
Task Bench patterns composed into the graph, the grid, the kernel and its
granularity, seeded per-task priorities, the runtime shape (cores,
scheduler, platform, seed), and the distributed leg (localities, placement,
fault plan) — as plain JSON-serializable data.  The same spec therefore
replays bit-identically in any process: ``python -m repro.verify replay``
needs nothing but the JSON.

:func:`generate_spec` draws every field through the SplitMix64 streams of
:mod:`repro.faults.plan` (pure functions of ``(seed, role, index)``), the
same construction the fault injector and ``random_nearest`` pattern use:
no RNG objects, no hidden state, and seed ``k`` means the same workload on
every machine.

``size()`` is the shrinker's metric (:mod:`repro.verify.shrink`): the task
count plus one point for each optional complication (faults, priorities,
extra localities, fine grain).  Every shrink transformation strictly
reduces it, which is what makes shrinking terminate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any

from repro.faults.plan import stream_u64
from repro.taskbench.kernels import ComputeKernel, ImbalancedKernel, KernelSpec
from repro.taskbench.patterns import PATTERNS, TaskBenchSpec

#: role tags keeping generator draws disjoint from taskbench (0x7B/0x7C)
#: and fault-injector (0x11/0x22/0x33) streams
_ROLE_GEN = 0x7D
_ROLE_PHASE = 0x7E

#: grain at or above which a workload no longer counts as "fine-grained"
#: for the shrinker's size metric (coarsening to this is one shrink step)
COARSE_GRAIN_NS = 10_000

#: kernels the generator can draw (memory kernels route through the cache
#: model whose timing is platform business, not structure — excluded here)
KERNELS = ("compute", "imbalanced")

#: schedulers the generator draws from; parity must hold across all of them
GENERATOR_SCHEDULERS = ("priority-local", "priority-local-lifo", "global-queue")

#: patterns the generator draws from (the whole catalogue; widths are
#: always powers of two so ``fft`` is always admissible)
GENERATOR_PATTERNS = tuple(sorted(PATTERNS))


@dataclass(frozen=True)
class WorkloadSpec:
    """One fuzz workload: pattern phases x grid x kernel x runtime shape.

    ``seed`` feeds the *workload* (pattern edges, kernel jitter, priority
    draws, task-value hashing); ``runtime_seed`` feeds the runtimes' cost
    models.  They are distinct so either can be held fixed while the other
    sweeps.
    """

    seed: int = 0
    #: pattern phases; each is an independent ``width x steps`` grid built
    #: in the same runtime launch (a composed workload)
    patterns: tuple[str, ...] = ("stencil_1d",)
    width: int = 4
    steps: int = 3
    grain_ns: int = 2_000
    kernel: str = "compute"
    #: seeded per-task priorities (LOW/NORMAL/HIGH) instead of all-NORMAL
    use_priorities: bool = False
    num_cores: int = 2
    scheduler: str = "priority-local"
    platform: str = "haswell"
    runtime_seed: int = 0
    #: distributed leg: ``1`` means "only the mandatory DistRuntime@1
    #: equivalence check"; ``> 1`` adds a faulted multi-locality run
    num_localities: int = 1
    placement: str = "block"
    #: wire fault plan for the multi-locality leg (ignored at 1 locality)
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    fault_seed: int = 0
    #: seeded per-task QoS classes routed through the qos bucket scheduler
    use_qos: bool = False
    #: how many of the three default classes the draw uses (2 or 3)
    num_qos_classes: int = 2
    #: crash-with-recovery leg: the last locality dies halfway through the
    #: clean multi-locality run and checkpoint/restart + lineage
    #: re-execution must reproduce the exact structural answer
    use_recovery: bool = False
    #: real-time leg: a small fixed task set runs twice through
    #: ``run_rt_service`` (protocol drawn from the spec seed) and PF409
    #: must hold — released == on-time + missed, blocked time only under
    #: contention, bit-identical miss sets across the two runs
    use_rt: bool = False
    #: tail-tolerance leg: the multi-locality run repeats with a straggler
    #: locality and ``TailConfig`` armed (hedging + speculation + fencing);
    #: PF410 must balance the first-wins ledger and PF401 must still hold
    #: with hedge copies on the wire
    use_tail: bool = False

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ValueError("patterns must not be empty")
        for name in self.patterns:
            if name not in PATTERNS:
                raise ValueError(
                    f"unknown pattern {name!r}; expected one of "
                    f"{sorted(PATTERNS)}"
                )
            PATTERNS[name].validate(self.width)
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.grain_ns < 1:
            raise ValueError(f"grain_ns must be >= 1, got {self.grain_ns}")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.num_localities < 1:
            raise ValueError(
                f"num_localities must be >= 1, got {self.num_localities}"
            )
        if self.num_localities > self.width:
            raise ValueError(
                f"{self.num_localities} localities cannot all own one of "
                f"{self.width} columns"
            )
        if self.placement not in ("block", "cyclic"):
            raise ValueError(
                f"placement must be 'block' or 'cyclic', got {self.placement!r}"
            )
        for rate_name in ("drop_rate", "duplicate_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1), got {rate}")
        if self.num_qos_classes not in (2, 3):
            raise ValueError(
                f"num_qos_classes must be 2 or 3, got {self.num_qos_classes}"
            )
        if self.use_recovery and self.num_localities < 2:
            raise ValueError(
                "use_recovery needs num_localities >= 2 (a survivor must "
                "remain to recover onto)"
            )
        if self.use_tail and self.num_localities < 2:
            raise ValueError(
                "use_tail needs num_localities >= 2 (speculation clones a "
                "degraded locality's tasks onto a healthy one)"
            )

    # -- derived shape ---------------------------------------------------------

    @property
    def total_tasks(self) -> int:
        return len(self.patterns) * self.width * self.steps

    @property
    def faults_active(self) -> bool:
        """Faults only ever touch the multi-locality wire."""
        return self.num_localities > 1 and (
            self.drop_rate > 0.0 or self.duplicate_rate > 0.0
        )

    def size(self) -> int:
        """The shrinker's strictly-decreasing metric (>= 1 always)."""
        return (
            self.total_tasks
            + int(self.faults_active)
            + int(self.use_priorities)
            + (self.num_localities - 1)
            + int(self.grain_ns < COARSE_GRAIN_NS)
            + int(self.use_qos)
            + int(self.use_recovery)
            + int(self.use_rt)
            + int(self.use_tail)
        )

    def make_kernel(self) -> KernelSpec:
        if self.kernel == "imbalanced":
            return ImbalancedKernel(task_ns=self.grain_ns)
        return ComputeKernel(task_ns=self.grain_ns)

    def phase_seed(self, phase: int) -> int:
        """Workload seed of pattern phase ``phase`` (disjoint streams, so
        two phases of the same pattern still differ)."""
        return stream_u64(self.seed, _ROLE_PHASE, phase)

    def taskbench_specs(self) -> list[TaskBenchSpec]:
        """The pattern phases as ordinary Task Bench specs."""
        kernel = self.make_kernel()
        return [
            TaskBenchSpec(
                pattern=name,
                width=self.width,
                steps=self.steps,
                kernel=kernel,
                seed=self.phase_seed(k),
            )
            for k, name in enumerate(self.patterns)
        ]

    # -- JSON round-trip -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "patterns": list(self.patterns),
            "width": self.width,
            "steps": self.steps,
            "grain_ns": self.grain_ns,
            "kernel": self.kernel,
            "use_priorities": self.use_priorities,
            "num_cores": self.num_cores,
            "scheduler": self.scheduler,
            "platform": self.platform,
            "runtime_seed": self.runtime_seed,
            "num_localities": self.num_localities,
            "placement": self.placement,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "fault_seed": self.fault_seed,
            "use_qos": self.use_qos,
            "num_qos_classes": self.num_qos_classes,
            "use_recovery": self.use_recovery,
            "use_rt": self.use_rt,
            "use_tail": self.use_tail,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkloadSpec":
        known = dict(data)
        known["patterns"] = tuple(known.get("patterns", ("stencil_1d",)))
        return cls(**known)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        return cls.from_dict(json.loads(text))


# -- the seeded generator -------------------------------------------------------


def _draw(seed: int, idx: int, options: tuple) -> Any:
    return options[stream_u64(seed, _ROLE_GEN, idx) % len(options)]


def generate_spec(seed: int) -> WorkloadSpec:
    """Workload number ``seed`` of the fuzz corpus.

    Pure function: every field is a SplitMix64 draw keyed by ``(seed,
    role, field-index)``, so spec ``k`` is identical in every process and
    adding new fields at fresh indices never perturbs old ones.  Widths
    are powers of two (``fft`` admissibility) and grids stay small: the
    corpus optimizes for *many specs per second*, not large graphs —
    divergence almost always reproduces at trivial sizes.
    """
    n_patterns = 1 + stream_u64(seed, _ROLE_GEN, 0) % 3
    patterns = tuple(
        _draw(seed, 100 + i, GENERATOR_PATTERNS) for i in range(n_patterns)
    )
    width = _draw(seed, 1, (2, 4, 8))
    num_localities = _draw(seed, 10, (1, 1, 2))
    faulted = num_localities > 1 and stream_u64(seed, _ROLE_GEN, 12) % 3 == 0
    # ~1/3 of the corpus routes through the QoS bucket scheduler with
    # seeded per-task classes; parity (PF401-PF407) must hold there too
    use_qos = stream_u64(seed, _ROLE_GEN, 14) % 3 == 0
    # ~1/3 of the clean multi-locality specs also run the crash-with-
    # recovery leg (PF408); kept disjoint from wire faults so each
    # complication shrinks away independently
    use_recovery = (
        num_localities > 1
        and not faulted
        and stream_u64(seed, _ROLE_GEN, 16) % 3 == 0
    )
    # ~1/4 of the corpus also runs the real-time leg (PF409); drawn at a
    # fresh index so older specs replay unchanged
    use_rt = stream_u64(seed, _ROLE_GEN, 17) % 4 == 0
    # ~3/4 of the multi-locality specs also run the tail-tolerance leg
    # (PF410): straggler + TailConfig, hedging and speculation armed —
    # 17 of the first 50 corpus seeds take it
    use_tail = (
        num_localities > 1 and stream_u64(seed, _ROLE_GEN, 18) % 4 != 0
    )
    return WorkloadSpec(
        seed=stream_u64(seed, _ROLE_GEN, 99),
        patterns=patterns,
        width=width,
        steps=1 + stream_u64(seed, _ROLE_GEN, 2) % 5,
        grain_ns=_draw(seed, 3, (500, 1_000, 2_000, 5_000)),
        kernel=_draw(seed, 4, KERNELS),
        use_priorities=stream_u64(seed, _ROLE_GEN, 5) % 2 == 0,
        num_cores=_draw(seed, 6, (1, 2, 4)),
        scheduler="qos" if use_qos else _draw(seed, 7, GENERATOR_SCHEDULERS),
        platform="haswell",
        runtime_seed=stream_u64(seed, _ROLE_GEN, 8) % 2**32,
        num_localities=num_localities,
        placement=_draw(seed, 11, ("block", "cyclic")),
        drop_rate=0.05 if faulted else 0.0,
        duplicate_rate=0.05 if faulted else 0.0,
        fault_seed=stream_u64(seed, _ROLE_GEN, 13) % 2**32,
        use_qos=use_qos,
        num_qos_classes=2 + stream_u64(seed, _ROLE_GEN, 15) % 2,
        use_recovery=use_recovery,
        use_rt=use_rt,
        use_tail=use_tail,
    )


def simplify(spec: WorkloadSpec, **changes: Any) -> WorkloadSpec:
    """``dataclasses.replace`` that re-validates (shrinker helper)."""
    return replace(spec, **changes)
