"""Named, reusable invariants — the ``PF4xx`` catalogue made executable.

Before this module the repo's conservation laws lived as ad-hoc asserts
scattered across their discovery sites: ``assert_parcels_conserved`` in
:mod:`repro.dist.runtime` (called by figD/figR/figO), hand-rolled
``offered == completed + shed`` arithmetic in figO, the task-count check
in the Task Bench driver, bit-identical-rerun comparisons in the overload
experiment.  Each :class:`Invariant` here names one of those laws once,
and everything — the differential harness, the experiments, the tests —
checks it through the same object, reporting :class:`Finding` records
under the ``PF4xx`` rule IDs of the shared :mod:`repro.analysis`
catalogue.

Three spellings of the same check:

- ``check(...)``  -> ``list[Finding]`` — for harnesses that aggregate;
- ``holds(...)``  -> ``bool``          — for counting violations (figO);
- ``require(...)``                     — raises ``AssertionError`` with the
  *identical* message legacy call sites raised (figD/figR; the regression
  test in tests/test_verify_invariants.py pins the parcel text verbatim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dist imports us)
    from repro.dist.runtime import DistRunResult
    from repro.rt.service import RtServiceOutcome
    from repro.runtime.runtime import RunResult


@dataclass(frozen=True)
class Invariant:
    """One named structural law, reported under a ``PF4xx`` rule ID."""

    rule_id: str
    name: str
    description: str
    #: returns the violation message, or None when the law holds
    violation: Callable[..., str | None]

    def check(self, *args: Any, **kwargs: Any) -> list[Finding]:
        """Findings (empty when the invariant holds)."""
        message = self.violation(*args, **kwargs)
        if message is None:
            return []
        return [Finding(self.rule_id, message, file="<invariant>")]

    def holds(self, *args: Any, **kwargs: Any) -> bool:
        return self.violation(*args, **kwargs) is None

    def require(self, *args: Any, **kwargs: Any) -> None:
        """Raise ``AssertionError`` (legacy assert-style call sites)."""
        message = self.violation(*args, **kwargs)
        if message is not None:
            raise AssertionError(message)


# -- PF401: every wire copy meets exactly one fate ------------------------------


def _parcels_violation(result: "DistRunResult") -> str | None:
    on_wire = result.parcels_sent + result.parcels_retransmitted
    off_wire = (
        result.parcels_received
        + result.parcels_dropped
        + result.duplicates_discarded
    )
    if on_wire == off_wire:
        return None
    # Wording is stable API: figD/figR asserted exactly this text before the
    # check moved here, and the regression test pins it.
    return (
        f"parcel conservation violated: {result.parcels_sent} sent + "
        f"{result.parcels_retransmitted} retransmitted != "
        f"{result.parcels_received} received + "
        f"{result.parcels_dropped} dropped + "
        f"{result.duplicates_discarded} duplicates discarded"
    )


PARCELS_CONSERVED = Invariant(
    "PF401",
    "parcels-conserved",
    "sent + retransmitted == received + dropped + duplicates-discarded",
    _parcels_violation,
)


# -- PF402: every spawned task completes, and only spec'd tasks run -------------


def _tasks_violation(expected: int, unready: int, executed: int) -> str | None:
    if unready:
        return (
            f"task conservation violated: {unready} of {expected} futures "
            "never became ready"
        )
    if executed != expected:
        return (
            f"task conservation violated: runtime executed {executed} "
            f"tasks, spec describes {expected}"
        )
    return None


TASKS_CONSERVED = Invariant(
    "PF402",
    "tasks-conserved",
    "every task the spec describes runs to completion, and nothing else",
    _tasks_violation,
)


# -- PF403: dependency wiring matches the spec ----------------------------------


def _order_violation(
    expected_fingerprint: int, actual_fingerprint: int, backend: str = "run"
) -> str | None:
    if expected_fingerprint == actual_fingerprint:
        return None
    return (
        f"dependency-order conservation violated on {backend}: structural "
        f"fingerprint {actual_fingerprint:#018x} != model "
        f"{expected_fingerprint:#018x} (a task observed parent values the "
        "spec graph does not produce)"
    )


DEPENDENCY_ORDER_CONSERVED = Invariant(
    "PF403",
    "dependency-order-conserved",
    "every task observed exactly the parent values the spec graph wires in",
    _order_violation,
)


# -- PF404: admission/spill counter identities ----------------------------------


def _admission_violation(offered: int, completed: int, shed: int) -> str | None:
    if offered == completed + shed:
        return None
    return (
        f"admission conservation violated: {offered} offered != "
        f"{completed} completed + {shed} shed"
    )


ADMISSION_CONSERVED = Invariant(
    "PF404",
    "admission-conserved",
    "offered == completed + shed (no task vanishes at the admission gate)",
    _admission_violation,
)


def _spill_violation(result: "RunResult") -> str | None:
    if result.tasks_readmitted == result.tasks_spilled:
        return None
    return (
        f"spill conservation violated: {result.tasks_readmitted:g} "
        f"readmitted != {result.tasks_spilled:g} spilled (the spill queue "
        "leaked or duplicated tasks)"
    )


SPILL_CONSERVED = Invariant(
    "PF404",
    "spill-conserved",
    "readmitted == spilled (the spill queue drains exactly once)",
    _spill_violation,
)


# -- PF408: crash recovery conserves the lost work ------------------------------


def _recovery_violation(result: "DistRunResult") -> str | None:
    if result.crashes_detected == 0:
        if result.tasks_lost or result.tasks_reexecuted:
            return (
                "recovery conservation violated: "
                f"{result.tasks_lost} tasks lost and "
                f"{result.tasks_reexecuted} re-executed with no crash "
                "declared"
            )
        return None
    if result.tasks_reexecuted != result.tasks_lost:
        return (
            "recovery conservation violated: "
            f"{result.tasks_lost} task(s) lost to the crash but "
            f"{result.tasks_reexecuted} re-executed (lost work must be "
            "re-executed exactly once)"
        )
    if result.tasks_restored > result.tasks_checkpointed:
        return (
            "recovery conservation violated: "
            f"{result.tasks_restored} task(s) restored exceeds the "
            f"{result.tasks_checkpointed} ever made durable (a restore "
            "must come from a checkpoint)"
        )
    decomposed = (
        result.detection_ns + result.restore_ns + result.reexecution_ns
    )
    if decomposed != result.recovery_total_ns:
        return (
            "recovery conservation violated: time-to-recover "
            f"{result.recovery_total_ns} ns != detection "
            f"{result.detection_ns} + restore {result.restore_ns} + "
            f"re-execution {result.reexecution_ns} ns"
        )
    return None


RECOVERY_CONSERVED = Invariant(
    "PF408",
    "recovery-conserved",
    "lost tasks are re-executed exactly once, restores come from durable "
    "checkpoints, and time-to-recover decomposes exactly",
    _recovery_violation,
)


# -- PF409: the deadline ledger balances and replays ----------------------------


def _rt_violation(
    first: "RtServiceOutcome", second: "RtServiceOutcome"
) -> str | None:
    for index, s in first.stats.items():
        if s.released != s.on_time + s.missed:
            return (
                "rt conservation violated: task "
                f"{first.taskset.tasks[index].name!r} released {s.released} "
                f"jobs != {s.on_time} on time + {s.missed} missed"
            )
    res = first.resources
    if res.blocked == 0 and (res.blocked_ns or res.max_blocked_ns):
        return (
            "rt conservation violated: no acquire ever blocked yet "
            f"{res.blocked_ns} ns of blocked time was recorded (blocked "
            "time without contention)"
        )
    if first.released() != second.released():
        return (
            "rt conservation violated: rerun released "
            f"{second.released()} jobs, first run {first.released()} — "
            "the open-loop release schedule is seed-deterministic"
        )
    if first.missed_jobs() != second.missed_jobs():
        return (
            "rt conservation violated: rerun missed "
            f"{second.missed_jobs()} but first run missed "
            f"{first.missed_jobs()} — the miss set must replay "
            "bit-identically"
        )
    return None


RT_CONSERVED = Invariant(
    "PF409",
    "rt-conserved",
    "released == on-time + missed per RT task, blocked time only under "
    "contention, and the miss set replays bit-identically",
    _rt_violation,
)


# -- PF410: speculation and hedging keep first-wins exact -----------------------


def _speculation_violation(result: "DistRunResult") -> str | None:
    resolved = result.speculation_wins + result.speculations_cancelled
    if resolved != result.tasks_speculated:
        return (
            "speculation conservation violated: "
            f"{result.tasks_speculated} task(s) speculated != "
            f"{result.speculation_wins} clone wins + "
            f"{result.speculations_cancelled} called off (a speculation "
            "must resolve exactly once)"
        )
    if result.originals_cancelled > result.speculation_wins:
        return (
            "speculation conservation violated: "
            f"{result.originals_cancelled} original(s) cancelled exceeds "
            f"{result.speculation_wins} clone win(s) (an original is only "
            "cancelled by the clone that beat it)"
        )
    if result.hedges_sent != result.hedges_won + result.hedges_lost:
        return (
            "speculation conservation violated: "
            f"{result.hedges_sent} hedge(s) sent != "
            f"{result.hedges_won} won + {result.hedges_lost} deduplicated "
            "(every hedge copy on the wire meets exactly one fate)"
        )
    if result.hedges_armed != result.hedges_sent + result.hedges_cancelled:
        return (
            "speculation conservation violated: "
            f"{result.hedges_armed} hedge timer(s) armed != "
            f"{result.hedges_sent} fired + {result.hedges_cancelled} "
            "cancelled (a hedge timer either fires or is cancelled)"
        )
    if (
        result.speculation_budget
        and result.tasks_speculated > result.speculation_budget
    ):
        return (
            "speculation conservation violated: "
            f"{result.tasks_speculated} task(s) speculated exceeds the "
            f"work-amplification budget of {result.speculation_budget} "
            "(max_speculation_frac of completed work)"
        )
    if result.tasks_speculated == 0 and result.originals_cancelled:
        return (
            "speculation conservation violated: "
            f"{result.originals_cancelled} original(s) cancelled with no "
            "speculation launched"
        )
    return None


SPECULATION_CONSERVED = Invariant(
    "PF410",
    "speculation-conserved",
    "every speculation resolves exactly once (win or called off), originals "
    "fall only to winning clones, hedge copies are fully accounted, and "
    "work amplification stays within the configured budget",
    _speculation_violation,
)


# -- PF405: the dynamic checker stays clean -------------------------------------


def _clean_violation(error: str | None, backend: str = "run") -> str | None:
    if error is None:
        return None
    return f"check=True run on {backend} reported: {error}"


ANALYSIS_CLEAN = Invariant(
    "PF405",
    "analysis-clean",
    "a check=True run raises no dynamic-checker findings",
    _clean_violation,
)


# -- PF406: bit-identical rerun -------------------------------------------------


def _counter_diff(
    a: Mapping[str, float], b: Mapping[str, float], limit: int = 3
) -> str:
    keys = sorted(set(a) | set(b))
    diffs = [k for k in keys if a.get(k) != b.get(k)]
    shown = ", ".join(
        f"{k}: {a.get(k)} != {b.get(k)}" for k in diffs[:limit]
    )
    extra = f" (+{len(diffs) - limit} more)" if len(diffs) > limit else ""
    return shown + extra


def _rerun_violation(first: "RunResult", second: "RunResult") -> str | None:
    if first.execution_time_ns != second.execution_time_ns:
        return (
            "rerun determinism violated: execution time "
            f"{first.execution_time_ns} ns != {second.execution_time_ns} ns "
            "for identical config and workload"
        )
    if dict(first.counters.values) != dict(second.counters.values):
        return (
            "rerun determinism violated: counters differ — "
            + _counter_diff(first.counters.values, second.counters.values)
        )
    return None


RERUN_IDENTICAL = Invariant(
    "PF406",
    "rerun-identical",
    "the same seed replays to bit-identical time and counters",
    _rerun_violation,
)


# -- PF407: backends agree structurally -----------------------------------------


def _divergence_violation(reference: Any, other: Any) -> str | None:
    """Both arguments are :class:`repro.verify.harness.StructuralResult`."""
    if reference.total_tasks != other.total_tasks:
        return (
            f"backend divergence: {other.backend} built "
            f"{other.total_tasks} tasks, {reference.backend} built "
            f"{reference.total_tasks}"
        )
    if reference.unready != other.unready:
        return (
            f"backend divergence: {other.unready} unready futures on "
            f"{other.backend} vs {reference.unready} on {reference.backend}"
        )
    if reference.fingerprint != other.fingerprint:
        return (
            f"backend divergence: {other.backend} fingerprint "
            f"{other.fingerprint:#018x} != {reference.backend} fingerprint "
            f"{reference.fingerprint:#018x}"
        )
    return None


BACKENDS_AGREE = Invariant(
    "PF407",
    "backends-agree",
    "sim, thread, and dist backends produce the same structural result",
    _divergence_violation,
)


#: the catalogue, by invariant name (CLI ``list-invariants`` prints this)
INVARIANTS: dict[str, Invariant] = {
    inv.name: inv
    for inv in (
        PARCELS_CONSERVED,
        TASKS_CONSERVED,
        DEPENDENCY_ORDER_CONSERVED,
        ADMISSION_CONSERVED,
        SPILL_CONSERVED,
        ANALYSIS_CLEAN,
        RERUN_IDENTICAL,
        BACKENDS_AGREE,
        RECOVERY_CONSERVED,
        RT_CONSERVED,
        SPECULATION_CONSERVED,
    )
}

__all__ = [
    "Invariant",
    "INVARIANTS",
    "PARCELS_CONSERVED",
    "TASKS_CONSERVED",
    "DEPENDENCY_ORDER_CONSERVED",
    "ADMISSION_CONSERVED",
    "SPILL_CONSERVED",
    "ANALYSIS_CLEAN",
    "RERUN_IDENTICAL",
    "BACKENDS_AGREE",
    "RECOVERY_CONSERVED",
    "RT_CONSERVED",
    "SPECULATION_CONSERVED",
]
