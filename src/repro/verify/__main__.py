"""``python -m repro.verify`` — see :mod:`repro.verify.cli`."""

import sys

from repro.verify.cli import main

if __name__ == "__main__":
    sys.exit(main())
