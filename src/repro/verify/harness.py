"""The differential harness: one spec, every backend, one verdict.

A :class:`WorkloadSpec` is lowered onto each runtime exactly the way the
Task Bench driver lowers its grids — same ``dataflow``/``async_`` calls,
same work descriptors — except that instead of computing the literal ``1``
every task computes a **structural hash** of its own position and its
parents' values::

    value(step, i) = stream_u64(seed, ROLE, phase, step, i, *parent_values)

Fold those values over the whole grid and you get a *fingerprint* that
pins the entire dependency wiring: reorder, drop, or rewire one edge
anywhere and the fingerprint changes with probability ~1 - 2^-64.  The
fingerprint is also computable from the spec alone (:func:`expected_result`
— no runtime, just the recurrence), which turns "did the runtime wire the
graph the spec describes?" into an integer comparison.

:func:`verify_spec` then runs the ladder:

1. **sim** (``Runtime``) — canonical reference; fingerprint vs the model
   (PF403), task conservation (PF402);
2. **sim rerun** — bit-identical time and counters (PF406);
3. **sim with check=True** — the dynamic checker stays clean (PF405);
4. **thread** (``ThreadRuntime``) — real OS threads must produce the same
   structural result (PF407);
5. **dist@1** (``DistRuntime``, one locality) — must agree with sim
   *bit-exactly*: fingerprint, execution time, and every counter (PF407,
   PF406), plus parcel conservation (PF401, trivially 0 == 0);
6. **dist@N** (only when the spec says so) — the faulted multi-locality
   run: parcel conservation under drops/duplicates (PF401), task and
   dependency-order conservation end-to-end (PF402/PF403);
7. **dist@N-crash** (``use_recovery`` specs) — the last locality dies
   halfway through the clean dist@N run with crash recovery armed:
   heartbeat detection, checkpoint restore, and lineage re-execution
   must reproduce the exact structural fingerprint (PF403), conserve
   application tasks (PF402) and parcels (PF401), and balance the
   recovery ledger (PF408);
8. **rt** (``use_rt`` specs) — a small fixed task set runs twice through
   :func:`repro.rt.service.run_rt_service` with the protocol and grain
   drawn from the spec seed: the deadline ledger must balance, blocked
   time must imply contention, and the miss set must replay
   bit-identically (PF409), with the underlying runs themselves
   bit-identical (PF406);
9. **dist@N-tail** (``use_tail`` specs) — the multi-locality run repeats
   with the last locality a 4x straggler and :class:`repro.tail.TailConfig`
   armed: gray detection, hedged parcels and speculative re-execution must
   leave the structural fingerprint exact (PF403), conserve application
   tasks (PF402) and wire copies hedges included (PF401), balance the
   first-wins ledger (PF410), never let the crash quorum declare the
   straggler, and replay bit-identically (PF406).

``mutate`` is the planted-discrepancy hook the shrinker tests use: it may
rewrite any backend's :class:`StructuralResult` before comparison, letting
a test inject a synthetic semantic divergence and watch the net catch it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.analysis.dynamic import CheckError
from repro.analysis.findings import Finding
from repro.dist.runtime import DistConfig, DistRuntime
from repro.faults.plan import CrashAt, FaultPlan, Straggler, stream_u64
from repro.faults.transport import RetryParams
from repro.recovery import RecoveryConfig
from repro.runtime.runtime import RunResult, Runtime, RuntimeConfig
from repro.runtime.task import Priority
from repro.runtime.thread_executor import ThreadRuntime
from repro.taskbench.driver import make_placement
from repro.verify.invariants import (
    ANALYSIS_CLEAN,
    BACKENDS_AGREE,
    DEPENDENCY_ORDER_CONSERVED,
    PARCELS_CONSERVED,
    RECOVERY_CONSERVED,
    RERUN_IDENTICAL,
    RT_CONSERVED,
    SPECULATION_CONSERVED,
    TASKS_CONSERVED,
)
from repro.verify.spec import WorkloadSpec

#: role tags for the structural hashes (disjoint from every other stream)
_ROLE_VALUE = 0x80
_ROLE_FOLD = 0x81
_ROLE_PRIORITY = 0x82
_ROLE_QOS = 0x83
_ROLE_RT = 0x84

#: wall-clock ceiling for the thread backend's wait_idle
THREAD_TIMEOUT_S = 60.0

#: the mutate hook: (backend label, result) -> possibly-rewritten result
MutateHook = Callable[[str, "StructuralResult"], "StructuralResult"]


@dataclass(frozen=True)
class StructuralResult:
    """What a backend *computed*, independent of when it computed it."""

    backend: str
    total_tasks: int
    #: futures that never became ready (0 on a correct run)
    unready: int
    #: XOR-fold of every task's position-keyed value hash
    fingerprint: int
    #: tasks the runtime reports having executed (== total_tasks when known)
    tasks_executed: int


@dataclass
class VerifyReport:
    """Everything :func:`verify_spec` learned about one spec."""

    spec: WorkloadSpec
    findings: list[Finding] = field(default_factory=list)
    results: dict[str, StructuralResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings


def _task_priority(seed: int, phase: int, step: int, index: int) -> Priority:
    return Priority(stream_u64(seed, _ROLE_PRIORITY, phase, step, index) % 3)


def qos_classes_for(spec: WorkloadSpec):
    """The class palette a ``use_qos`` spec draws from: the top
    ``num_qos_classes`` of the three default tiers (interactive always
    included, so warp-on-wakeup is always exercised)."""
    from repro.qos.classes import default_classes

    return default_classes()[-spec.num_qos_classes:]


def _task_qos(spec: WorkloadSpec, classes, phase: int, step: int, index: int):
    return classes[
        stream_u64(spec.seed, _ROLE_QOS, phase, step, index) % len(classes)
    ]


def _make_body(seed: int, phase: int, step: int, index: int):
    def body(*parent_values: int) -> int:
        return stream_u64(seed, _ROLE_VALUE, phase, step, index, *parent_values)

    return body


def build_verify_graph(rt, spec: WorkloadSpec, *, placement=None):
    """Lower ``spec`` onto any runtime; returns ``[(phase, step, index,
    future), ...]`` so the fold knows each future's grid position."""
    entries = []
    qos_classes = qos_classes_for(spec) if spec.use_qos else None
    for phase, tb in enumerate(spec.taskbench_specs()):
        prev = []
        for step in range(tb.steps):
            cur = []
            for i in range(tb.width):
                kwargs = {}
                if placement is not None:
                    kwargs["locality"] = placement(i)
                if spec.use_priorities:
                    kwargs["priority"] = _task_priority(spec.seed, phase, step, i)
                if qos_classes is not None:
                    kwargs["qos"] = _task_qos(spec, qos_classes, phase, step, i)
                body = _make_body(spec.seed, phase, step, i)
                work = tb.kernel.work_for(step, i, tb.seed)
                name = f"verify:{tb.pattern_name}[{phase}][{step}][{i}]"
                deps = tb.dependencies(step, i)
                if deps:
                    f = rt.dataflow(
                        body, [prev[j] for j in deps],
                        work=work, name=name, **kwargs,
                    )
                else:
                    f = rt.async_(body, work=work, name=name, **kwargs)
                cur.append(f)
                entries.append((phase, step, i, f))
            prev = cur
    return entries


def _fold(spec: WorkloadSpec, backend: str, entries, tasks_executed: int):
    fingerprint = 0
    unready = 0
    for phase, step, i, f in entries:
        if not f.is_ready:
            unready += 1
            continue
        fingerprint ^= stream_u64(
            spec.seed, _ROLE_FOLD, phase, step, i, f.value
        )
    return StructuralResult(
        backend=backend,
        total_tasks=len(entries),
        unready=unready,
        fingerprint=fingerprint,
        tasks_executed=tasks_executed,
    )


def expected_result(spec: WorkloadSpec) -> StructuralResult:
    """The model: what *every* backend must compute, derived from the spec
    alone by running the value recurrence in plain Python."""
    fingerprint = 0
    for phase, tb in enumerate(spec.taskbench_specs()):
        prev: list[int] = []
        for step in range(tb.steps):
            cur = []
            for i in range(tb.width):
                parents = (prev[j] for j in tb.dependencies(step, i))
                value = stream_u64(
                    spec.seed, _ROLE_VALUE, phase, step, i, *parents
                )
                cur.append(value)
                fingerprint ^= stream_u64(
                    spec.seed, _ROLE_FOLD, phase, step, i, value
                )
            prev = cur
    return StructuralResult(
        backend="model",
        total_tasks=spec.total_tasks,
        unready=0,
        fingerprint=fingerprint,
        tasks_executed=spec.total_tasks,
    )


# -- backend runners ------------------------------------------------------------


def _runtime_config(spec: WorkloadSpec, *, check: bool = False) -> RuntimeConfig:
    return RuntimeConfig(
        platform=spec.platform,
        num_cores=spec.num_cores,
        scheduler=spec.scheduler,
        seed=spec.runtime_seed,
        check=check,
    )


def run_sim(
    spec: WorkloadSpec, *, check: bool = False
) -> tuple[StructuralResult, RunResult]:
    rt = Runtime(_runtime_config(spec, check=check))
    entries = build_verify_graph(rt, spec)
    result = rt.run()
    return _fold(spec, "sim", entries, result.tasks_executed), result


def run_threads(spec: WorkloadSpec) -> StructuralResult:
    with ThreadRuntime(
        num_workers=spec.num_cores, scheduler=spec.scheduler
    ) as rt:
        entries = build_verify_graph(rt, spec)
        rt.wait_idle(timeout_s=THREAD_TIMEOUT_S)
    ready = sum(1 for _, _, _, f in entries if f.is_ready)
    return _fold(spec, "thread", entries, ready)


def _dist_config(spec: WorkloadSpec, num_localities: int) -> DistConfig:
    faulted = num_localities > 1 and spec.faults_active
    return DistConfig(
        num_localities=num_localities,
        platform=spec.platform,
        cores_per_locality=spec.num_cores,
        scheduler=spec.scheduler,
        seed=spec.runtime_seed,
        faults=FaultPlan(
            seed=spec.fault_seed,
            drop_rate=spec.drop_rate,
            duplicate_rate=spec.duplicate_rate,
        )
        if faulted
        else None,
        # a lossy wire needs the ack/retransmit protocol or it starves
        retry=RetryParams() if faulted else None,
    )


def run_dist(spec: WorkloadSpec, num_localities: int):
    dist = DistRuntime(_dist_config(spec, num_localities))
    placement = make_placement(spec.placement, spec.width, num_localities)
    entries = build_verify_graph(dist, spec, placement=placement)
    result = dist.wait([f for _, _, _, f in entries])
    structural = _fold(
        spec, f"dist@{num_localities}", entries, result.tasks_executed
    )
    return structural, result


def run_dist_crash(spec: WorkloadSpec, crash_at_ns: int):
    """The recovery leg: the last locality fail-stops at ``crash_at_ns``
    with crash recovery armed; the survivors must detect it, restore the
    checkpointed results, and re-execute the lost lineage — producing the
    spec's exact structural answer.

    ``tasks_executed`` is the *application* completion count (checkpoint
    ticks and replacement double-completions netted out), so PF402 holds
    on exactly the spec's tasks.
    """
    n = spec.num_localities
    config = DistConfig(
        num_localities=n,
        platform=spec.platform,
        cores_per_locality=spec.num_cores,
        scheduler=spec.scheduler,
        seed=spec.runtime_seed,
        faults=FaultPlan(
            seed=spec.fault_seed,
            drop_rate=spec.drop_rate,
            duplicate_rate=spec.duplicate_rate,
            crashes=(CrashAt(n - 1, crash_at_ns),),
        ),
        # fail-fast on the dead link still needs the ack protocol alive
        retry=RetryParams(),
        # fuzz workloads are tiny, so checkpoint well below the default
        # cadence or the restore path would never see a durable entry
        crash_recovery=RecoveryConfig(checkpoint_interval_ns=100_000),
    )
    dist = DistRuntime(config)
    placement = make_placement(spec.placement, spec.width, n)
    entries = build_verify_graph(dist, spec, placement=placement)
    result = dist.wait([f for _, _, _, f in entries])
    structural = _fold(
        spec, f"dist@{n}-crash", entries, result.app_tasks_completed
    )
    return structural, result


def run_dist_tail(spec: WorkloadSpec):
    """The tail-tolerance leg: the last locality runs 4x slow with
    ``TailConfig`` armed — gray detection, hedged parcels, speculation.

    The straggler factor sits deliberately *inside* the crash detector's
    adaptive tolerance (``suspicion_after`` x the observed gap) and above
    the gray threshold (``degraded_factor`` 3x), so the quorum never
    declares it while the tail layer both flags it and speculates its
    tasks onto healthy survivors.  First-completion-wins must leave the
    structural fingerprint exact (a winning clone computes the same pure
    value), the application task count conserved, and the PF410 ledger
    balanced; ``tasks_executed`` is the application completion count, as
    on the recovery leg.
    """
    from repro.tail import TailConfig

    n = spec.num_localities
    config = DistConfig(
        num_localities=n,
        platform=spec.platform,
        cores_per_locality=spec.num_cores,
        scheduler=spec.scheduler,
        seed=spec.runtime_seed,
        faults=FaultPlan(
            seed=spec.fault_seed,
            drop_rate=spec.drop_rate,
            duplicate_rate=spec.duplicate_rate,
            stragglers=(Straggler(n - 1, 4.0),),
        ),
        # hedge timers race against acks; drops are what hedges insure
        retry=RetryParams(),
        crash_recovery=RecoveryConfig(checkpoint_interval_ns=100_000),
        # sweep fast relative to the tiny fuzz workloads, and hedge
        # aggressively so the machinery actually engages at this scale
        tail=TailConfig(check_interval_ns=25_000, hedge_min_delay_ns=5_000),
    )
    dist = DistRuntime(config)
    placement = make_placement(spec.placement, spec.width, n)
    entries = build_verify_graph(dist, spec, placement=placement)
    result = dist.wait([f for _, _, _, f in entries])
    structural = _fold(
        spec, f"dist@{n}-tail", entries, result.app_tasks_completed
    )
    return structural, result


def run_rt(spec: WorkloadSpec):
    """The real-time leg: one fixed three-task window whose protocol and
    grain are drawn from the spec seed.

    The set is deliberately tiny (a 200 us window on 2 cores) — the PF409
    laws are structural, so they violate at trivial sizes if they violate
    at all, and the corpus optimizes for specs per second.  ``ctrl`` and
    ``log`` contend for one resource so every protocol branch (grant,
    park, boost, re-queue) actually executes.
    """
    from repro.rt.model import PeriodicTaskSpec, SporadicTaskSpec, TaskSet
    from repro.rt.resources import PROTOCOLS
    from repro.rt.service import RtServiceConfig, run_rt_service

    protocol = PROTOCOLS[stream_u64(spec.seed, _ROLE_RT, 0) % len(PROTOCOLS)]
    grain_ns = (1_000, 2_000, 4_000)[stream_u64(spec.seed, _ROLE_RT, 1) % 3]
    taskset = TaskSet(
        seed=spec.seed,
        tasks=(
            SporadicTaskSpec(
                name="ctrl",
                wcet_ns=8_000,
                # tight enough that resource waits push some (not all)
                # corpus seeds over it — the miss-set replay check of
                # PF409 must compare nonempty sets somewhere
                relative_deadline_ns=12_000,
                min_separation_ns=50_000,
                resource="bus",
                critical_section_ns=2_000,
            ),
            PeriodicTaskSpec(
                name="spin",
                wcet_ns=30_000,
                relative_deadline_ns=120_000,
                period_ns=80_000,
                exec_variation=0.2,
            ),
            PeriodicTaskSpec(
                name="log",
                wcet_ns=16_000,
                relative_deadline_ns=160_000,
                period_ns=160_000,
                phase_ns=1_000,
                resource="bus",
                critical_section_ns=8_000,
            ),
        ),
    ).with_grain(grain_ns)
    return run_rt_service(
        taskset,
        RtServiceConfig(
            platform=spec.platform,
            num_cores=2,
            seed=spec.runtime_seed,
            window_ns=200_000,
            protocol=protocol,
        ),
    )


# -- the differential ladder ----------------------------------------------------


def verify_spec(
    spec: WorkloadSpec, *, mutate: MutateHook | None = None
) -> VerifyReport:
    """Run ``spec`` through the whole backend ladder; every violated
    invariant becomes a PF4xx finding in the report."""
    report = VerifyReport(spec)
    model = expected_result(spec)

    def post(backend: str, structural: StructuralResult) -> StructuralResult:
        if mutate is not None:
            structural = mutate(backend, structural)
        report.results[backend] = structural
        return structural

    # 1. canonical sim run: the reference every other backend must match
    sim, sim_run = run_sim(spec)
    sim = post("sim", sim)
    report.findings += TASKS_CONSERVED.check(
        spec.total_tasks, sim.unready, sim.tasks_executed
    )
    report.findings += DEPENDENCY_ORDER_CONSERVED.check(
        model.fingerprint, sim.fingerprint, backend="sim"
    )

    # 2. rerun: same config, same spec — must replay bit-identically
    rerun, rerun_run = run_sim(spec)
    rerun = post("sim-rerun", rerun)
    report.findings += RERUN_IDENTICAL.check(sim_run, rerun_run)
    report.findings += BACKENDS_AGREE.check(sim, rerun)

    # 3. the dynamic checker must stay clean on a well-formed graph
    try:
        run_sim(spec, check=True)
    except CheckError as exc:
        report.findings += ANALYSIS_CLEAN.check(str(exc), backend="sim")

    # 4. real OS threads: same structure, no timing promises
    thread = post("thread", run_threads(spec))
    report.findings += BACKENDS_AGREE.check(sim, thread)

    # 5. DistRuntime at one locality must agree with Runtime *bit-exactly*
    dist1, dist1_run = run_dist(spec, 1)
    dist1 = post("dist@1", dist1)
    report.findings += BACKENDS_AGREE.check(sim, dist1)
    report.findings += PARCELS_CONSERVED.check(dist1_run)
    if dist1_run.execution_time_ns != sim_run.execution_time_ns:
        report.findings.append(
            Finding(
                "PF407",
                "backend divergence: DistRuntime@1 finished at "
                f"{dist1_run.execution_time_ns} ns, Runtime at "
                f"{sim_run.execution_time_ns} ns — single-locality "
                "equivalence must be bit-exact",
                file="<invariant>",
            )
        )
    else:
        sim_counters = dict(sim_run.counters.values)
        dist_counters = dict(dist1_run.per_locality[0].values)
        if sim_counters != dist_counters:
            diff = sorted(
                k
                for k in set(sim_counters) | set(dist_counters)
                if sim_counters.get(k) != dist_counters.get(k)
            )
            report.findings.append(
                Finding(
                    "PF407",
                    "backend divergence: DistRuntime@1 counters differ "
                    f"from Runtime on {', '.join(diff[:3])}"
                    + (f" (+{len(diff) - 3} more)" if len(diff) > 3 else ""),
                    file="<invariant>",
                )
            )

    # 6. the faulted multi-locality leg (structure + conservation only:
    #    timing legitimately differs once parcels cross the wire)
    if spec.num_localities > 1:
        distn, distn_run = run_dist(spec, spec.num_localities)
        distn = post(f"dist@{spec.num_localities}", distn)
        report.findings += TASKS_CONSERVED.check(
            spec.total_tasks, distn.unready, distn.tasks_executed
        )
        report.findings += DEPENDENCY_ORDER_CONSERVED.check(
            model.fingerprint, distn.fingerprint, backend=distn.backend
        )
        report.findings += PARCELS_CONSERVED.check(distn_run)

        # 7. kill a locality mid-run; recovery must restore the answer
        if spec.use_recovery:
            crash_at = max(1, distn_run.execution_time_ns // 2)
            distc, distc_run = run_dist_crash(spec, crash_at)
            distc = post(distc.backend, distc)
            report.findings += TASKS_CONSERVED.check(
                spec.total_tasks, distc.unready, distc.tasks_executed
            )
            report.findings += DEPENDENCY_ORDER_CONSERVED.check(
                model.fingerprint, distc.fingerprint, backend=distc.backend
            )
            report.findings += PARCELS_CONSERVED.check(distc_run)
            report.findings += RECOVERY_CONSERVED.check(distc_run)
            if distc_run.crashes_detected != 1:
                report.findings.append(
                    Finding(
                        "PF408",
                        "recovery conservation violated: expected exactly "
                        "1 declared crash on the recovery leg, got "
                        f"{distc_run.crashes_detected}",
                        file="<invariant>",
                    )
                )

        # 9. slow a locality down with the tail layer armed: speculation's
        #    first-wins races must leave the structural answer exact, the
        #    ledgers balanced, and the straggler undeclared
        if spec.use_tail:
            distt, distt_run = run_dist_tail(spec)
            distt = post(distt.backend, distt)
            report.findings += TASKS_CONSERVED.check(
                spec.total_tasks, distt.unready, distt.tasks_executed
            )
            report.findings += DEPENDENCY_ORDER_CONSERVED.check(
                model.fingerprint, distt.fingerprint, backend=distt.backend
            )
            report.findings += PARCELS_CONSERVED.check(distt_run)
            report.findings += SPECULATION_CONSERVED.check(distt_run)
            if distt_run.crashes_detected != 0:
                report.findings.append(
                    Finding(
                        "PF410",
                        "speculation conservation violated: the gray "
                        "detector's straggler was declared dead by the "
                        "crash quorum ("
                        f"{distt_run.crashes_detected} declaration(s)) — "
                        "degraded must never feed the crash declaration",
                        file="<invariant>",
                    )
                )
            distt2, distt2_run = run_dist_tail(spec)
            report.findings += RERUN_IDENTICAL.check(distt_run, distt2_run)
            report.findings += BACKENDS_AGREE.check(distt, distt2)

    # 8. the real-time leg: the deadline ledger balances and replays
    if spec.use_rt:
        rt_first = run_rt(spec)
        rt_second = run_rt(spec)
        report.findings += RT_CONSERVED.check(rt_first, rt_second)
        report.findings += RERUN_IDENTICAL.check(
            rt_first.result, rt_second.result
        )

    return report


def flip_fingerprint(backend: str) -> MutateHook:
    """A canned synthetic discrepancy: corrupt ``backend``'s fingerprint.

    The planted-bug hook for tests and ``fuzz --plant``: proves the net
    catches a single-bit semantic divergence and shrinks it.
    """

    def hook(label: str, result: StructuralResult) -> StructuralResult:
        if label == backend:
            return replace(result, fingerprint=result.fingerprint ^ 1)
        return result

    return hook
