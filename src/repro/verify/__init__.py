"""Differential parity fuzzing and the shared invariant engine.

The safety net under every refactor of the three runtimes: seeded
:class:`WorkloadSpec` workloads (:mod:`repro.verify.spec`) run on the
simulated :class:`~repro.runtime.Runtime`, the OS-thread
:class:`~repro.runtime.ThreadRuntime`, and :class:`~repro.dist.DistRuntime`
(one locality of which must agree with ``Runtime`` *bit-exactly*); the
harness (:mod:`repro.verify.harness`) diffs structural fingerprints and
checks the named conservation laws of :mod:`repro.verify.invariants`
(``PF4xx`` findings through the :mod:`repro.analysis` catalogue); failures
shrink (:mod:`repro.verify.shrink`) to minimal JSON reproducers replayable
with ``python -m repro.verify replay``.  Design notes: docs/verify.md.
"""

from repro.verify.harness import (
    StructuralResult,
    VerifyReport,
    build_verify_graph,
    expected_result,
    flip_fingerprint,
    run_dist,
    run_dist_crash,
    run_sim,
    run_threads,
    verify_spec,
)
from repro.verify.invariants import (
    ADMISSION_CONSERVED,
    ANALYSIS_CLEAN,
    BACKENDS_AGREE,
    DEPENDENCY_ORDER_CONSERVED,
    INVARIANTS,
    Invariant,
    PARCELS_CONSERVED,
    RECOVERY_CONSERVED,
    RERUN_IDENTICAL,
    SPILL_CONSERVED,
    TASKS_CONSERVED,
)
from repro.verify.shrink import ShrinkResult, shrink, shrink_candidates, spec_size
from repro.verify.spec import WorkloadSpec, generate_spec

__all__ = [
    "WorkloadSpec",
    "generate_spec",
    "StructuralResult",
    "VerifyReport",
    "build_verify_graph",
    "expected_result",
    "flip_fingerprint",
    "run_dist",
    "run_dist_crash",
    "run_sim",
    "run_threads",
    "verify_spec",
    "Invariant",
    "INVARIANTS",
    "PARCELS_CONSERVED",
    "TASKS_CONSERVED",
    "DEPENDENCY_ORDER_CONSERVED",
    "ADMISSION_CONSERVED",
    "SPILL_CONSERVED",
    "ANALYSIS_CLEAN",
    "RERUN_IDENTICAL",
    "BACKENDS_AGREE",
    "RECOVERY_CONSERVED",
    "ShrinkResult",
    "shrink",
    "shrink_candidates",
    "spec_size",
]
