"""Configuration of the crash-recovery layer (detector + checkpoints).

One frozen dataclass holds every knob of :mod:`repro.recovery`: the
heartbeat failure detector's cadence and suspicion threshold, the
checkpoint cadence and its cost model, and the crash budget.  Passed as
``DistConfig(crash_recovery=RecoveryConfig(...))``; ``None`` (the default)
leaves the distributed runtime bit-identical to the pre-recovery code —
no heartbeats, no checkpoints, no lineage bookkeeping.

The two intervals are the experimental axes of figC:

- ``heartbeat_interval_ns`` bounds *detection latency* (a crash is declared
  a few multiples of it after the fail-stop instant);
- ``checkpoint_interval_ns`` trades checkpoint overhead against lost work —
  the grain-size-dependent trade-off the experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryConfig:
    """Tuning of heartbeat failure detection and checkpoint/restart."""

    #: nominal heartbeat emission period per locality (stragglers emit
    #: proportionally slower, and monitors adapt their thresholds to that)
    heartbeat_interval_ns: int = 50_000
    #: upper bound of the seeded per-emission jitter (decorrelates rounds)
    heartbeat_jitter_ns: int = 2_000
    #: payload bytes of one heartbeat message on the modelled network
    heartbeat_bytes: int = 16
    #: a peer is suspected once its silence exceeds
    #: ``suspicion_after * max observed gap + heartbeat_interval_ns``;
    #: the per-link max-gap adaptation is what keeps a ``Straggler``-slowed
    #: or degradation-delayed link from being declared dead
    suspicion_after: float = 4.0
    #: checkpoint cadence per locality; each tick persists the task results
    #: completed since the last durable checkpoint to a survivor replica
    checkpoint_interval_ns: int = 400_000
    #: fixed cost of one checkpoint tick (quiescing + metadata write),
    #: charged as a visible task on the checkpointing locality's workers
    checkpoint_base_ns: int = 20_000
    #: serialized bytes per checkpointed task result
    checkpoint_entry_bytes: int = 64
    #: locality deaths the run survives; one more raises
    #: :class:`repro.faults.errors.UnrecoverableCrashError`
    max_crashes: int = 1

    def __post_init__(self) -> None:
        if self.heartbeat_interval_ns <= 0:
            raise ValueError("heartbeat_interval_ns must be positive")
        if self.heartbeat_jitter_ns < 0:
            raise ValueError("heartbeat_jitter_ns must be >= 0")
        if self.heartbeat_bytes < 1:
            raise ValueError("heartbeat_bytes must be >= 1")
        if self.suspicion_after < 1.0:
            raise ValueError("suspicion_after must be >= 1")
        if self.checkpoint_interval_ns <= 0:
            raise ValueError("checkpoint_interval_ns must be positive")
        if self.checkpoint_base_ns < 1:
            raise ValueError("checkpoint_base_ns must be >= 1")
        if self.checkpoint_entry_bytes < 1:
            raise ValueError("checkpoint_entry_bytes must be >= 1")
        if self.max_crashes < 1:
            raise ValueError("max_crashes must be >= 1")
