"""Crash recovery: heartbeat detection, checkpoint/restart, lineage replay.

``repro.recovery`` is what turns a ``CrashAt`` fault from a terminal
diagnosis ("these dependency cones can never become ready") into a survived
event.  One :class:`RecoveryManager` per :class:`repro.dist.DistRuntime`
(created only when ``DistConfig.crash_recovery`` is set — ``None`` leaves
the runtime bit-identical to the pre-recovery code) runs three machines on
the shared virtual clock:

**1. Heartbeat failure detection.**  Every locality emits a heartbeat to
every peer each ``heartbeat_interval_ns`` (times its straggler factor, plus
seeded SplitMix64 jitter — role ``0x55`` in the :mod:`repro.faults.plan`
registry).  Heartbeats ride the modelled network: each arrival is delayed by
the same per-link transfer time — degradation windows included — that a
parcel would pay.  Each monitor keeps, per peer link, the largest
inter-arrival gap it has ever observed and suspects a peer only once its
silence exceeds ``suspicion_after x max_gap + interval``.  That per-link
adaptation is why a ``Straggler``-slowed locality (which emits late but
regularly) or a ``LinkDegradation``-delayed link is *not* declared dead.  A
peer is declared dead when a majority of the alive monitors suspect it; a
declared locality that is somehow still running is fenced (halted) so
fail-stop semantics hold.

**2. Checkpointing.**  Each locality persists, every
``checkpoint_interval_ns``, the results of tasks it completed since its
last durable checkpoint.  The write is a *visible* task on the locality's
own workers (``FixedWork(base + serialization(n x entry_bytes))`` through
the network cost model) followed by a replica transfer to the next alive
locality; entries become durable only when the replica *arrives*, so a
crash during a checkpoint write loses exactly that checkpoint's entries.
Root futures (initial data placement) are durable for free — initial data
is re-loadable by construction.

**3. Declaration and recovery.**  On declaration the manager, in order:
checks the crash budget (:class:`UnrecoverableCrashError` past it); makes
every survivor parcelport *abandon* traffic to the dead locality (in-flight
retransmit timers cancelled, parked sends dropped — fail fast instead of
burning retry budget); re-homes the dead locality's AGAS addresses to
survivors round-robin and invalidates survivor caches (the next resolve
pays a miss); re-homes the dead locality's futures and classifies each as
*restored* (ready and durable: its value comes back from the replicated
store, costed as one batch transfer) or *lost* (not durable: re-executed).
Lost tasks are re-spawned from their recorded lineage on survivor
localities in creation order — dependencies that died with the locality are
rewired to the replacement futures, so re-execution serializes exactly like
the original dataflow — and each replacement's value satisfies the original
future, releasing every consumer that was waiting on it.  Time-to-recover
decomposes exactly: ``detection + restore + re-execution == total``.

The run then completes with values bit-identical to a crash-free run —
checkpoint/restore moves *results*, never recomputes them differently —
which is what the figC experiment asserts end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.faults.errors import UnrecoverableCrashError
from repro.faults.plan import ROLE_HEARTBEAT, stream_u64
from repro.recovery.config import RecoveryConfig
from repro.runtime.future import Future
from repro.runtime.work import FixedWork, WorkDescriptor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.dist.runtime import DistRuntime


@dataclass(slots=True)
class _Lineage:
    """How to rebuild one future if its locality dies."""

    kind: str  # "root" | "async" | "dataflow" | "proxy"
    future: Future
    fn: Callable[..., Any] | None = None
    args: tuple = ()
    #: dataflow dependencies exactly as the caller passed them (pre-proxy)
    deps: tuple = ()
    work: WorkDescriptor | None = None
    name: str = ""
    priority: Any = None
    qos: Any = None
    #: -- proxy-only fields (how remote_value was parameterized) ------------
    src: Future | None = None
    payload_bytes: int | None = None
    transform: Callable[[Any], Any] | None = None
    gid: Any = None
    recovery_work: WorkDescriptor | None = None


@dataclass
class _CrashRecord:
    """Bookkeeping of one declared crash, for timing and diagnosis."""

    locality: int
    crashed_ns: int
    declared_ns: int
    restore_end_ns: int = 0
    finished_ns: int | None = None
    restored: int = 0
    lost: int = 0
    pending: int = 0
    #: replacement futures still outstanding, by original future id
    replacements: dict[int, Future] = field(default_factory=dict)


class RecoveryManager:
    """Failure detection + checkpoint/restart for one distributed run."""

    def __init__(self, dist: "DistRuntime", config: RecoveryConfig) -> None:
        self.dist = dist
        self.config = config
        self.sim = dist.simulator
        n = dist.config.num_localities
        self._n = n
        self._seed = dist.config.seed
        #: future_id -> rebuild recipe, in creation order (dict is ordered)
        self._lineage: dict[int, _Lineage] = {}
        # -- detector state --------------------------------------------------
        init_gap = config.heartbeat_interval_ns + config.heartbeat_jitter_ns
        self._last_seen = [[0] * n for _ in range(n)]
        self._max_gap = [[init_gap] * n for _ in range(n)]
        self._suspected: list[set[int]] = [set() for _ in range(n)]
        self._declared: set[int] = set()
        self._hb_seq = [0] * n
        # -- checkpoint state ------------------------------------------------
        #: future ids whose values are replicated on a survivor
        self._durable: set[int] = set()
        #: future ids inside an in-flight checkpoint write/transfer
        self._pending_ckpt: set[int] = set()
        #: per-locality queue of completed-but-undurable future ids
        self._completed_undurable: list[list[int]] = [[] for _ in range(n)]
        self._queued: set[int] = set()
        self._ckpt_seq = [0] * n
        #: live checkpoint tasks per locality (excluded from quiescence)
        self._live_ckpt = [0] * n
        # -- recovery state --------------------------------------------------
        self._crashes: dict[int, _CrashRecord] = {}
        self._replacement: dict[int, Future] = {}
        self.crashes_detected = 0
        self.internal_completions = 0
        self.tasks_checkpointed = 0
        self.tasks_restored = 0
        self.tasks_reexecuted = 0
        self.tasks_lost = 0
        self.parcels_failed_fast = 0
        self.detection_ns = 0
        self.restore_ns = 0
        self.reexecution_ns = 0
        # per-locality counter backing stores
        self._hb_sent = [0] * n
        self._ckpts = [0] * n
        self._ckpted = [0] * n
        self._restored_by = [0] * n
        self._reexec_by = [0] * n
        self._failed_fast_by = [0] * n
        self._t_detect = [0] * n
        self._t_restore = [0] * n
        self._t_reexec = [0] * n
        self._register_counters()

    @property
    def heartbeats_sent(self) -> int:
        return sum(self._hb_sent)

    @property
    def checkpoints_taken(self) -> int:
        return sum(self._ckpts)

    @property
    def recovery_total_ns(self) -> int:
        """Crash-to-recovered time, summed over declared crashes.

        Equals ``detection_ns + restore_ns + reexecution_ns`` exactly —
        the three phases are sequential by construction.
        """
        total = 0
        for rec in self._crashes.values():
            end = (
                rec.finished_ns
                if rec.finished_ns is not None
                else self.sim.now
            )
            total += end - rec.crashed_ns
        return total

    def _register_counters(self) -> None:
        """Export the ``/recovery{locality#N/total}`` family.

        Registered only when crash recovery is enabled, so a disabled run's
        counter snapshot stays bit-identical to the pre-recovery runtime.
        """
        reg = self.dist.registry

        def per_loc(store: list[int], i: int) -> Callable[[], float]:
            return lambda: float(store[i])

        for i in range(self._n):
            prefix = f"/recovery{{locality#{i}/total}}"
            reg.derived(f"{prefix}/count/heartbeats-sent",
                        per_loc(self._hb_sent, i),
                        "failure-detector heartbeats this locality emitted")
            reg.derived(f"{prefix}/count/checkpoints",
                        per_loc(self._ckpts, i),
                        "checkpoint writes this locality completed")
            reg.derived(f"{prefix}/count/checkpointed",
                        per_loc(self._ckpted, i),
                        "task results this locality made durable")
            reg.derived(f"{prefix}/count/restored",
                        per_loc(self._restored_by, i),
                        "lost-locality results restored onto this locality")
            reg.derived(f"{prefix}/count/reexecuted",
                        per_loc(self._reexec_by, i),
                        "lost tasks re-executed on this locality")
            reg.derived(f"{prefix}/count/failed-fast",
                        per_loc(self._failed_fast_by, i),
                        "sends to a declared-dead locality abandoned early")
            reg.derived(f"{prefix}/time/detection",
                        per_loc(self._t_detect, i),
                        "crash-to-declaration latency of this locality (ns)")
            reg.derived(f"{prefix}/time/restore",
                        per_loc(self._t_restore, i),
                        "checkpoint-restore time after this locality died (ns)")
            reg.derived(f"{prefix}/time/reexecution",
                        per_loc(self._t_reexec, i),
                        "lost-work re-execution time after this locality "
                        "died (ns)")

    # -- lineage recording (called by the DistRuntime submission verbs) -----

    def record_root(self, future: Future) -> None:
        """Initial data placement: durable by construction, free."""
        fid = future.future_id
        self._lineage[fid] = _Lineage(kind="root", future=future)
        self._durable.add(fid)
        owner = self.dist._owner[fid]
        self._ckpted[owner] += 1
        self.tasks_checkpointed += 1

    def record_async(
        self,
        future: Future,
        fn: Callable[..., Any],
        args: tuple,
        work: WorkDescriptor | None,
        name: str,
        priority: Any,
        qos: Any,
    ) -> None:
        self._lineage[future.future_id] = _Lineage(
            kind="async", future=future, fn=fn, args=args,
            work=work, name=name, priority=priority, qos=qos,
        )
        future.on_ready(self._note_completed)

    def record_dataflow(
        self,
        future: Future,
        fn: Callable[..., Any],
        deps: tuple,
        work: WorkDescriptor | None,
        name: str,
        priority: Any,
        qos: Any,
    ) -> None:
        self._lineage[future.future_id] = _Lineage(
            kind="dataflow", future=future, fn=fn, deps=deps,
            work=work, name=name, priority=priority, qos=qos,
        )
        future.on_ready(self._note_completed)

    def record_proxy(
        self,
        proxy: Future,
        src: Future,
        payload_bytes: int | None,
        transform: Callable[[Any], Any] | None,
        gid: Any,
        recovery_work: WorkDescriptor | None,
        name: str,
    ) -> None:
        self._lineage[proxy.future_id] = _Lineage(
            kind="proxy", future=proxy, src=src, name=name,
            payload_bytes=payload_bytes, transform=transform,
            gid=gid, recovery_work=recovery_work,
        )

    def _note_completed(self, future: Future) -> None:
        """Queue a completed task result for the owner's next checkpoint."""
        if future.has_exception:
            return
        fid = future.future_id
        if fid in self._durable or fid in self._pending_ckpt:
            return
        if fid in self._queued:
            return
        owner = self.dist._owner.get(fid)
        if owner is None:
            return
        self._queued.add(fid)
        self._completed_undurable[owner].append(fid)

    # -- liveness: the chains stop themselves once nothing needs them -------

    def _active(self) -> bool:
        """True while heartbeats/checkpoints still have a job to do.

        The chains re-arm only while there is either (a) a crashed locality
        not yet declared, (b) a recovery in progress, or (c) application
        work or parcels still in flight on an alive locality.  Once the run
        has quiesced the chains stop, the event heap drains, and the run
        finishes — a crash scheduled after that instant loses nothing.
        """
        for rec in self._crashes.values():
            if rec.finished_ns is None:
                return True
        for loc in self.dist.localities:
            i = loc.index
            if loc.crashed:
                if i not in self._declared:
                    return True
                continue
            if loc.runtime.executor.outstanding_tasks > self._live_ckpt[i]:
                return True
            port = loc.parcelport
            if port.in_flight or port.awaiting_ack or port.waiting_sends:
                return True
        return False

    def start(self) -> None:
        """Arm the heartbeat and checkpoint chains (DistRuntime.run)."""
        for i in range(self._n):
            self._schedule_heartbeat(i)
            self._schedule_checkpoint(i)
        self._schedule_sweep()

    # -- the heartbeat failure detector -------------------------------------

    def _heartbeat_period_ns(self, i: int) -> int:
        factor = 1.0
        if self.dist.injector is not None:
            factor = self.dist.injector.straggler_factor(i)
        seq = self._hb_seq[i]
        jitter = 0
        if self.config.heartbeat_jitter_ns > 0:
            jitter = stream_u64(self._seed, ROLE_HEARTBEAT, i, seq) % (
                self.config.heartbeat_jitter_ns + 1
            )
        return int(self.config.heartbeat_interval_ns * factor) + jitter

    def _schedule_heartbeat(self, i: int) -> None:
        self.sim.schedule(self._heartbeat_period_ns(i), lambda: self._emit(i))

    def _emit(self, i: int) -> None:
        loc = self.dist.localities[i]
        if loc.crashed or i in self._declared or not self._active():
            return
        self._hb_seq[i] += 1
        port = loc.parcelport
        for j in range(self._n):
            if j == i or j in self._declared:
                continue
            self._hb_sent[i] += 1
            delay = port._transfer_ns(j, self.config.heartbeat_bytes)
            self.sim.schedule(
                delay, lambda j=j, i=i: self._receive_heartbeat(j, i)
            )
        self._schedule_heartbeat(i)

    def _receive_heartbeat(self, monitor: int, peer: int) -> None:
        if self.dist.localities[monitor].crashed:
            return
        now = self.sim.now
        gap = now - self._last_seen[monitor][peer]
        tail = self.dist.tail_manager
        if tail is not None:
            # The gray detector reads the same heartbeat stream the crash
            # quorum does, but only ever *observes* it: no suspicion state
            # is touched, so "stragglers are not dead" is preserved.
            tail.note_heartbeat_gap(
                monitor, peer, gap, self.config.heartbeat_interval_ns
            )
        self._last_seen[monitor][peer] = now
        if gap > self._max_gap[monitor][peer]:
            self._max_gap[monitor][peer] = gap
        # Contact clears suspicion: a late-but-alive peer is un-suspected.
        self._suspected[monitor].discard(peer)

    def _schedule_sweep(self) -> None:
        self.sim.schedule(self.config.heartbeat_interval_ns, self._sweep)

    def _sweep(self) -> None:
        if not self._active():
            return
        now = self.sim.now
        interval = self.config.heartbeat_interval_ns
        monitors = [
            loc.index
            for loc in self.dist.localities
            if not loc.crashed and loc.index not in self._declared
        ]
        for m in monitors:
            for p in range(self._n):
                if p == m or p in self._declared:
                    continue
                gap = now - self._last_seen[m][p]
                threshold = (
                    self.config.suspicion_after * self._max_gap[m][p]
                    + interval
                )
                if gap > threshold:
                    self._suspected[m].add(p)
        for p in range(self._n):
            if p in self._declared:
                continue
            voters = [m for m in monitors if m != p]
            if not voters:
                continue
            quorum = len(voters) // 2 + 1
            votes = sum(1 for m in voters if p in self._suspected[m])
            if votes >= quorum:
                self._declare(p)
        self._schedule_sweep()

    # -- checkpointing -------------------------------------------------------

    def _schedule_checkpoint(self, i: int) -> None:
        self.sim.schedule(
            self.config.checkpoint_interval_ns,
            lambda: self._checkpoint_tick(i),
        )

    def _checkpoint_tick(self, i: int) -> None:
        loc = self.dist.localities[i]
        if loc.crashed or i in self._declared or not self._active():
            return
        self._schedule_checkpoint(i)
        owner = self.dist._owner
        chosen: list[int] = []
        for fid in self._completed_undurable[i]:
            self._queued.discard(fid)
            if fid in self._durable or fid in self._pending_ckpt:
                continue
            if owner.get(fid) != i:
                continue
            chosen.append(fid)
        self._completed_undurable[i] = []
        self._pending_ckpt.update(chosen)
        payload = len(chosen) * self.config.checkpoint_entry_bytes
        cost = self.config.checkpoint_base_ns
        if chosen:
            cost += self.dist.network.serialization_ns(payload)
        seq = self._ckpt_seq[i]
        self._ckpt_seq[i] += 1
        self._live_ckpt[i] += 1
        # A *visible* task on the locality's own workers: checkpointing
        # competes with application work, which is exactly the overhead the
        # figC interval sweep measures.
        task = loc.runtime.async_(
            lambda: None, work=FixedWork(cost), name=f"ckpt:{i}#{seq}"
        )
        task.on_ready(
            lambda _f, i=i, chosen=tuple(chosen), payload=payload:
            self._checkpoint_written(i, chosen, payload)
        )

    def _checkpoint_written(
        self, i: int, chosen: tuple[int, ...], payload: int
    ) -> None:
        self._live_ckpt[i] -= 1
        self.internal_completions += 1
        self._ckpts[i] += 1
        if not chosen:
            return
        loc = self.dist.localities[i]
        partner = self._next_alive(i)
        if partner is None:
            return
        delay = loc.parcelport._transfer_ns(partner, payload)
        self.sim.schedule(
            delay, lambda: self._replica_arrived(i, chosen)
        )

    def _replica_arrived(self, i: int, chosen: tuple[int, ...]) -> None:
        """Entries become durable only here — a crash during the write or
        the transfer loses exactly this checkpoint's entries."""
        for fid in chosen:
            self._pending_ckpt.discard(fid)
            self._durable.add(fid)
        self._ckpted[i] += len(chosen)
        self.tasks_checkpointed += len(chosen)

    def _next_alive(self, i: int) -> int | None:
        for step in range(1, self._n):
            j = (i + step) % self._n
            loc = self.dist.localities[j]
            if not loc.crashed and j not in self._declared:
                return j
        return None

    # -- declaration and recovery -------------------------------------------

    def is_dead(self, locality: int) -> bool:
        return locality in self._declared

    def note_failed_fast(self, locality: int) -> None:
        self._failed_fast_by[locality] += 1
        self.parcels_failed_fast += 1

    def _declare(self, p: int) -> None:
        """A quorum of monitors gave up on ``p``: run the recovery plan."""
        if p in self._declared:
            return
        now = self.sim.now
        self._declared.add(p)
        self.crashes_detected += 1
        dead = tuple(sorted(self._declared))
        if self.crashes_detected > self.config.max_crashes:
            raise UnrecoverableCrashError(
                dead,
                detail=(
                    f"RecoveryConfig.max_crashes={self.config.max_crashes} "
                    "and no budget remains to re-home the lost work"
                ),
            )
        dist = self.dist
        loc = dist.localities[p]
        crash_at = None
        if dist.injector is not None:
            crash_at = dist.injector.crash_time(p)
        if not loc.crashed:
            # Fencing: a declared locality must be fail-stopped even if it
            # was merely wedged — survivors are about to take its work.
            dist._crash(loc)
        if dist.tail_manager is not None:
            # Epoch fencing: bump p's epoch so parcels it already has in
            # flight (stamped with the old epoch) are rejected on arrival
            # instead of committing stale results after the takeover.
            dist.tail_manager.note_declared(p)
        crashed_ns = (
            crash_at if crash_at is not None and crash_at <= now else now
        )
        detect = now - crashed_ns
        self._t_detect[p] += detect
        self.detection_ns += detect
        survivors = [
            l.index
            for l in dist.localities
            if not l.crashed and l.index not in self._declared
        ]
        if not survivors:
            raise UnrecoverableCrashError(
                dead, detail="no survivor localities remain"
            )
        # 1. Fail fast: stop burning retransmission budget on a dead link.
        for other in dist.localities:
            if other.index == p or other.crashed:
                continue
            abandoned = other.parcelport.abandon_destination(p)
            if abandoned:
                self._failed_fast_by[other.index] += abandoned
                self.parcels_failed_fast += abandoned
        # 2. AGAS: re-home the dead locality's addresses; survivors must
        # re-learn them (their next resolve pays a miss).
        moved = dist.agas.homed_on(p)
        for k, gid_int in enumerate(moved):
            dist.agas.rehome(gid_int, survivors[k % len(survivors)])
        for s in survivors:
            dist.localities[s].agas.invalidate_homed_on(p)
        # 3. Classify and re-home the dead locality's futures.
        record = _CrashRecord(
            locality=p, crashed_ns=crashed_ns, declared_ns=now
        )
        self._crashes[p] = record
        restored: list[int] = []
        lost: list[tuple[int, int]] = []
        rr = 0
        for fid, lin in self._lineage.items():
            if dist._owner.get(fid) != p or lin.kind == "proxy":
                continue
            home = survivors[rr % len(survivors)]
            rr += 1
            dist._owner[fid] = home
            if lin.future.is_ready and fid in self._durable:
                restored.append(fid)
                self._restored_by[home] += 1
            else:
                lost.append((fid, home))
        record.restored = len(restored)
        record.lost = len(lost)
        self.tasks_restored += len(restored)
        self.tasks_lost += len(lost)
        # 4. Restore: one batch transfer of the durable entries from the
        # replicated store to their new homes.
        restore_cost = 0
        if restored:
            payload = len(restored) * self.config.checkpoint_entry_bytes
            restore_cost = dist.network.serialization_ns(payload)
            if len(survivors) > 1:
                restore_cost += dist.network.transfer_ns(
                    survivors[0], survivors[1], payload
                )
        self.sim.schedule(
            restore_cost, lambda: self._restore_done(record, restored, lost)
        )

    def _restore_done(
        self,
        record: _CrashRecord,
        restored: list[int],
        lost: list[tuple[int, int]],
    ) -> None:
        now = self.sim.now
        record.restore_end_ns = now
        p = record.locality
        elapsed = now - record.declared_ns
        self._t_restore[p] += elapsed
        self.restore_ns += elapsed
        # Restored results may have consumers on survivors whose parcels
        # died with the sender: re-ship them from the value's new home.
        for fid in restored:
            self._reship_unready_proxies(fid)
        # 5. Re-execute lost work from lineage, in creation order, so every
        # replacement's dependencies (possibly replacements themselves)
        # already exist when it is spawned.
        record.pending = len(lost)
        if not lost:
            self._recovery_finished(record)
            return
        for fid, home in lost:
            self._spawn_replacement(record, fid, home)

    def _spawn_replacement(
        self, record: _CrashRecord, fid: int, home: int
    ) -> None:
        lin = self._lineage[fid]
        dist = self.dist
        name = f"redo:{lin.name or lin.future.name}"
        if lin.kind == "async":
            repl = dist.async_(
                lin.fn, *lin.args, locality=home, work=lin.work,
                name=name, priority=lin.priority, qos=lin.qos,
            )
        elif lin.kind == "dataflow":
            deps = [self._recovery_dep(d, home) for d in lin.deps]
            repl = dist.dataflow(
                lin.fn, deps, locality=home, work=lin.work,
                name=name, priority=lin.priority, qos=lin.qos,
            )
        else:  # pragma: no cover - roots are always durable
            raise AssertionError(f"unexpected lineage kind {lin.kind!r}")
        record.replacements[fid] = repl
        self._replacement[fid] = repl
        repl.on_ready(
            lambda r, record=record, fid=fid: self._replacement_ready(
                record, fid, r
            )
        )

    def _recovery_dep(self, dep: Future, home: int) -> Future:
        """Rewire one recorded dependency for re-execution on ``home``.

        A dependency that was itself lost is replaced by its replacement
        future (so re-execution serializes behind it, exactly like the
        original dataflow).  A proxy homed on the dead locality is rebuilt
        from its ultimate source with the recorded ``remote_value``
        parameters.  Anything else is used as-is.
        """
        fid = dep.future_id
        repl = self._replacement.get(fid)
        if repl is not None:
            return repl
        lin = self._lineage.get(fid)
        if (
            lin is not None
            and lin.kind == "proxy"
            and self.dist._owner.get(fid) in self._declared
        ):
            assert lin.src is not None
            src = self._replacement.get(lin.src.future_id, lin.src)
            return self.dist.remote_value(
                src,
                home,
                payload_bytes=lin.payload_bytes,
                transform=lin.transform,
                gid=lin.gid,
                name=f"redo:{lin.future.name}",
                recovery_work=lin.recovery_work,
            )
        return dep

    def _replacement_ready(
        self, record: _CrashRecord, fid: int, repl: Future
    ) -> None:
        original = self._lineage[fid].future
        home = self.dist._owner.get(repl.future_id, record.locality)
        self._reexec_by[home] += 1
        self.tasks_reexecuted += 1
        if original.is_ready:
            # The original completed before the crash but was not durable:
            # the replacement re-materialized a value that still exists in
            # this process, so its completion is bookkeeping, not progress —
            # but consumers whose parcels died with the sender still need
            # the value re-shipped from its new home.
            self.internal_completions += 1
            self._reship_unready_proxies(fid)
        else:
            # Satisfying the original fires its pending callbacks: dataflow
            # launches *and* the proxies' ship closures, which resolve the
            # source locality dynamically and so depart from the new home —
            # no explicit re-ship needed on this path.
            original.set_value(repl.value)
        record.pending -= 1
        if record.pending == 0:
            self._recovery_finished(record)

    def _reship_unready_proxies(self, fid: int) -> None:
        """Re-send ``fid``'s value to consumers whose parcel was lost."""
        for key, proxy in self.dist._proxies.items():
            if key[0] != fid or proxy.is_ready:
                continue
            if key[1] in self._declared:
                continue
            self.dist._reship(key)

    def _recovery_finished(self, record: _CrashRecord) -> None:
        now = self.sim.now
        record.finished_ns = now
        p = record.locality
        elapsed = now - record.restore_end_ns
        self._t_reexec[p] += elapsed
        self.reexecution_ns += elapsed

    # -- diagnosis (the watchdog and _diagnose read this) -------------------

    def diagnose(self) -> list[str]:
        """Detector/checkpoint/recovery state, one string per finding."""
        parts: list[str] = []
        for p in sorted(self._declared):
            rec = self._crashes.get(p)
            if rec is None:
                parts.append(f"locality {p} declared dead (budget exhausted)")
            elif rec.finished_ns is None:
                parts.append(
                    f"recovery of locality {p} in progress: declared dead at "
                    f"{rec.declared_ns} ns, {rec.restored} result(s) restored "
                    f"from checkpoints, {rec.pending} of {rec.lost} "
                    "replacement task(s) still pending"
                )
            else:
                parts.append(
                    f"locality {p} recovered: {rec.restored} restored, "
                    f"{rec.lost} re-executed, done at {rec.finished_ns} ns"
                )
        for loc in self.dist.localities:
            i = loc.index
            if i in self._declared:
                continue
            bits = [
                f"{self._hb_seq[i]} heartbeat round(s)",
                f"{self._ckpts[i]} checkpoint(s)",
                f"{self._ckpted[i]} durable result(s)",
            ]
            if self._suspected[i]:
                who = ", ".join(str(s) for s in sorted(self._suspected[i]))
                bits.append(f"suspects [{who}]")
            parts.append(f"locality {i} detector: " + ", ".join(bits))
        return parts
