"""Crash recovery for the distributed runtime (see :mod:`.manager`).

Public surface::

    from repro.recovery import RecoveryConfig

    cfg = DistConfig(num_localities=4,
                     crash_recovery=RecoveryConfig(checkpoint_interval_ns=200_000),
                     fault_plan=FaultPlan(crashes=(CrashAt(3, 1_000_000),)))

:class:`RecoveryManager` is constructed by the runtime itself; applications
only ever touch :class:`RecoveryConfig`.
"""

from repro.recovery.config import RecoveryConfig
from repro.recovery.manager import RecoveryManager

__all__ = ["RecoveryConfig", "RecoveryManager"]
