"""figD: grain size × locality count on the distributed stencil.

The paper characterizes grain size on one node.  HPX is a distributed
runtime, and the distributed-memory literature (Task Bench; Wu et al.'s
Charm++/HPX overhead study — PAPERS.md) adds the second half of the story:
communication and distributed task management raise the cost of *fine*
grains, so as localities are added the execution-time U-curve's minimum
moves toward **coarser** grains, while the coarse end is walled in earlier
by starvation (fewer partitions per locality must still feed every core).

Each locality panel plots the U-curve plus the idle-rate decomposition the
distributed counters make possible: total idle (Eq. 1 over all cores and
the global wall clock), the task-management share, and the network-wait
share (cumulative parcel ready-to-delivered time over the core-time
budget).  The summary panel plots the headline claim — best grain vs
locality count — and the parcel volume behind it.

Shape checks assert, not just plot: the best grain for 8 localities is
strictly coarser than for 1; every locality's parcels balance
(Σ sent == Σ received, zero on one locality, 2·L per step otherwise); and
network wait is only ever incurred where there is a network.
"""

from __future__ import annotations

from repro.apps.stencil1d_dist import DistStencilConfig, run_dist_stencil
from repro.core.characterize import default_partition_sweep
from repro.dist import DistConfig
from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.verify.invariants import PARCELS_CONSERVED

FIGURE_ID = "figD"
TITLE = "Distributed grain: U-curve vs locality count (simulated Haswell)"
PAPER_CLAIMS = [
    "adding localities moves the execution-time minimum to coarser grains "
    "(Task Bench / Wu et al.: per-task cost rises with node count)",
    "the idle-rate splits into a task-management share (dominant at fine "
    "grains, growing with locality count) and a network-wait share (only "
    "present across localities)",
    "parcel counters balance: every parcel sent is received, 2 per block "
    "boundary per time step",
]

LOCALITIES = (1, 2, 4, 8)
CORES_PER_LOCALITY = 8
PLATFORM = "haswell"
#: full-domain points are pointless here (no partition per locality) and the
#: coarse cliff is already visible well below this
COARSEST_GRAIN = 131_072


def grain_sweep(scale: Scale) -> list[int]:
    """figD's grain grid: finer than the generic presets.

    The best-grain shift spans roughly half a decade, so the sweep needs at
    least 4 points per decade to resolve it; the finest grain is kept at
    1024 so the fine-grain wall is visible without the finest runs
    dominating wall time.
    """
    finest = max(scale.finest_partition, 1024)
    per_decade = max(scale.points_per_decade, 4)
    coarsest = min(COARSEST_GRAIN, scale.total_points // max(LOCALITIES))
    return [
        g
        for g in default_partition_sweep(
            scale.total_points, finest=finest, points_per_decade=per_decade
        )
        if g <= coarsest
    ]


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="partition size (grid points)",
        ylabel="execution time (s) / idle-rate shares",
    )
    steps = scale.time_steps_for(PLATFORM)
    grains = grain_sweep(scale)
    fig.notes.append(
        f"scale={scale.name}; platform={PLATFORM}; "
        f"{CORES_PER_LOCALITY} cores/locality; {steps} time steps; "
        "default commodity interconnect and AGAS costs"
    )

    best_by_locality: list[tuple[float, float]] = []
    sent_by_locality: list[tuple[float, float]] = []
    received_by_locality: list[tuple[float, float]] = []
    dropped_by_locality: list[tuple[float, float]] = []
    retransmitted_by_locality: list[tuple[float, float]] = []
    duplicates_by_locality: list[tuple[float, float]] = []
    for num_localities in LOCALITIES:
        panel = f"{PLATFORM} {num_localities} localities"
        times: list[tuple[float, float]] = []
        idle: list[tuple[float, float]] = []
        overhead: list[tuple[float, float]] = []
        netwait: list[tuple[float, float]] = []
        sent = received = dropped = retransmitted = duplicates = 0
        for grain in grains:
            outcome = run_dist_stencil(
                DistConfig(
                    num_localities=num_localities,
                    platform=PLATFORM,
                    cores_per_locality=CORES_PER_LOCALITY,
                    seed=0,
                ),
                DistStencilConfig(
                    total_points=scale.total_points,
                    partition_points=grain,
                    time_steps=steps,
                ),
            )
            result = outcome.result
            times.append((grain, result.execution_time_s))
            idle.append((grain, result.idle_rate))
            overhead.append((grain, result.overhead_idle_rate))
            netwait.append((grain, result.network_wait_rate))
            sent += result.parcels_sent
            received += result.parcels_received
            dropped += result.parcels_dropped
            retransmitted += result.parcels_retransmitted
            duplicates += result.duplicates_discarded
            # Standing invariant: every wire copy meets exactly one fate.
            PARCELS_CONSERVED.require(result)
        fig.add_series(panel, Series("execution time (s)", times))
        fig.add_series(panel, Series("idle-rate", idle))
        fig.add_series(panel, Series("overhead idle", overhead))
        fig.add_series(panel, Series("network-wait idle", netwait))
        best_grain = min(times, key=lambda point: point[1])[0]
        best_by_locality.append((num_localities, best_grain))
        sent_by_locality.append((num_localities, float(sent)))
        received_by_locality.append((num_localities, float(received)))
        dropped_by_locality.append((num_localities, float(dropped)))
        retransmitted_by_locality.append(
            (num_localities, float(retransmitted))
        )
        duplicates_by_locality.append((num_localities, float(duplicates)))

    summary = "summary (x = localities)"
    fig.add_series(summary, Series("best grain (points)", best_by_locality))
    fig.add_series(summary, Series("parcels sent", sent_by_locality))
    fig.add_series(summary, Series("parcels received", received_by_locality))
    fig.add_series(summary, Series("parcels dropped", dropped_by_locality))
    fig.add_series(
        summary, Series("parcels retransmitted", retransmitted_by_locality)
    )
    fig.add_series(
        summary, Series("duplicates discarded", duplicates_by_locality)
    )
    fig.notes.append(
        "best grain per locality count: "
        + ", ".join(f"{int(loc)}→{int(g)}" for loc, g in best_by_locality)
    )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    summary = next(
        (p for p in fig.panels if p.startswith("summary")), None
    )
    if summary is None:
        return [f"{fig.figure_id}: summary panel missing"]
    series = {s.label: dict(s.points) for s in fig.panels[summary]}
    best = series["best grain (points)"]
    sent = series["parcels sent"]
    received = series["parcels received"]

    # The headline claim: communication moves the minimum coarser.
    if best[max(LOCALITIES)] <= best[1]:
        problems.append(
            f"{fig.figure_id}: best grain for {max(LOCALITIES)} localities "
            f"({int(best[max(LOCALITIES)])}) not strictly coarser than for "
            f"1 locality ({int(best[1])})"
        )
    for loc in LOCALITIES[1:]:
        if best[loc] < best[1]:
            problems.append(
                f"{fig.figure_id}: best grain for {loc} localities "
                f"({int(best[loc])}) finer than for 1 ({int(best[1])})"
            )

    # Parcel accounting: conservation, and the 2·L-per-step volume.  This
    # figure runs with no fault plan, so the resilience counters must all
    # be exactly zero and the conservation identity collapses to
    # sent == received.
    dropped = series["parcels dropped"]
    retransmitted = series["parcels retransmitted"]
    duplicates = series["duplicates discarded"]
    for loc in LOCALITIES:
        if sent[loc] != received[loc]:
            problems.append(
                f"{fig.figure_id}: {loc} localities: parcels sent "
                f"({int(sent[loc])}) != received ({int(received[loc])})"
            )
        for label, values in (
            ("dropped", dropped),
            ("retransmitted", retransmitted),
            ("duplicates discarded", duplicates),
        ):
            if values[loc] != 0:
                problems.append(
                    f"{fig.figure_id}: {loc} localities: "
                    f"{int(values[loc])} parcels {label} on a fault-free run"
                )
        if sent[loc] + retransmitted[loc] != (
            received[loc] + dropped[loc] + duplicates[loc]
        ):
            problems.append(
                f"{fig.figure_id}: {loc} localities: wire-copy "
                "conservation violated (sent + retransmitted != received "
                "+ dropped + duplicates-discarded)"
            )
    if sent[1] != 0:
        problems.append(
            f"{fig.figure_id}: 1 locality sent {int(sent[1])} parcels; "
            "a single node must not touch the network"
        )
    for loc in LOCALITIES[1:]:
        if sent[loc] <= 0:
            problems.append(
                f"{fig.figure_id}: {loc} localities sent no parcels"
            )

    # Network wait only exists where there is a network.
    for panel, series_list in fig.panels.items():
        if panel == summary:
            continue
        netwait = next(
            s for s in series_list if s.label == "network-wait idle"
        )
        values = [y for _, y in netwait.points]
        single = panel.endswith(" 1 localities")
        if single and any(v != 0.0 for v in values):
            problems.append(
                f"{fig.figure_id} {panel}: nonzero network-wait idle"
            )
        if not single and not any(v > 0.0 for v in values):
            problems.append(
                f"{fig.figure_id} {panel}: network-wait idle never positive"
            )
    return problems
