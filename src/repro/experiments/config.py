"""Experiment scales.

The paper computes 100 million grid points for 50 time steps (5 on the Xeon
Phi).  Simulating the *scheduling* of that problem in Python is possible in
principle but pointless in practice (millions of simulated tasks per data
point); the shape claims depend on tasks-per-core and grain size, both of
which are preserved at reduced scale.  Four presets:

- ``smoke`` — seconds; used by unit tests of the harness itself;
- ``bench`` — tens of seconds per figure; used by ``benchmarks/``;
- ``default`` — minutes per figure; used to generate EXPERIMENTS.md;
- ``paper`` — the full 10⁸-point problem, defined for completeness and
  documented as impractical under CPython (hours to days per figure).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Scale:
    """Sweep sizing for every experiment."""

    name: str
    total_points: int
    time_steps: int
    #: the paper uses fewer steps on the coprocessor (5 vs 50)
    phi_time_steps: int
    repetitions: int
    finest_partition: int
    #: grain samples per decade of the log sweep
    points_per_decade: int
    #: problem size for Fig. 6's linear-axis wait-time window (the window
    #: 10k-90k points/partition needs enough partitions per core count)
    fig6_total_points: int
    #: epochs the adaptive tuner may spend
    tuner_max_epochs: int = 25

    def time_steps_for(self, platform: str) -> int:
        return self.phi_time_steps if platform == "xeon-phi" else self.time_steps

    def with_(self, **kwargs) -> "Scale":
        return replace(self, **kwargs)


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        total_points=1 << 20,
        time_steps=3,
        phi_time_steps=2,
        repetitions=1,
        finest_partition=512,
        points_per_decade=2,
        fig6_total_points=1 << 21,
        tuner_max_epochs=12,
    ),
    "bench": Scale(
        name="bench",
        total_points=1 << 21,
        time_steps=5,
        phi_time_steps=2,
        repetitions=1,
        finest_partition=256,
        points_per_decade=3,
        fig6_total_points=1 << 22,
    ),
    "default": Scale(
        name="default",
        total_points=1 << 22,
        time_steps=10,
        phi_time_steps=3,
        repetitions=3,
        finest_partition=160,
        points_per_decade=3,
        fig6_total_points=1 << 23,
    ),
    "paper": Scale(
        name="paper",
        total_points=100_000_000,
        time_steps=50,
        phi_time_steps=5,
        repetitions=10,
        finest_partition=160,
        points_per_decade=4,
        fig6_total_points=100_000_000,
    ),
}


def get_scale(name: str) -> Scale:
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; expected one of {sorted(SCALES)}"
        ) from None
