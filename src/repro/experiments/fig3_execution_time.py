"""Fig. 3: execution time vs. task granularity across the four platforms.

Paper (Sec. IV): "On all platforms, execution time is large for very
fine-grained tasks due to overheads caused by task management and for
coarse-grained tasks where overheads are caused by poor load balance, not
enough work to spread among the cores.  In between these areas, we expect to
see the execution time flatten out."

One panel per platform (Fig. 3a-d), one series per core count, exactly the
core counts the paper plots (``PlatformSpec.fig3_core_counts``).
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.harness import check_high_at_fine_end, check_u_shape, stencil_report
from repro.experiments.report import FigureResult, Series
from repro.sim.platforms import PLATFORMS

FIGURE_ID = "fig3"
TITLE = "Execution Time vs. Task Granularity (partition size)"
PAPER_CLAIMS = [
    "execution time is U-shaped in partition size on every platform "
    "(task-management wall at the fine end, starvation at the coarse end)",
    "the curve flattens in the middle region",
    "beyond ~8 cores additional cores barely improve the best execution "
    "time (strong scaling is impaired by wait time)",
]

#: platform key -> paper sub-figure label
PANELS = {
    "sandy-bridge": "(a) Sandy Bridge",
    "ivy-bridge": "(b) Ivy Bridge",
    "haswell": "(c) Haswell",
    "xeon-phi": "(d) Xeon Phi (1 thread per core)",
}


def run(scale: Scale, platforms: list[str] | None = None) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="partition size (grid points)",
        ylabel="execution time (s)",
    )
    fig.notes.append(
        f"scale={scale.name}: {scale.total_points} grid points, "
        f"{scale.time_steps} time steps ({scale.phi_time_steps} on the Phi), "
        f"{scale.repetitions} repetition(s); the paper uses 1e8 points"
    )
    for key in platforms if platforms is not None else list(PANELS):
        spec = PLATFORMS[key]
        panel = PANELS[key]
        for cores in spec.fig3_core_counts:
            report = stencil_report(
                scale, key, cores, measure_single_core_reference=False
            )
            fig.add_series(
                panel,
                Series(f"{cores} cores", report.series("execution_time_s")),
            )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    for panel, series_list in fig.panels.items():
        for series in series_list:
            label = f"{FIGURE_ID} {panel} {series.label}"
            cores = int(series.label.split()[0])
            if cores == 1:
                # A single core cannot starve; only the fine-grained wall
                # is expected (Fig. 3's 1-core curves stay flat on the
                # right).  10% elevation suffices: the wall's height at the
                # sweep's finest grain depends on how fine the sweep goes
                # (the paper's 160-point partitions sit below the bench
                # scale's 256).
                problems += check_high_at_fine_end(
                    series.points,
                    label,
                    floor=1.1 * min(y for _, y in series.points),
                )
            else:
                problems += check_u_shape(series.points, label)
    # Strong-scaling impairment: the minimum time stops improving with cores.
    for panel, series_list in fig.panels.items():
        by_cores = {
            int(s.label.split()[0]): min(y for _, y in s.points)
            for s in series_list
        }
        cores_sorted = sorted(by_cores)
        if len(cores_sorted) >= 3:
            top = by_cores[cores_sorted[-1]]
            mid = by_cores[cores_sorted[-3]]
            if top < mid * 0.55:
                problems.append(
                    f"{FIGURE_ID} {panel}: best time still scales strongly at "
                    f"high core counts ({mid:.4g}s -> {top:.4g}s); the paper's "
                    "curves saturate"
                )
    return problems
