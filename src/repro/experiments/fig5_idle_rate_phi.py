"""Fig. 5: idle-rate and execution time on the Xeon Phi (16/32/60 cores).

See :mod:`repro.experiments.idle_rate_common` for the paper context.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.idle_rate_common import (
    FIG5_CORES,
    PAPER_CLAIMS_FIG5,
    idle_rate_shape_checks,
    run_idle_rate_figure,
)
from repro.experiments.report import FigureResult

FIGURE_ID = "fig5"
TITLE = "Idle-rate: Intel Xeon Phi (16/32/60 cores)"
PAPER_CLAIMS = PAPER_CLAIMS_FIG5


def run(scale: Scale) -> FigureResult:
    return run_idle_rate_figure(scale, "xeon-phi", FIG5_CORES, FIGURE_ID, TITLE)


def shape_checks(fig: FigureResult) -> list[str]:
    return idle_rate_shape_checks(fig, fine_floor=0.45, decoupled_cores=(32, 60))
