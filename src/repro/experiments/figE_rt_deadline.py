"""figE: deadline-miss rate vs grain — the task-size trade-off as timeliness.

The paper measures grain against *throughput*: execution time of one
stencil sweep.  This figure asks the real-time question instead: a
four-task set (one urgent sporadic controller, two heavy aligned
periodic spinners, one low-priority logger sharing a bus with the
controller) runs on the simulated HPX runtime, and every job either
meets its deadline or misses it.  Subtask grain is the *preemption
granularity* — cooperative tasks yield only at chunk boundaries — so
the grain axis trades the same two walls as the paper's Fig. 3, in
deadline units:

- **fine wall**: every chunk pays the full task-management overhead;
  at small grains the inflated demand exceeds capacity and *everything*
  misses (the paper's fine-grain wall, priced in deadlines);
- **coarse wall**: with monolithic chunks there are no preemption
  points; the urgent task waits behind whole in-flight spinner jobs
  longer than its deadline budget (the starvation wall — lost
  parallelism here is lost *urgency*).

Between them sits a valley of near-zero miss rate, and the valley moves:
scaling ``task_overhead_ns`` up (the overhead regimes) pushes the fine
wall right, so the best grain strictly coarsens — the figure's headline
claim, and the paper's "bigger overhead wants bigger tasks" restated
for deadlines.

A second panel fixes the valley grain and sweeps the resource protocol:
with protocol ``none`` the LOW-priority logger holds the bus while
starved behind the spinners and the urgent task's wait exceeds its
whole deadline budget (priority inversion, counted against a threshold
equal to that budget); priority inheritance re-queues the boosted
holder and bounds the wait below the threshold; the immediate priority
ceiling never lets the inversion begin.

Every claim is asserted by :func:`shape_checks`, including per-task
conservation (``released == on_time + missed``) on every cell and a
bit-identical rerun.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.rt import (
    PeriodicTaskSpec,
    RtServiceConfig,
    RtServiceOutcome,
    SporadicTaskSpec,
    TaskSet,
    run_rt_service,
)

FIGURE_ID = "figE"
TITLE = "Deadline-miss rate vs task grain across overhead regimes"
PAPER_CLAIMS = [
    "deadline-miss rate is U-shaped in grain: too-fine grains drown in "
    "per-chunk task-management overhead, too-coarse grains leave the "
    "urgent task stuck behind whole in-flight jobs",
    "the best grain strictly coarsens as task-management overhead grows "
    "— the paper's overhead/starvation trade-off priced in deadlines",
    "with no resource protocol the urgent task's blocked wait exceeds "
    "its whole deadline budget (priority inversion observed); priority "
    "inheritance bounds the wait below that budget and the priority "
    "ceiling prevents the inversion outright",
    "per-task conservation holds on every cell: every released job "
    "completes, on time or late — none are lost",
    "the configuration is bit-reproducible: miss sets, lateness samples "
    "and counters are identical across reruns",
]

PLATFORM = "haswell"
NUM_CORES = 2
WINDOW_NS = 2_400_000
#: grain sweep (ns); the full sweep spans both walls at every regime
GRAINS_FULL = (2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000)
GRAINS_SMOKE = (2_000, 8_000, 32_000, 128_000)
#: task-management overhead multipliers (the regimes)
FACTORS_FULL = (1.0, 4.0, 16.0)
FACTORS_SMOKE = (1.0, 16.0)
SCHEDULERS_FULL = ("rm", "rt-edf", "global-queue")
SCHEDULERS_SMOKE = ("rm", "rt-edf")
#: valley grain used by the protocol panel and the determinism rerun
VALLEY_GRAIN_NS = 8_000
#: a blocked wait longer than the urgent task's whole relative deadline
#: is, by itself, a guaranteed miss — the natural inversion threshold
INVERSION_THRESHOLD_NS = 48_000
PROTOCOLS_SWEPT = ("none", "inherit", "ceiling")


def taskset() -> TaskSet:
    """The figE task set (total utilization ~1.55 of 2 cores).

    ``ctrl`` is the urgent task: sporadic, tight deadline, needs the
    ``bus`` briefly.  The two ``spin`` tasks are deliberately released
    *in phase* so both cores are busy simultaneously — the coarse-grain
    wall needs whole in-flight jobs covering every core.  ``logger`` is
    the classic inversion ingredient: lowest rate (hence LOW priority
    under rate-monotonic assignment) with a long critical section on
    the bus the urgent task shares.
    """
    return TaskSet(
        tasks=(
            SporadicTaskSpec(
                name="ctrl",
                wcet_ns=12_000,
                relative_deadline_ns=48_000,
                min_separation_ns=100_000,
                resource="bus",
                critical_section_ns=4_000,
            ),
            PeriodicTaskSpec(
                name="spin-a",
                wcet_ns=104_000,
                relative_deadline_ns=640_000,
                period_ns=160_000,
                phase_ns=0,
                exec_variation=0.15,
            ),
            PeriodicTaskSpec(
                name="spin-b",
                wcet_ns=104_000,
                relative_deadline_ns=640_000,
                period_ns=160_000,
                phase_ns=0,
                exec_variation=0.15,
            ),
            PeriodicTaskSpec(
                name="logger",
                wcet_ns=40_000,
                relative_deadline_ns=800_000,
                period_ns=320_000,
                phase_ns=4_000,
                resource="bus",
                critical_section_ns=24_000,
            ),
        ),
        seed=3,
    )


def _small(scale: Scale) -> bool:
    return scale.name in ("smoke", "bench")


def _cell(
    ts: TaskSet,
    grain_ns: int,
    *,
    scheduler: str | None,
    overhead_factor: float = 1.0,
    protocol: str = "inherit",
) -> RtServiceOutcome:
    return run_rt_service(
        ts.with_grain(grain_ns),
        RtServiceConfig(
            platform=PLATFORM,
            num_cores=NUM_CORES,
            seed=1,
            window_ns=WINDOW_NS,
            protocol=protocol,
            scheduler=None if scheduler == "rt-edf" else scheduler,
            overhead_factor=overhead_factor,
            inversion_threshold_ns=INVERSION_THRESHOLD_NS,
        ),
    )


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="subtask grain (ns)",
        ylabel="deadline-miss rate",
        logx=True,
    )
    grains = GRAINS_SMOKE if _small(scale) else GRAINS_FULL
    factors = FACTORS_SMOKE if _small(scale) else FACTORS_FULL
    schedulers = SCHEDULERS_SMOKE if _small(scale) else SCHEDULERS_FULL
    ts = taskset()
    fig.notes.append(
        f"scale={scale.name}; {PLATFORM} x{NUM_CORES} cores; task set "
        f"utilization {ts.utilization():.2f} over a {WINDOW_NS / 1e6:.1f} ms "
        f"window; overhead regimes x{', x'.join(f'{f:g}' for f in factors)}; "
        f"protocol panel at grain {VALLEY_GRAIN_NS} ns with inversion "
        f"threshold {INVERSION_THRESHOLD_NS} ns (= ctrl's relative deadline)"
    )

    conservation_violations = 0

    # -- panels A..: miss rate vs grain, one panel per scheduler -----------
    for scheduler in schedulers:
        panel = f"miss rate vs grain ({scheduler})"
        for factor in factors:
            points: list[tuple[float, float]] = []
            for grain_ns in grains:
                out = _cell(
                    ts, grain_ns, scheduler=scheduler, overhead_factor=factor
                )
                if not out.conserved():
                    conservation_violations += 1
                points.append((float(grain_ns), out.miss_rate()))
            fig.add_series(panel, Series(f"overhead x{factor:g}", points))

    # -- panel: resource protocols at the valley grain ---------------------
    inversions: list[tuple[float, float]] = []
    max_blocked: list[tuple[float, float]] = []
    ctrl_missed: list[tuple[float, float]] = []
    for index, protocol in enumerate(PROTOCOLS_SWEPT):
        out = _cell(
            ts, VALLEY_GRAIN_NS, scheduler="rm", protocol=protocol
        )
        if not out.conserved():
            conservation_violations += 1
        inversions.append((float(index), float(out.resources.inversions)))
        max_blocked.append(
            (float(index), float(out.resources.max_blocked_ns))
        )
        ctrl_missed.append(
            (float(index), float(out.stats_for("ctrl").missed))
        )
    panel = "resource protocols at valley grain"
    fig.add_series(panel, Series("inversions", inversions))
    fig.add_series(panel, Series("max blocked (ns)", max_blocked))
    fig.add_series(panel, Series("ctrl deadline misses", ctrl_missed))
    fig.notes.append(
        "protocol panel x axis: 0 = none, 1 = inherit, 2 = ceiling "
        "(rate-monotonic priorities on the priority-local scheduler)"
    )

    # -- summary: determinism and conservation -----------------------------
    first = _cell(ts, VALLEY_GRAIN_NS, scheduler="rm", protocol="none")
    rerun = _cell(ts, VALLEY_GRAIN_NS, scheduler="rm", protocol="none")
    deterministic = (
        first.missed_jobs() == rerun.missed_jobs()
        and first.result.execution_time_ns == rerun.result.execution_time_ns
        and first.result.counters.values == rerun.result.counters.values
        and all(
            first.stats[i].lateness_ns == rerun.stats[i].lateness_ns
            for i in first.stats
        )
    )
    fig.add_series(
        "summary",
        Series(
            "determinism (1 = bit-identical rerun)",
            [(0.0, 1.0 if deterministic else 0.0)],
        ),
    )
    fig.add_series(
        "summary",
        Series(
            "conservation violations",
            [(0.0, float(conservation_violations))],
        ),
    )
    return fig


def _argmin_grain(points: list[tuple[float, float]]) -> float:
    """Grain with the lowest miss rate; ties break toward the finest."""
    best = min(m for _, m in points)
    return min(g for g, m in points if m == best)


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []

    def series_map(panel: str) -> dict[str, list[tuple[float, float]]]:
        if panel not in fig.panels:
            problems.append(f"{fig.figure_id}: panel {panel!r} missing")
            return {}
        return {s.label: sorted(s.points) for s in fig.panels[panel]}

    # -- the grain sweep panels --------------------------------------------
    sweep_panels = [p for p in fig.panels if p.startswith("miss rate vs grain")]
    if not sweep_panels:
        problems.append(f"{fig.figure_id}: no grain-sweep panels at all")
    for panel in sweep_panels:
        sweeps = series_map(panel)
        by_factor: list[tuple[float, list[tuple[float, float]]]] = []
        for label, points in sweeps.items():
            by_factor.append((float(label.rsplit("x", 1)[1]), points))
        by_factor.sort()
        if len(by_factor) < 2:
            problems.append(
                f"{fig.figure_id}: {panel}: need >= 2 overhead regimes to "
                "show the valley moving"
            )
            continue

        # U-shape at the baseline regime: both walls strictly above the
        # valley floor.
        _, base = by_factor[0]
        floor = min(m for _, m in base)
        if base[0][1] <= floor:
            problems.append(
                f"{fig.figure_id}: {panel}: no fine-grain wall at the "
                f"baseline regime (finest miss rate {base[0][1]:.2f} is "
                "the minimum)"
            )
        if base[-1][1] <= floor:
            problems.append(
                f"{fig.figure_id}: {panel}: no coarse-grain wall at the "
                f"baseline regime (coarsest miss rate {base[-1][1]:.2f} is "
                "the minimum)"
            )

        # Fine wall persists at the heaviest regime.
        _, heavy = by_factor[-1]
        if heavy[0][1] <= min(m for _, m in heavy):
            problems.append(
                f"{fig.figure_id}: {panel}: no fine-grain wall at the "
                "heaviest overhead regime"
            )

        # The headline: the best grain strictly coarsens with overhead.
        argmins = [_argmin_grain(points) for _, points in by_factor]
        if any(b <= a for a, b in zip(argmins, argmins[1:])):
            problems.append(
                f"{fig.figure_id}: {panel}: best grain does not strictly "
                f"coarsen with overhead (argmins {argmins})"
            )

    # -- the protocol panel -------------------------------------------------
    proto = series_map("resource protocols at valley grain")
    if proto:
        inversions = dict(proto["inversions"])
        blocked = dict(proto["max blocked (ns)"])
        missed = dict(proto["ctrl deadline misses"])
        none_x, inherit_x, ceiling_x = 0.0, 1.0, 2.0
        if inversions[none_x] <= 0:
            problems.append(
                f"{fig.figure_id}: protocol 'none' produced no priority "
                "inversion — there is nothing for inheritance to fix"
            )
        if inversions[inherit_x] != 0:
            problems.append(
                f"{fig.figure_id}: priority inheritance left "
                f"{inversions[inherit_x]:.0f} inversions"
            )
        if inversions[ceiling_x] != 0:
            problems.append(
                f"{fig.figure_id}: the priority ceiling left "
                f"{inversions[ceiling_x]:.0f} inversions"
            )
        if blocked[inherit_x] > INVERSION_THRESHOLD_NS:
            problems.append(
                f"{fig.figure_id}: inheritance did not bound blocking "
                f"(max wait {blocked[inherit_x]:.0f} ns > threshold "
                f"{INVERSION_THRESHOLD_NS} ns)"
            )
        if blocked[none_x] <= blocked[inherit_x]:
            problems.append(
                f"{fig.figure_id}: 'none' max blocked wait "
                f"({blocked[none_x]:.0f} ns) is not worse than "
                f"inheritance ({blocked[inherit_x]:.0f} ns)"
            )
        if blocked[ceiling_x] > blocked[inherit_x]:
            problems.append(
                f"{fig.figure_id}: the ceiling blocked longer "
                f"({blocked[ceiling_x]:.0f} ns) than inheritance "
                f"({blocked[inherit_x]:.0f} ns)"
            )
        if missed[none_x] < missed[inherit_x]:
            problems.append(
                f"{fig.figure_id}: ctrl missed fewer deadlines under "
                "'none' than under inheritance — the inversion is free?"
            )

    # -- summary -------------------------------------------------------------
    summary = series_map("summary")
    if summary:
        if dict(summary["determinism (1 = bit-identical rerun)"])[0.0] != 1.0:
            problems.append(
                f"{fig.figure_id}: two runs of the same cell disagreed — "
                "the RT stack broke determinism"
            )
        if dict(summary["conservation violations"])[0.0] != 0:
            problems.append(
                f"{fig.figure_id}: per-task conservation violated "
                "(released != on_time + missed)"
            )
    return problems
