"""Adaptive concurrency throttling (paper Sec. V related work + Sec. VI).

The paper plans to drive Porterfield's throttling scheduler and the APEX
policy engine "with our metrics" (Sec. VI).  This experiment does exactly
that on the simulated 28-core Haswell node: the
:class:`repro.core.policy.ThrottlingPolicy` hill-climbs the active-worker
count on live interval samples while HPX-Stencil runs.

Expected outcome: in the fine-grained regime — where the per-task
management cost grows superlinearly with active workers — throttling beats
the full 28-worker pool; in the medium-grain regime it must do no
meaningful harm (the controller settles near the full pool).
"""

from __future__ import annotations

from repro.apps.stencil1d import StencilConfig, build_stencil_graph
from repro.core.policy import PolicyEngine, ThrottlingPolicy
from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.runtime.runtime import Runtime, RuntimeConfig

FIGURE_ID = "throttling"
TITLE = "Adaptive concurrency throttling driven by the paper's metrics"
PAPER_CLAIMS = [
    "the dynamic metrics can drive a Porterfield-style throttling policy "
    "(Sec. VI): at fine grain, reducing active workers cuts contention and "
    "improves completion time",
    "at medium grain the policy does no meaningful harm",
]

PLATFORM = "haswell"
CORES = 28
#: throttled / plain time must be below this at the finest probe grain
FINE_GAIN_REQUIRED = 0.90
#: and above this (no harm) at the medium grain
MEDIUM_HARM_ALLOWED = 1.15


def _fine_and_medium_grains(scale: Scale) -> tuple[int, int]:
    fine = max(scale.finest_partition, scale.total_points >> 12)
    # Medium: 256 partitions per step — enough tasks per core that the
    # starvation guard leaves the controller alone.
    medium = scale.total_points >> 8
    return fine, medium


def _run_once(scale: Scale, grain: int, throttle: bool, seed: int):
    rt = Runtime(RuntimeConfig(platform=PLATFORM, num_cores=CORES, seed=seed))
    cfg = StencilConfig(
        total_points=scale.total_points,
        partition_points=grain,
        time_steps=scale.time_steps,
    )
    build_stencil_graph(rt, cfg)
    if not throttle:
        return rt.run(), None, CORES
    policy = ThrottlingPolicy()
    engine = PolicyEngine(rt, interval_ns=100_000).add_policy(policy)
    result = engine.run()
    return result, policy, rt.executor.active_worker_limit


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="partition size (grid points)",
        ylabel="execution time (s)",
    )
    fine, medium = _fine_and_medium_grains(scale)
    plain_pts, throttled_pts, limit_pts = [], [], []
    for grain in (fine, medium):
        plain, _, _ = _run_once(scale, grain, throttle=False, seed=17)
        throttled, policy, limit = _run_once(scale, grain, throttle=True, seed=17)
        plain_pts.append((float(grain), plain.execution_time_s))
        throttled_pts.append((float(grain), throttled.execution_time_s))
        limit_pts.append((float(grain), float(limit)))
        assert policy is not None
        fig.notes.append(
            f"grain={grain}: plain={plain.execution_time_s:.5f}s, "
            f"throttled={throttled.execution_time_s:.5f}s, "
            f"final active workers={limit}/{CORES}, "
            f"{len(policy.decisions)} adjustments"
        )
    panel = f"{PLATFORM} {CORES} cores"
    fig.add_series(panel, Series("plain (28 workers)", plain_pts))
    fig.add_series(panel, Series("throttled", throttled_pts))
    fig.add_series(panel, Series("final worker limit", limit_pts))
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    (panel,) = fig.panels
    by_label = {s.label: dict(s.points) for s in fig.panels[panel]}
    plain = by_label["plain (28 workers)"]
    throttled = by_label["throttled"]
    grains = sorted(plain)
    fine, medium = grains[0], grains[-1]
    fine_ratio = throttled[fine] / plain[fine]
    if fine_ratio > FINE_GAIN_REQUIRED:
        problems.append(
            f"throttling: no fine-grain win (throttled/plain = {fine_ratio:.3f}, "
            f"required <= {FINE_GAIN_REQUIRED})"
        )
    medium_ratio = throttled[medium] / plain[medium]
    if medium_ratio > MEDIUM_HARM_ALLOWED:
        problems.append(
            f"throttling: harms medium grain (ratio {medium_ratio:.3f} > "
            f"{MEDIUM_HARM_ALLOWED})"
        )
    limits = by_label["final worker limit"]
    if limits[fine] >= CORES:
        problems.append("throttling: never actually reduced workers at fine grain")
    return problems
