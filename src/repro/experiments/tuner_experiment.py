"""Adaptive grain-size tuning (the paper's future work, Sec. VI).

"For future work, we will apply the methodology to dynamically adapt grain
size to minimize scheduling overheads and improve performance."  The
experiment starts the :class:`repro.core.tuner.AdaptiveGrainTuner` from both
a far-too-fine and a far-too-coarse initial grain on 16-core Haswell and
verifies that, using only the paper's dynamic metrics (no sweep), it
converges to a grain whose execution time is close to the sweep oracle's.
"""

from __future__ import annotations

from repro.apps.stencil1d import stencil_run_fn
from repro.core.selection import select_by_min_time
from repro.core.tuner import AdaptiveGrainTuner, TunerConfig
from repro.experiments.config import Scale
from repro.experiments.harness import stencil_report
from repro.experiments.report import FigureResult, Series
from repro.runtime.runtime import RuntimeConfig

FIGURE_ID = "tuner"
TITLE = "Adaptive grain-size tuning (Sec. VI future work, implemented)"
PAPER_CLAIMS = [
    "the dynamic metrics suffice to adapt grain size at runtime: starting "
    "from either extreme, feedback on idle-rate/overhead/starvation "
    "converges near the best grain without sweeping",
]

PLATFORM = "haswell"
CORES = 16
#: acceptable slowdown of the tuned grain vs the sweep oracle
TUNED_SLACK = 1.25


def _make_tuner(scale: Scale, initial_grain: int, seed: int) -> AdaptiveGrainTuner:
    run_fn = stencil_run_fn(scale.total_points, scale.time_steps)
    config = TunerConfig(
        min_grain=64,
        max_grain=scale.total_points,
        initial_grain=initial_grain,
        max_epochs=scale.tuner_max_epochs,
        # Deterministic (fixed-seed) epochs make small true improvements
        # trustworthy, so the refiner can follow shallow gradients.
        refine_improvement=0.005,
    )
    # One fixed seed for every epoch: the run-level jitter models slow
    # OS/allocator state, which is shared by consecutive epochs of one
    # application run — and a moving seed would bury the refinement phase's
    # 2% improvement threshold in noise.
    return AdaptiveGrainTuner(
        epoch_fn=run_fn,
        runtime_config_factory=lambda epoch: RuntimeConfig(
            platform=PLATFORM, num_cores=CORES, seed=seed
        ),
        config=config,
    )


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="epoch",
        ylabel="grain (points/partition)",
        logx=False,
    )
    oracle_report = stencil_report(
        scale, PLATFORM, CORES, measure_single_core_reference=False
    )
    oracle = select_by_min_time(oracle_report)
    fig.notes.append(
        f"sweep oracle: grain={oracle.grain} "
        f"time={oracle.best_execution_time_s:.5f}s"
    )

    results = {}
    for label, start in (
        ("from-too-fine", 64),
        ("from-too-coarse", scale.total_points),
    ):
        tuner = _make_tuner(scale, start, seed=11)
        outcome = tuner.run()
        results[label] = outcome
        fig.add_series(
            "trajectories",
            Series(label, [(s.epoch, float(s.grain)) for s in outcome.steps]),
        )
        fig.add_series(
            "epoch times",
            Series(label, [(s.epoch, s.execution_time_s) for s in outcome.steps]),
        )
        fig.notes.append(
            f"{label}: converged={outcome.converged} in {outcome.epochs} "
            f"epochs; final grain={outcome.final_grain} "
            f"time={outcome.final_time_s:.5f}s "
            f"({outcome.final_time_s / oracle.best_execution_time_s:.3f}x oracle)"
        )
    fig.tuner_results = results  # type: ignore[attr-defined]
    fig.oracle = oracle  # type: ignore[attr-defined]
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    results = getattr(fig, "tuner_results", {})
    oracle = getattr(fig, "oracle", None)
    if not results or oracle is None:
        return ["tuner: results not attached"]
    for label, outcome in results.items():
        if not outcome.converged:
            problems.append(f"tuner {label}: did not converge")
        ratio = outcome.final_time_s / oracle.best_execution_time_s
        if ratio > TUNED_SLACK:
            problems.append(
                f"tuner {label}: final grain {outcome.final_grain} is "
                f"{ratio:.2f}x the oracle time (allowed {TUNED_SLACK}x)"
            )
    return problems
