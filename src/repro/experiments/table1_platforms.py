"""Table I: platform specifications.

Purely descriptive — the table renders the platform database the simulator
is configured with, so a reader can diff it against the paper's Table I
directly.  The shape check verifies the published numbers survived
transcription into :mod:`repro.sim.platforms`.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.sim.platforms import PLATFORMS
from repro.util.tables import format_table

FIGURE_ID = "table1"
TITLE = "Platform Specifications (Table I)"
PAPER_CLAIMS = [
    "Haswell node: Xeon E5-2695 v3, 2.3 GHz (3.3 turbo), 28 cores, "
    "32 KB L1 + 256 KB L2 per core, 35 MB shared, 128 GB RAM",
    "Xeon Phi: 1.2 GHz, 61 cores, 4-way hardware threading, 512 KB L2, 8 GB",
    "Sandy Bridge: Xeon E5 2690, 2.9 GHz (3.8 turbo), 16 cores, 20 MB shared",
    "Ivy Bridge: 2.3 GHz, 20 cores, 35 MB shared, 128 GB RAM",
]


def render_table() -> str:
    headers = [
        "node", "processor", "clock (GHz)", "turbo", "uarch", "HW threads",
        "cores", "cache/core", "shared", "RAM (GB)",
    ]
    rows = []
    for spec in PLATFORMS.values():
        rows.append([
            spec.name,
            spec.processor,
            spec.clock_ghz,
            spec.turbo_ghz if spec.turbo_ghz else "-",
            spec.microarchitecture,
            f"{spec.hardware_threads_per_core}-way"
            + ("" if spec.hardware_threading_active else " (deactivated)"),
            spec.cores,
            f"32KB L1, {spec.l2_bytes // 1024}KB L2",
            f"{spec.shared_l3_bytes // (1024 * 1024)}MB" if spec.shared_l3_bytes else "-",
            spec.ram_bytes // (1024 ** 3),
        ])
    return format_table(headers, rows, title="Table I: Platform Specifications")


def run(scale: Scale) -> FigureResult:  # noqa: ARG001 - uniform signature
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="platform",
        ylabel="",
        logx=False,
    )
    # Encode the numeric columns as series so the generic renderer works;
    # the full text table goes into the notes.
    fig.add_series(
        "specifications",
        Series("cores", [(i, s.cores) for i, s in enumerate(PLATFORMS.values())]),
    )
    fig.add_series(
        "specifications",
        Series("clock_ghz", [(i, s.clock_ghz) for i, s in enumerate(PLATFORMS.values())]),
    )
    fig.notes.append(render_table())
    return fig


def shape_checks(fig: FigureResult) -> list[str]:  # noqa: ARG001
    """Verify the transcribed Table I values."""
    problems = []
    expectations = {
        "haswell": dict(cores=28, clock_ghz=2.3, turbo_ghz=3.3, numa_domains=2),
        "xeon-phi": dict(cores=61, clock_ghz=1.2, turbo_ghz=None,
                         hardware_threads_per_core=4),
        "sandy-bridge": dict(cores=16, clock_ghz=2.9, turbo_ghz=3.8),
        "ivy-bridge": dict(cores=20, clock_ghz=2.3),
    }
    for key, fields in expectations.items():
        spec = PLATFORMS[key]
        for attr, expected in fields.items():
            actual = getattr(spec, attr)
            if actual != expected:
                problems.append(f"{key}.{attr}: {actual} != paper's {expected}")
    if PLATFORMS["haswell"].l2_bytes != 256 * 1024:
        problems.append("haswell L2 should be 256 KB")
    if PLATFORMS["xeon-phi"].l2_bytes != 512 * 1024:
        problems.append("xeon-phi L2 should be 512 KB")
    if PLATFORMS["xeon-phi"].shared_l3_bytes is not None:
        problems.append("xeon-phi has no shared L3 in Table I")
    return problems
