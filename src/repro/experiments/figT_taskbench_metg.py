"""figT: Task Bench METG(50%) across dependence patterns (Haswell model).

The paper's grain story is told on one application (the 1-d stencil).  Task
Bench (arXiv:1908.05790; applied to HPX by Wu et al., arXiv:2207.12127)
asks the same question pattern-by-pattern: parameterize the *dependence
structure* of the workload and report **METG(50%)** — the minimum task
granularity at which the runtime still spends half the core-time budget in
task bodies.  In this repro, efficiency is literally ``1 - idle-rate``
(Eq. 1), so METG(50%) is the grain where the paper's headline counter
crosses 50 % — the two methodologies meet in one number.

The figure plots the efficiency-vs-grain curve per pattern at 8 cores, the
METG(50%) catalogue comparison, and METG vs core count for the stencil
pattern.  Shape checks assert the claims instead of eyeballing them:

- dependence structure costs grain: ``trivial`` (no edges) has the finest
  METG, strictly finer than ``stencil_1d``, which is no coarser than the
  denser ``fft`` butterfly;
- METG is monotone non-decreasing in core count (more cores, more
  contention, coarser minimum grain) — the Task Bench strong-scaling wall;
- the paper's own selection rule (idle-rate <= 30 %) lands *inside* the
  METG(50 %)-acceptable region: the chosen grain is coarser than METG and
  its efficiency clears the 50 % bar with margin;
- a full rerun of the stencil characterization is bit-identical — the METG
  harness inherits the simulator's determinism.
"""

from __future__ import annotations

from repro.core.characterize import characterize
from repro.core.selection import select_by_idle_rate
from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.taskbench.driver import taskbench_run_fn
from repro.taskbench.metg import default_grain_sweep, metg
from repro.taskbench.patterns import TaskBenchSpec

FIGURE_ID = "figT"
TITLE = "Task Bench: METG(50%) by dependence pattern (simulated Haswell)"
PAPER_CLAIMS = [
    "dependence structure costs granularity: METG(50%) orders trivial < "
    "stencil_1d <= fft at a fixed core count (Task Bench / Wu et al.)",
    "METG(50%) is monotone non-decreasing in core count — the "
    "strong-scaling overhead wall",
    "the idle-rate<=30% selection rule (Sec. IV-A) picks a grain inside "
    "the METG(50%)-acceptable region",
    "the METG harness is bit-reproducible for a fixed seed",
]

PLATFORM = "haswell"
SCHEDULER = "priority-local"
#: fixed grid width: wide enough that the pattern orderings resolve
#: (narrower grids blur the stencil-vs-fft separation into the bisection
#: tolerance); steps shrink with scale instead
WIDTH = 64
#: catalogue compared at the fixed core count, in plotting order
METG_PATTERNS = ("trivial", "serial_chain", "stencil_1d", "fft", "spread")
CORES = 8
METG_TARGET = 0.5
IDLE_THRESHOLD = 0.30
SEED = 0


def _steps(scale: Scale) -> int:
    return 8 if scale.name == "smoke" else 16


def _core_counts(scale: Scale) -> tuple[int, ...]:
    return (1, 2, CORES) if scale.name == "smoke" else (1, 2, 4, CORES)


def grain_sweep(scale: Scale) -> list[int]:
    """200 ns .. 100 us: brackets the Haswell overhead wall (~1-2 us) from
    both sides with room for the idle-rate rule to clear 30 %."""
    per_decade = 2 if scale.name == "smoke" else max(3, scale.points_per_decade)
    return default_grain_sweep(per_decade=per_decade)


def _spec(pattern: str, scale: Scale) -> TaskBenchSpec:
    return TaskBenchSpec(
        pattern=pattern, width=WIDTH, steps=_steps(scale), seed=SEED
    )


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="task grain (ns of compute)",
        ylabel="efficiency (1 - idle-rate) / METG (ns)",
    )
    grains = grain_sweep(scale)
    steps = _steps(scale)
    fig.notes.append(
        f"scale={scale.name}; platform={PLATFORM}; grid {WIDTH}x{steps}; "
        f"grains {grains[0]}..{grains[-1]} ns; METG target "
        f"{METG_TARGET:.0%}; seed={SEED}"
    )

    # Per-pattern efficiency curves and METG at the fixed core count.
    curves_panel = f"efficiency vs grain ({CORES} cores)"
    metg_by_pattern: dict[str, object] = {}
    catalogue_points: list[tuple[float, float]] = []
    for position, pattern in enumerate(METG_PATTERNS, start=1):
        result = metg(
            _spec(pattern, scale),
            target=METG_TARGET,
            grains=grains,
            platform=PLATFORM,
            num_cores=CORES,
            scheduler=SCHEDULER,
            seed=SEED,
        )
        metg_by_pattern[pattern] = result
        fig.add_series(
            curves_panel,
            Series(pattern, [(p.grain, p.efficiency) for p in result.curve]),
        )
        catalogue_points.append((position, result.interpolated_grain))
        fig.notes.append(result.summary())

    # METG vs core count on the stencil pattern (the paper's application).
    stencil_spec = _spec("stencil_1d", scale)
    metg_vs_cores: list[tuple[float, float]] = []
    for cores in _core_counts(scale):
        if cores == CORES:
            result = metg_by_pattern["stencil_1d"]
        else:
            result = metg(
                stencil_spec,
                target=METG_TARGET,
                grains=grains,
                platform=PLATFORM,
                num_cores=cores,
                scheduler=SCHEDULER,
                seed=SEED,
            )
        metg_vs_cores.append((cores, result.interpolated_grain))

    # The paper's selection rule, applied through the shared methodology
    # driver, must land inside the METG-acceptable region.
    report = characterize(
        taskbench_run_fn(stencil_spec),
        grains,
        platform=PLATFORM,
        num_cores=CORES,
        scheduler=SCHEDULER,
        repetitions=1,
        seed=SEED,
        measure_single_core_reference=False,
    )
    outcome = select_by_idle_rate(report, IDLE_THRESHOLD)
    chosen_idle = report.point_at(outcome.grain).idle_rate.mean
    fig.notes.append(
        f"idle-rate<={IDLE_THRESHOLD:.0%} rule on stencil_1d @ {CORES} "
        f"cores: grain={outcome.grain} ns (idle {chosen_idle:.3f}); "
        + outcome.summary()
    )

    # Determinism: the whole stencil METG characterization, rerun.
    rerun = metg(
        stencil_spec,
        target=METG_TARGET,
        grains=grains,
        platform=PLATFORM,
        num_cores=CORES,
        scheduler=SCHEDULER,
        seed=SEED,
    )
    identical = rerun == metg_by_pattern["stencil_1d"]

    summary = "summary"
    fig.add_series(
        summary,
        Series("METG(50%) by pattern (x = catalogue index)", catalogue_points),
    )
    fig.add_series(
        summary, Series("METG(50%) vs cores (stencil_1d)", metg_vs_cores)
    )
    fig.add_series(
        summary,
        Series(
            f"selected grain (idle<={IDLE_THRESHOLD:.0%}, stencil_1d)",
            [(float(CORES), float(outcome.grain))],
        ),
    )
    fig.add_series(
        summary,
        Series(
            "idle-rate at selected grain", [(float(CORES), chosen_idle)]
        ),
    )
    fig.add_series(
        summary,
        Series(
            "bit-identical rerun (1 = yes)",
            [(float(CORES), 1.0 if identical else 0.0)],
        ),
    )
    fig.notes.append(
        "catalogue index: "
        + ", ".join(f"{i}={p}" for i, p in enumerate(METG_PATTERNS, start=1))
    )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    if "summary" not in fig.panels:
        return [f"{fig.figure_id}: summary panel missing"]
    series = {s.label: dict(s.points) for s in fig.panels["summary"]}

    catalogue = series["METG(50%) by pattern (x = catalogue index)"]
    by_pattern = {
        pattern: catalogue[float(i)]
        for i, pattern in enumerate(METG_PATTERNS, start=1)
    }

    # The headline ordering: structure costs grain.
    if not by_pattern["trivial"] < by_pattern["stencil_1d"]:
        problems.append(
            f"{fig.figure_id}: METG(trivial) {by_pattern['trivial']:.0f} "
            f"not strictly finer than METG(stencil_1d) "
            f"{by_pattern['stencil_1d']:.0f}"
        )
    if not by_pattern["stencil_1d"] <= by_pattern["fft"]:
        problems.append(
            f"{fig.figure_id}: METG(stencil_1d) "
            f"{by_pattern['stencil_1d']:.0f} coarser than METG(fft) "
            f"{by_pattern['fft']:.0f}"
        )
    # trivial is the catalogue's floor, up to the bisection tolerance.
    floor = by_pattern["trivial"] * 0.97
    for pattern, value in by_pattern.items():
        if value < floor:
            problems.append(
                f"{fig.figure_id}: METG({pattern}) {value:.0f} below the "
                f"dependence-free floor {by_pattern['trivial']:.0f}"
            )

    # Strong scaling: METG never improves with more cores.
    vs_cores = sorted(series["METG(50%) vs cores (stencil_1d)"].items())
    for (c_lo, m_lo), (c_hi, m_hi) in zip(vs_cores, vs_cores[1:]):
        if m_hi < m_lo:
            problems.append(
                f"{fig.figure_id}: METG fell from {m_lo:.0f} at "
                f"{int(c_lo)} cores to {m_hi:.0f} at {int(c_hi)} cores"
            )

    # The idle-rate rule lands inside the METG-acceptable region.
    selected = next(
        v for k, v in series.items() if k.startswith("selected grain")
    )
    chosen = selected[float(CORES)]
    idle = series["idle-rate at selected grain"][float(CORES)]
    metg_at_cores = dict(vs_cores)[float(CORES)]
    if chosen < metg_at_cores:
        problems.append(
            f"{fig.figure_id}: idle-rate rule chose grain {chosen:.0f} "
            f"finer than METG(50%) {metg_at_cores:.0f}"
        )
    if idle > IDLE_THRESHOLD:
        problems.append(
            f"{fig.figure_id}: selected grain's idle-rate {idle:.3f} "
            f"exceeds the {IDLE_THRESHOLD:.0%} threshold (sweep never "
            "cleared the walls)"
        )
    if 1.0 - idle < METG_TARGET:
        problems.append(
            f"{fig.figure_id}: selected grain's efficiency "
            f"{1.0 - idle:.3f} below the METG target {METG_TARGET:.0%}"
        )

    if series["bit-identical rerun (1 = yes)"][float(CORES)] != 1.0:
        problems.append(
            f"{fig.figure_id}: rerun of the stencil_1d METG "
            "characterization was not bit-identical"
        )

    # Efficiency curves are probabilities, and the dependence-free pattern
    # dominates every structured one wherever both were sampled.
    curves = fig.panels.get(f"efficiency vs grain ({CORES} cores)", [])
    efficiencies = {s.label: dict(s.points) for s in curves}
    for label, points in efficiencies.items():
        if any(not 0.0 <= e <= 1.0 for e in points.values()):
            problems.append(
                f"{fig.figure_id}: {label} efficiency outside [0, 1]"
            )
    trivial_curve = efficiencies.get("trivial", {})
    for label, points in efficiencies.items():
        if label == "trivial":
            continue
        for grain, eff in points.items():
            reference = trivial_curve.get(grain)
            if reference is not None and eff > reference + 1e-9:
                problems.append(
                    f"{fig.figure_id}: {label} beats trivial at grain "
                    f"{grain} ({eff:.4f} > {reference:.4f})"
                )
                break
    return problems
