"""Fig. 6: wait time per HPX-thread on Haswell.

Paper (Sec. IV-C): "Results from our experiments show that the wait time per
HPX-thread increases with the number of cores and with the partition size."

The paper plots partition sizes 10,000-90,000 on a *linear* axis for 4, 8,
16 and 28 cores.  The tasks-per-core regime matters here: at the paper's
10⁸-point scale this window has 1,100+ partitions per step, far more than 28
cores, so starvation never intrudes.  The experiment therefore uses
``scale.fig6_total_points`` (larger than the generic sweep's default) to
stay in the same regime.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.harness import check_monotone_increase, stencil_report
from repro.experiments.report import FigureResult, Series

FIGURE_ID = "fig6"
TITLE = "Wait Time per HPX-Thread (Haswell)"
PAPER_CLAIMS = [
    "wait time per task increases with partition size",
    "wait time per task increases with the number of cores",
]

CORES = (4, 8, 16, 28)
#: the paper's linear-axis partition window
GRAINS = (10_000, 30_000, 50_000, 70_000, 90_000)


def grains_for(scale: Scale) -> list[int]:
    """The paper's window, shrunk proportionally for small smoke scales."""
    if scale.fig6_total_points >= GRAINS[-1] * 40:
        return list(GRAINS)
    factor = scale.fig6_total_points / (GRAINS[-1] * 40)
    return sorted({max(64, int(g * factor)) for g in GRAINS})


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="partition size (grid points)",
        ylabel="wait time per task (us)",
        logx=False,
    )
    grains = grains_for(scale)
    fig.notes.append(
        f"scale={scale.name}; total points={scale.fig6_total_points}; "
        f"grains={grains}"
    )
    for nc in CORES:
        report = stencil_report(
            scale,
            "haswell",
            nc,
            grains=grains,
            total_points=scale.fig6_total_points,
            measure_single_core_reference=True,
        )
        fig.add_series(
            f"haswell {len(CORES)} core counts",
            Series(
                f"{nc} cores",
                [(g, w / 1e3) for g, w in report.series("wait_per_task_ns")],
            ),
        )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    (panel,) = fig.panels
    series_list = fig.panels[panel]
    for series in series_list:
        problems += check_monotone_increase(
            series.points, f"{FIGURE_ID} {series.label} vs partition size",
            slack=0.10,
        )
    # Ordering in core count at each shared grain.
    by_cores = {int(s.label.split()[0]): dict(s.points) for s in series_list}
    cores_sorted = sorted(by_cores)
    for lo, hi in zip(cores_sorted, cores_sorted[1:]):
        shared = set(by_cores[lo]) & set(by_cores[hi])
        bad = [
            g for g in shared
            if by_cores[hi][g] < by_cores[lo][g] * 0.95 - 1e-12
        ]
        if bad:
            problems.append(
                f"{FIGURE_ID}: wait time at {hi} cores below {lo} cores for "
                f"grains {sorted(bad)}"
            )
    return problems
