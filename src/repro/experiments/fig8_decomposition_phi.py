"""Fig. 8: thread management (TM) and wait time (WT) on the Xeon Phi.

See :mod:`repro.experiments.decomposition_common` for the paper context.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.decomposition_common import (
    PAPER_CLAIMS,
    decomposition_shape_checks,
    run_decomposition_figure,
)
from repro.experiments.report import FigureResult

FIGURE_ID = "fig8"
TITLE = "HPX-Thread Management (TM) and Wait Time (WT): Intel Xeon Phi"
CORES = (16, 32, 60)

__all__ = ["FIGURE_ID", "TITLE", "PAPER_CLAIMS", "run", "shape_checks"]


def run(scale: Scale) -> FigureResult:
    return run_decomposition_figure(scale, "xeon-phi", CORES, FIGURE_ID, TITLE)


def shape_checks(fig: FigureResult) -> list[str]:
    return decomposition_shape_checks(fig)
