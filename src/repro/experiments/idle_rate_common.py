"""Shared implementation of Figs. 4 and 5 (idle-rate vs. grain size).

Paper (Sec. IV-A): "For very fine-grained tasks (small partition sizes)
there are a large number of tasks to manage, and the task management is a
large percentage, up to 90%, of the execution time. [...] On the other
extreme for very coarse-grained tasks idle-rate increases due to starvation."

And the key negative result that motivates the wait-time metric: "for
partition sizes from 20,000 to 100,000 even though idle-rate increases, the
execution time decreases" — idle-rate alone cannot locate the optimum.

Fig. 4 is Haswell at 8/16/28 cores; Fig. 5 is the Xeon Phi at 16/32/60.
Each panel carries two series: execution time (seconds) and idle-rate (0-1).
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.harness import stencil_report
from repro.experiments.report import FigureResult, Series

FIG4_CORES = (8, 16, 28)
FIG5_CORES = (16, 32, 60)

PAPER_CLAIMS_FIG4 = [
    "idle-rate reaches up to ~90% at the finest grains",
    "idle-rate falls through the medium region and rises again at the "
    "coarse end (starvation)",
    "there is a region where execution time decreases although idle-rate "
    "increases (wait-time region), so idle-rate alone cannot pick the "
    "optimal grain",
    "a 30% idle-rate threshold picks a grain whose time is within one "
    "standard deviation of the minimum (checked in the selection experiment)",
]
PAPER_CLAIMS_FIG5 = PAPER_CLAIMS_FIG4[:3]


def _run(
    scale: Scale, platform: str, cores: tuple[int, ...], figure_id: str, title: str
) -> FigureResult:
    fig = FigureResult(
        figure_id=figure_id,
        title=title,
        xlabel="partition size (grid points)",
        ylabel="execution time (s) / idle-rate",
    )
    fig.notes.append(f"scale={scale.name}; platform={platform}")
    for nc in cores:
        report = stencil_report(
            scale, platform, nc, measure_single_core_reference=False
        )
        panel = f"{platform} {nc} cores"
        fig.add_series(
            panel, Series("execution time (s)", report.series("execution_time_s"))
        )
        fig.add_series(panel, Series("idle-rate", report.series("idle_rate")))
    return fig


def _shape_checks(
    fig: FigureResult, fine_floor: float, decoupled_cores: tuple[int, ...]
) -> list[str]:
    problems: list[str] = []
    decoupled_panels: list[str] = []
    for panel, series_list in fig.panels.items():
        idle = next(s for s in series_list if s.label == "idle-rate")
        time = next(s for s in series_list if s.label == "execution time (s)")
        label = f"{fig.figure_id} {panel}"
        ys = [y for _, y in idle.points]
        if ys[0] < fine_floor:
            problems.append(
                f"{label}: fine-end idle-rate {ys[0]:.2f} below {fine_floor}"
            )
        mid_min = min(ys)
        if mid_min > 0.35:
            problems.append(
                f"{label}: idle-rate never drops below 0.35 (min {mid_min:.2f})"
            )
        if ys[-1] < mid_min + 0.15:
            problems.append(
                f"{label}: no coarse-end idle-rate rise "
                f"({ys[-1]:.2f} vs min {mid_min:.2f})"
            )
        # The wait-time region: somewhere, idle-rate rises while time
        # falls.  The paper reports this for specific panels (Figs. 4a/4b
        # and 5b/5c); at reduced scale we require the effect in at least
        # one of those panels.
        cores = int(panel.split()[-2])
        if cores not in decoupled_cores:
            continue
        t = dict(time.points)
        for (x0, i0), (x1, i1) in zip(idle.points, idle.points[1:]):
            if x0 in t and x1 in t and i1 > i0 + 1e-9 and t[x1] < t[x0] * 0.999:
                decoupled_panels.append(panel)
                break
    if not decoupled_panels:
        problems.append(
            f"{fig.figure_id}: no panel with a region where idle-rate rises "
            "while execution time falls (the paper's motivation for the "
            "wait-time metric)"
        )
    return problems


run_idle_rate_figure = _run
idle_rate_shape_checks = _shape_checks
