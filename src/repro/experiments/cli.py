"""Command-line driver: ``repro-experiments``.

Examples::

    repro-experiments list
    repro-experiments fig4 --scale smoke
    repro-experiments all --scale default --markdown EXPERIMENTS.generated.md

Each experiment prints its rendered tables/plots and the outcome of its
shape checks; the exit code is the number of experiments whose checks
failed.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from types import ModuleType

from repro.experiments.config import SCALES, get_scale
from repro.experiments.report import FigureResult

#: experiment name -> implementing module
EXPERIMENT_MODULES: dict[str, str] = {
    "table1": "repro.experiments.table1_platforms",
    "fig3": "repro.experiments.fig3_execution_time",
    "fig4": "repro.experiments.fig4_idle_rate_haswell",
    "fig5": "repro.experiments.fig5_idle_rate_phi",
    "fig6": "repro.experiments.fig6_wait_time",
    "fig7": "repro.experiments.fig7_decomposition_haswell",
    "fig8": "repro.experiments.fig8_decomposition_phi",
    "fig9": "repro.experiments.fig9_pending_queue_haswell",
    "fig10": "repro.experiments.fig10_pending_queue_phi",
    "figD": "repro.experiments.figD_distributed_grain",
    "figR": "repro.experiments.figR_resilience_grain",
    "figC": "repro.experiments.figC_crash_recovery",
    "figT": "repro.experiments.figT_taskbench_metg",
    "figO": "repro.experiments.figO_overload",
    "figQ": "repro.experiments.figQ_qos_isolation",
    "figE": "repro.experiments.figE_rt_deadline",
    "figH": "repro.experiments.figH_tail_tolerance",
    "selection": "repro.experiments.selection_experiment",
    "tuner": "repro.experiments.tuner_experiment",
    "ablation": "repro.experiments.ablations",
    "throttling": "repro.experiments.throttling_experiment",
    "cov": "repro.experiments.cov_experiment",
    "wavefront": "repro.experiments.wavefront_generality",
}


def load_experiment(name: str) -> ModuleType:
    try:
        module_name = EXPERIMENT_MODULES[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; expected one of "
            f"{sorted(EXPERIMENT_MODULES)} or 'all'"
        ) from None
    return importlib.import_module(module_name)


def run_experiment(name: str, scale_name: str) -> tuple[FigureResult, list[str], float]:
    """Run one experiment; returns (result, check problems, wall seconds)."""
    module = load_experiment(name)
    scale = get_scale(scale_name)
    start = time.perf_counter()
    fig = module.run(scale)
    problems = module.shape_checks(fig)
    return fig, problems, time.perf_counter() - start


def experiment_markdown(name: str, fig: FigureResult, problems: list[str]) -> str:
    """EXPERIMENTS.md section: paper claims vs measured data vs checks."""
    module = load_experiment(name)
    lines = [f"## {fig.figure_id}: {fig.title}", ""]
    lines.append("**Paper claims**")
    lines.append("")
    for claim in getattr(module, "PAPER_CLAIMS", []):
        lines.append(f"- {claim}")
    lines.append("")
    lines.append("**Measured (this reproduction)**")
    lines.append("")
    lines.append(fig.to_markdown())
    lines.append("**Shape checks**")
    lines.append("")
    if problems:
        lines.extend(f"- FAIL: {p}" for p in problems)
    else:
        lines.append("- all qualitative claims reproduced")
    lines.append("")
    return "\n".join(lines)


def list_experiments() -> list[str]:
    """One line per registered experiment: its name and title."""
    lines = []
    for name, module_name in EXPERIMENT_MODULES.items():
        module = importlib.import_module(module_name)
        lines.append(f"{name:10s} {module.TITLE}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see 'list') or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=sorted(SCALES),
        help="problem scale (default: bench)",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--no-plots", action="store_true", help="tables only, no ASCII plots"
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="also write an EXPERIMENTS.md-style report to PATH",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiments == ["list"]:
        for line in list_experiments():
            print(line)
        return 0

    names = list(args.experiments)
    if not names:
        parser.error("no experiments given (try 'list' or 'all')")
    if names == ["all"]:
        names = list(EXPERIMENT_MODULES)

    failures = 0
    sections: list[str] = []
    for name in names:
        print(f"--- running {name} at scale={args.scale} ---", flush=True)
        fig, problems, wall = run_experiment(name, args.scale)
        print(fig.render(plots=not args.no_plots))
        print(f"[{name}] completed in {wall:.1f}s wall time")
        if problems:
            failures += 1
            for p in problems:
                print(f"[{name}] SHAPE-CHECK FAIL: {p}")
        else:
            print(f"[{name}] all shape checks passed")
        sections.append(experiment_markdown(name, fig, problems))
        print()

    if args.markdown:
        header = (
            "# Experiment report (generated)\n\n"
            f"Scale: `{args.scale}`.  Regenerate with "
            f"`repro-experiments {' '.join(names)} --scale {args.scale} "
            f"--markdown <path>`.\n\n"
        )
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(header + "\n".join(sections))
        print(f"wrote {args.markdown}")

    return failures


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
