"""Measurement-variability study (paper Sec. IV, first paragraph).

"COVs for execution times and event counts are less than 10%, (most are
less than 3%) for experiments using less than 16 cores.  For a few sample
sets using more than 16 cores and when the partition size is less than
32,000, COVs range up to 21% on the Haswell node."

The simulated runs vary by seed (cost-model jitter changes the event
interleaving, which changes stealing and wave alignment), so the COV
structure — small in the stable middle, larger at fine grain with many
cores — should reproduce, if not the exact magnitudes.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.harness import stencil_report
from repro.experiments.report import FigureResult, Series

FIGURE_ID = "cov"
TITLE = "Coefficient of variation of execution time (Sec. IV methodology)"
PAPER_CLAIMS = [
    "COVs are small (mostly < 3%, all < 10%) below 16 cores",
    "COVs grow for fine partitions at high core counts",
]

PLATFORM = "haswell"
LOW_CORES = 8
HIGH_CORES = 28
#: grains finer than this are the paper's "unstable" set at high core count
FINE_BOUNDARY = 32_000


def run(scale: Scale) -> FigureResult:
    scale = scale.with_(repetitions=max(4, scale.repetitions))
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="partition size (grid points)",
        ylabel="COV of execution time",
    )
    fig.notes.append(f"scale={scale.name}, {scale.repetitions} repetitions/cell")
    for cores in (LOW_CORES, HIGH_CORES):
        report = stencil_report(
            scale, PLATFORM, cores, measure_single_core_reference=False
        )
        fig.add_series(
            f"{PLATFORM}",
            Series(
                f"{cores} cores",
                [(p.grain, p.execution_time_s.cov) for p in report.points],
            ),
        )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    (panel,) = fig.panels
    by_label = {s.label: s.points for s in fig.panels[panel]}
    low = by_label[f"{LOW_CORES} cores"]
    high = by_label[f"{HIGH_CORES} cores"]

    # Low core count: every COV < 10%, most < 3%.
    if any(v >= 0.10 for _, v in low):
        problems.append(
            f"cov: {LOW_CORES}-core COVs exceed 10%: "
            f"{[(g, round(v, 3)) for g, v in low if v >= 0.10]}"
        )
    small = sum(1 for _, v in low if v < 0.03)
    if small < len(low) / 2:
        problems.append(
            f"cov: fewer than half the {LOW_CORES}-core COVs are below 3%"
        )

    # High core count: fine-grain COVs exceed the mid-region's (compare
    # medians: single cells are noisy by definition here).
    fine_covs = sorted(v for g, v in high if g < FINE_BOUNDARY)
    mid_covs = sorted(v for g, v in high if g >= FINE_BOUNDARY)
    if fine_covs and mid_covs:
        fine_median = fine_covs[len(fine_covs) // 2]
        mid_median = mid_covs[len(mid_covs) // 2]
        if fine_median <= mid_median:
            problems.append(
                "cov: fine-grain COVs not elevated at high core count "
                f"(median fine {fine_median:.3f} <= median mid {mid_median:.3f})"
            )
    return problems
