"""Ablations of the design choices DESIGN.md calls out.

The paper observes that "different schedulers optimize performance for
different task size" (Sec. I-A) and defers the scheduler study; these
ablations perform it on the simulated platforms, plus the timer-overhead
check from the paper's Sec. II-A note.

1. **Scheduler policy × grain size (stencil)** — Priority Local-FIFO vs
   static (no stealing) vs one global queue vs NUMA-blind stealing, on the
   same sweep.  The stencil is a *regular* workload, so the interesting
   result is that static scheduling stays competitive there — stealing's
   value shows on irregular work (next item) — while the global queue pays
   growing contention at fine grain.
2. **Scheduler policy on irregular work (graph BFS)** — the paper's
   motivating "scaling impaired" class.  Layer widths vary randomly, and
   dataflow continuations stage on the completing worker, so without
   stealing the load concentrates: static must lose to Priority-Local here.
3. **Timer overhead** — "There were no significant overheads except for the
   cases where the experiments were run on only one core and the task
   durations were less than four microseconds": compare runs with the
   timing counters enabled vs disabled on one core across grain sizes.
"""

from __future__ import annotations

from repro.apps.graphapp import GraphAppConfig, run_graph_bfs
from repro.apps.stencil1d import stencil_run_fn
from repro.experiments.config import Scale
from repro.experiments.harness import sweep_for
from repro.experiments.report import FigureResult, Series
from repro.runtime.runtime import RuntimeConfig
from repro.schedulers import SCHEDULERS

FIGURE_ID = "ablation"
TITLE = "Ablations: scheduler policy and timer overhead"
PAPER_CLAIMS = [
    "scheduler choice changes which grain sizes perform well (Sec. I-A)",
    "work stealing is what keeps irregular (graph-class) workloads "
    "balanced; removing it degrades them while the regular stencil "
    "barely notices",
    "timing-counter overhead is insignificant except for sub-4us tasks on "
    "one core (Sec. II-A note)",
]

PLATFORM = "haswell"
CORES = 16
TIMER_SIGNIFICANT = 0.01  # 1% relative — the "significant" line


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="partition size (grid points)",
        ylabel="execution time (s) / relative timer overhead",
    )
    run_fn = stencil_run_fn(scale.total_points, scale.time_steps)
    grains = sweep_for(scale)

    # 1. scheduler policies
    panel = f"schedulers on {PLATFORM} {CORES} cores"
    for name in SCHEDULERS:
        points = []
        for grain in grains:
            result = run_fn(
                RuntimeConfig(
                    platform=PLATFORM, num_cores=CORES, scheduler=name, seed=2
                ),
                grain,
            )
            points.append((float(grain), result.execution_time_s))
        fig.add_series(panel, Series(name, points))

    # 2. scheduler policies on irregular work
    panel_g = f"graph BFS on {PLATFORM} {CORES} cores"
    graph_config = GraphAppConfig(
        layers=24,
        mean_width=3 * CORES,
        edges_per_vertex=2,
        visit_ns=60_000,
        visits_per_task=1,
        seed=13,
    )
    for name in SCHEDULERS:
        result = run_graph_bfs(
            RuntimeConfig(
                platform=PLATFORM, num_cores=CORES, scheduler=name, seed=4
            ),
            graph_config,
        )
        fig.add_series(
            panel_g, Series(name, [(0.0, result.execution_time_s)])
        )

    # 3. timer overhead on one core
    panel_t = "timer-counter overhead, 1 core"
    rel_points = []
    td_points = []
    for grain in grains:
        with_t = run_fn(
            RuntimeConfig(platform=PLATFORM, num_cores=1, seed=3,
                          timer_counters=True),
            grain,
        )
        without_t = run_fn(
            RuntimeConfig(platform=PLATFORM, num_cores=1, seed=3,
                          timer_counters=False),
            grain,
        )
        rel = (
            with_t.execution_time_ns - without_t.execution_time_ns
        ) / without_t.execution_time_ns
        rel_points.append((float(grain), rel))
        td_points.append((float(grain), without_t.task_duration_ns / 1e3))
    fig.add_series(panel_t, Series("relative overhead", rel_points))
    fig.add_series(panel_t, Series("task duration (us)", td_points))
    fig.notes.append(
        "timer overhead should exceed the significance line only where task "
        "duration < 4 us (paper Sec. II-A note)"
    )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    sched_panel = next(p for p in fig.panels if p.startswith("schedulers"))
    by_name = {s.label: dict(s.points) for s in fig.panels[sched_panel]}
    pl = by_name["priority-local"]

    # Priority-Local must be at least competitive with every policy at its
    # own best grain on the regular stencil.
    best_pl = min(pl.values())
    for name, series in by_name.items():
        if min(series.values()) < best_pl * 0.9:
            problems.append(
                f"ablation: {name} beats priority-local's best time by >10% "
                "— unexpected on the paper's workload"
            )

    # On the irregular graph workload, removing work stealing must hurt.
    graph_panel = next(p for p in fig.panels if p.startswith("graph"))
    graph_times = {s.label: s.points[0][1] for s in fig.panels[graph_panel]}
    if graph_times["static"] < graph_times["priority-local"] * 1.10:
        problems.append(
            "ablation: static scheduler does not degrade on irregular work "
            f"({graph_times['static']:.4g}s vs priority-local "
            f"{graph_times['priority-local']:.4g}s)"
        )

    timer_panel = next(p for p in fig.panels if p.startswith("timer"))
    by_label = {s.label: s.points for s in fig.panels[timer_panel]}
    rel = dict(by_label["relative overhead"])
    td = dict(by_label["task duration (us)"])
    for grain, overhead in rel.items():
        duration_us = td.get(grain)
        if duration_us is None:
            continue
        if duration_us >= 4.0 and overhead > TIMER_SIGNIFICANT:
            problems.append(
                f"ablation: timer overhead {overhead:.3%} significant at "
                f"t_d={duration_us:.1f}us (paper: only below 4us)"
            )
    finest = min(rel)
    coarsest = max(rel)
    if rel[finest] <= rel[coarsest]:
        problems.append(
            "ablation: timer overhead not larger at fine grain than coarse"
        )
    return problems
