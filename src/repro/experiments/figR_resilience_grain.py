"""figR: resilience vs grain size — faults move the execution-time minimum.

The paper's U-curve balances per-task overhead against starvation on a
perfect machine.  On a lossy one a third force appears, and it pulls both
ends of the curve at once:

- **fine grains multiply fault exposure** — the cyclic-decomposed stencil
  ships 2 halo parcels per partition per step, so the parcel count (and
  with it drops, retransmissions, and retry-timer stalls) scales with
  ``1/grain``; a dropped halo stalls its consumer for a full ack-timeout,
  and a doomed parcel's exhaustion stall propagates down the dependency
  cone of every later step;
- **coarse grains concentrate recovery cost** — when a parcel exhausts its
  retry budget, ``recovery="reexecute"`` re-runs the producing partition
  update before re-sending, and the producing task's cost *is* the grain;
  re-running a quarter-domain partition costs six orders more virtual time
  than re-running a 1 Ki-point one.

The sweep runs grain × drop-rate with the reliable transport on
(ack/timeout/retransmit with exponential backoff and seeded jitter) and a
deterministic ``doom_every`` schedule guaranteeing retry exhaustion — and
hence measurable recoveries — at every grain.  Claims asserted by
:func:`shape_checks`, not just plotted:

- retransmissions under a given drop rate are far higher at the finest
  grain than at the coarsest (exposure scales with parcel count);
- the *per-fault* recovery time at the coarsest grain dwarfs the finest
  (recovery cost scales with the grain);
- the execution-time minimum under the heaviest faults sits at a strictly
  coarser grain than the fault-free minimum;
- a faulted run is bit-reproducible from its seed (same execution time,
  same counters, run after run), and a faulted validated run still matches
  the serial NumPy reference exactly — at-least-once transmission with
  receiver dedup never corrupts data;
- wire-copy conservation holds at every point of the sweep.
"""

from __future__ import annotations

import numpy as np

from repro.apps.stencil1d import initial_condition, serial_reference
from repro.apps.stencil1d_dist import DistStencilConfig, run_dist_stencil
from repro.core.characterize import default_partition_sweep
from repro.dist import DistConfig, DistRunResult, FaultPlan, RetryParams
from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.verify.invariants import PARCELS_CONSERVED

FIGURE_ID = "figR"
TITLE = "Resilience vs grain: faults move the U-curve minimum (simulated Haswell)"
PAPER_CLAIMS = [
    "fine grains multiply fault exposure: retransmissions scale with the "
    "parcel count, i.e. with 1/grain",
    "coarse grains concentrate recovery: re-executing a lost parcel's "
    "producer costs the grain itself, so per-fault recovery time grows "
    "with partition size",
    "under faults the execution-time minimum moves to a coarser grain "
    "than the fault-free optimum",
    "the whole fault schedule is reproducible from its seed, and faulted "
    "runs still compute bit-correct results",
]

NUM_LOCALITIES = 4
CORES_PER_LOCALITY = 8
PLATFORM = "haswell"
#: per-wire-transmission drop probabilities swept (0 = the clean baseline)
DROP_RATES = (0.0, 0.02, 0.05)
#: every 16th parcel id is doomed (all its transmissions drop), forcing
#: deterministic retry exhaustion even at the coarsest grain, whose whole
#: run ships only a few dozen parcels
DOOM_EVERY = 16
FAULT_SEED = 2026
#: modest retry budget: exhaustion (and with it recovery) is reachable
#: without the exponential backoff stall swamping every other effect
RETRY = RetryParams(
    ack_timeout_ns=120_000,
    backoff_factor=2.0,
    max_jitter_ns=10_000,
    max_retries=2,
)


def _fault_plan(drop_rate: float) -> FaultPlan | None:
    """The fault schedule for one drop-rate column (None = clean)."""
    if drop_rate == 0.0:
        return None
    return FaultPlan(
        seed=FAULT_SEED,
        drop_rate=drop_rate,
        duplicate_rate=drop_rate / 2.0,
        doom_every=DOOM_EVERY,
    )


def _dist_config(drop_rate: float) -> DistConfig:
    return DistConfig(
        num_localities=NUM_LOCALITIES,
        platform=PLATFORM,
        cores_per_locality=CORES_PER_LOCALITY,
        seed=0,
        faults=_fault_plan(drop_rate),
        retry=RETRY,
        recovery="reexecute",
        # A recovery parcel draws a fresh id that can itself be doomed
        # (probability 1/DOOM_EVERY per re-send); the default budget of 3
        # re-executions is reachable at fine grains shipping tens of
        # thousands of parcels, so give the sweep enough headroom that it
        # completes at every point.
        max_recoveries=8,
    )


def _stencil_config(
    scale: Scale, grain: int, steps: int, *, validate: bool = False
) -> DistStencilConfig:
    return DistStencilConfig(
        total_points=scale.total_points,
        partition_points=grain,
        time_steps=steps,
        validate=validate,
        # Cyclic decomposition makes the cross-network parcel count scale
        # with the partition count — the communication-heavy regime where
        # per-parcel faults can be told apart from per-task overhead.
        decomposition="cyclic",
    )


def grain_sweep(scale: Scale) -> list[int]:
    """figR's grain grid: fine enough to expose parcel-count scaling.

    The coarsest grain leaves exactly one partition per locality (the
    largest grain the decomposition admits), so the recovery-cost end of
    the trade-off is actually sampled.
    """
    finest = max(scale.finest_partition, 1024)
    per_decade = max(scale.points_per_decade, 2)
    coarsest = scale.total_points // NUM_LOCALITIES
    grains = [
        g
        for g in default_partition_sweep(
            scale.total_points, finest=finest, points_per_decade=per_decade
        )
        if g <= coarsest
    ]
    if grains[-1] != coarsest:
        grains.append(coarsest)
    return grains


def _run_one(
    scale: Scale, drop_rate: float, grain: int, steps: int
) -> DistRunResult:
    outcome = run_dist_stencil(
        _dist_config(drop_rate), _stencil_config(scale, grain, steps)
    )
    PARCELS_CONSERVED.require(outcome.result)
    return outcome.result


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="partition size (grid points)",
        ylabel="execution time (s) / parcel counts",
    )
    steps = scale.time_steps_for(PLATFORM)
    grains = grain_sweep(scale)
    fig.notes.append(
        f"scale={scale.name}; platform={PLATFORM}; {NUM_LOCALITIES} "
        f"localities x {CORES_PER_LOCALITY} cores; {steps} time steps; "
        f"cyclic decomposition; reliable transport (timeout "
        f"{RETRY.ack_timeout_ns} ns, {RETRY.max_retries} retries); "
        f"doomed parcel every {DOOM_EVERY} ids on faulted runs; "
        "recovery by producer re-execution"
    )

    best_by_rate: list[tuple[float, float]] = []
    retx_finest: list[tuple[float, float]] = []
    retx_coarsest: list[tuple[float, float]] = []
    recovery_per_fault_finest: list[tuple[float, float]] = []
    recovery_per_fault_coarsest: list[tuple[float, float]] = []
    for drop_rate in DROP_RATES:
        panel = f"{PLATFORM} drop rate {drop_rate:g}"
        times: list[tuple[float, float]] = []
        retx: list[tuple[float, float]] = []
        recovered: list[tuple[float, float]] = []
        per_grain: dict[int, DistRunResult] = {}
        for grain in grains:
            result = _run_one(scale, drop_rate, grain, steps)
            per_grain[grain] = result
            times.append((grain, result.execution_time_s))
            retx.append((grain, float(result.parcels_retransmitted)))
            recovered.append((grain, float(result.parcels_recovered)))
        fig.add_series(panel, Series("execution time (s)", times))
        fig.add_series(panel, Series("parcels retransmitted", retx))
        fig.add_series(panel, Series("parcels recovered", recovered))

        best_grain = min(times, key=lambda point: point[1])[0]
        best_by_rate.append((drop_rate, best_grain))
        finest_r = per_grain[grains[0]]
        coarsest_r = per_grain[grains[-1]]
        retx_finest.append((drop_rate, float(finest_r.parcels_retransmitted)))
        retx_coarsest.append(
            (drop_rate, float(coarsest_r.parcels_retransmitted))
        )
        for dest, res in (
            (recovery_per_fault_finest, finest_r),
            (recovery_per_fault_coarsest, coarsest_r),
        ):
            per_fault = (
                res.recovery_ns / res.parcels_recovered / 1e9
                if res.parcels_recovered
                else 0.0
            )
            dest.append((drop_rate, per_fault))

    summary = "summary (x = drop rate)"
    fig.add_series(summary, Series("best grain (points)", best_by_rate))
    fig.add_series(summary, Series("retransmissions at finest", retx_finest))
    fig.add_series(
        summary, Series("retransmissions at coarsest", retx_coarsest)
    )
    fig.add_series(
        summary,
        Series("recovery s/fault at finest", recovery_per_fault_finest),
    )
    fig.add_series(
        summary,
        Series("recovery s/fault at coarsest", recovery_per_fault_coarsest),
    )

    # Seed-exact reproducibility: the heaviest faulted config, run twice,
    # must agree on the execution time and on every counter.
    mid_grain = grains[len(grains) // 2]
    first = _run_one(scale, max(DROP_RATES), mid_grain, steps)
    second = _run_one(scale, max(DROP_RATES), mid_grain, steps)
    deterministic = (
        first.execution_time_ns == second.execution_time_ns
        and first.counters.values == second.counters.values
    )
    fig.add_series(
        summary,
        Series(
            "determinism (1 = bit-identical rerun)",
            [(max(DROP_RATES), 1.0 if deterministic else 0.0)],
        ),
    )

    # Correctness under faults: a validated faulted run computes the same
    # answer as the serial NumPy reference despite drops, duplicates,
    # doomed parcels and re-executed producers.
    validated_outcome = run_dist_stencil(
        _dist_config(max(DROP_RATES)),
        _stencil_config(scale, mid_grain, steps, validate=True),
    )
    reference = serial_reference(
        initial_condition(scale.total_points),
        steps,
        validated_outcome.config.heat_coefficient,
    )
    validated = bool(
        np.allclose(validated_outcome.final_array(), reference)
    )
    fig.add_series(
        summary,
        Series(
            "validated (1 = matches serial reference)",
            [(max(DROP_RATES), 1.0 if validated else 0.0)],
        ),
    )
    fig.notes.append(
        "best grain per drop rate: "
        + ", ".join(f"{rate:g}→{int(g)}" for rate, g in best_by_rate)
    )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    summary = next((p for p in fig.panels if p.startswith("summary")), None)
    if summary is None:
        return [f"{fig.figure_id}: summary panel missing"]
    series = {s.label: dict(s.points) for s in fig.panels[summary]}
    best = series["best grain (points)"]
    max_rate = max(DROP_RATES)

    # Reproducibility and correctness are pass/fail, not trends.
    if series["determinism (1 = bit-identical rerun)"][max_rate] != 1.0:
        problems.append(
            f"{fig.figure_id}: two runs of the same faulted config "
            "disagreed — the fault schedule is not a pure function of "
            "its seed"
        )
    if series["validated (1 = matches serial reference)"][max_rate] != 1.0:
        problems.append(
            f"{fig.figure_id}: a faulted validated run diverged from the "
            "serial reference — the transport corrupted or lost data"
        )

    # Exposure scales with the parcel count: the finest grain retransmits
    # far more than the coarsest under every nonzero drop rate.
    for rate in DROP_RATES:
        fine = series["retransmissions at finest"][rate]
        coarse = series["retransmissions at coarsest"][rate]
        if rate == 0.0:
            if fine != 0 or coarse != 0:
                problems.append(
                    f"{fig.figure_id}: retransmissions on the clean "
                    f"baseline (finest={int(fine)}, coarsest={int(coarse)})"
                )
        elif fine <= coarse:
            problems.append(
                f"{fig.figure_id}: drop rate {rate:g}: finest grain "
                f"retransmitted {int(fine)} parcels, not more than the "
                f"coarsest ({int(coarse)})"
            )

    # Recovery cost scales with the grain: per-fault recovery time at the
    # coarsest grain must dwarf the finest.
    fine_rec = series["recovery s/fault at finest"][max_rate]
    coarse_rec = series["recovery s/fault at coarsest"][max_rate]
    if fine_rec <= 0.0 or coarse_rec <= 0.0:
        problems.append(
            f"{fig.figure_id}: no recoveries measured at drop rate "
            f"{max_rate:g} (finest {fine_rec}, coarsest {coarse_rec}) — "
            "doom_every failed to force retry exhaustion"
        )
    elif coarse_rec <= fine_rec:
        problems.append(
            f"{fig.figure_id}: per-fault recovery at the coarsest grain "
            f"({coarse_rec:.6f} s) not larger than at the finest "
            f"({fine_rec:.6f} s)"
        )

    # The headline: faults move the minimum to a coarser grain.
    if best[max_rate] <= best[0.0]:
        problems.append(
            f"{fig.figure_id}: best grain under drop rate {max_rate:g} "
            f"({int(best[max_rate])}) not strictly coarser than the "
            f"fault-free best ({int(best[0.0])})"
        )
    for rate in DROP_RATES[1:]:
        if best[rate] < best[0.0]:
            problems.append(
                f"{fig.figure_id}: best grain under drop rate {rate:g} "
                f"({int(best[rate])}) finer than the fault-free best "
                f"({int(best[0.0])})"
            )
    return problems
