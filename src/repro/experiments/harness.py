"""Shared sweep machinery for the figure experiments.

Every figure is some projection of the same underlying experiment — the
paper's Sec. II methodology: HPX-Stencil over a grain-size sweep at several
core counts.  :func:`stencil_report` runs one (platform, cores) cell and
returns the :class:`CharacterizationReport`; figure modules project the
quantities they plot out of it.

Shape-checking helpers encode the qualitative claims ("U-shaped", "rises at
the fine end", ...) that EXPERIMENTS.md verifies; they return human-readable
violation strings instead of raising so a report can list every miss.
"""

from __future__ import annotations

from repro.core.characterize import (
    CharacterizationReport,
    characterize,
    default_partition_sweep,
)
from repro.apps.stencil1d import stencil_run_fn
from repro.experiments.config import Scale


def sweep_for(scale: Scale, total_points: int | None = None) -> list[int]:
    """The grain-size sweep (points per partition) at this scale."""
    total = total_points if total_points is not None else scale.total_points
    return default_partition_sweep(
        total,
        finest=min(scale.finest_partition, total),
        points_per_decade=scale.points_per_decade,
    )


def stencil_report(
    scale: Scale,
    platform: str,
    num_cores: int,
    *,
    scheduler: str = "priority-local",
    grains: list[int] | None = None,
    total_points: int | None = None,
    seed: int = 0,
    measure_single_core_reference: bool = True,
) -> CharacterizationReport:
    """Characterize HPX-Stencil for one (platform, cores) configuration."""
    total = total_points if total_points is not None else scale.total_points
    run_fn = stencil_run_fn(total, scale.time_steps_for(platform))
    return characterize(
        run_fn,
        grains if grains is not None else sweep_for(scale, total),
        platform=platform,
        num_cores=num_cores,
        scheduler=scheduler,
        repetitions=scale.repetitions,
        seed=seed,
        measure_single_core_reference=measure_single_core_reference,
    )


# -- qualitative shape checks -----------------------------------------------------


def check_u_shape(
    points: list[tuple[float, float]], label: str, tolerance: float = 1.05
) -> list[str]:
    """The curve falls from its left end to its minimum and rises to its
    right end (each by more than ``tolerance``)."""
    if len(points) < 3:
        return [f"{label}: too few points for a shape check"]
    ys = [y for _, y in points]
    lo = min(ys)
    problems = []
    if ys[0] < lo * tolerance:
        problems.append(
            f"{label}: no fine-grained wall (left end {ys[0]:.4g} vs min {lo:.4g})"
        )
    if ys[-1] < lo * tolerance:
        problems.append(
            f"{label}: no coarse-grained wall (right end {ys[-1]:.4g} vs min {lo:.4g})"
        )
    imin = ys.index(lo)
    if imin in (0, len(ys) - 1):
        problems.append(f"{label}: minimum sits at the sweep boundary")
    return problems


def check_high_at_fine_end(
    points: list[tuple[float, float]], label: str, floor: float
) -> list[str]:
    """The first (finest-grain) value exceeds ``floor``."""
    if not points:
        return [f"{label}: empty series"]
    if points[0][1] < floor:
        return [f"{label}: fine end {points[0][1]:.4g} below expected {floor:.4g}"]
    return []


def check_monotone_increase(
    points: list[tuple[float, float]], label: str, slack: float = 0.05
) -> list[str]:
    """y grows (allowing ``slack`` relative dips) along the series."""
    problems = []
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if y1 < y0 * (1.0 - slack) - 1e-12:
            problems.append(
                f"{label}: decreases from {y0:.4g}@{x0:g} to {y1:.4g}@{x1:g}"
            )
    return problems


def check_negative_tail(
    points: list[tuple[float, float]], label: str
) -> list[str]:
    """The last (coarsest) value is negative — the paper's negative wait
    time for very coarse grain."""
    if not points:
        return [f"{label}: empty series"]
    if points[-1][1] >= 0:
        return [f"{label}: coarse tail {points[-1][1]:.4g} is not negative"]
    return []


def check_tracks(
    a: list[tuple[float, float]],
    b: list[tuple[float, float]],
    label: str,
    min_correlation: float = 0.85,
) -> list[str]:
    """Series ``a`` and ``b`` rank-correlate (Fig. 7/8's "mimics" claim)."""
    xa = dict(a)
    xb = dict(b)
    shared = sorted(set(xa) & set(xb))
    if len(shared) < 4:
        return [f"{label}: fewer than 4 shared x values"]
    ya = [xa[x] for x in shared]
    yb = [xb[x] for x in shared]

    def ranks(ys: list[float]) -> list[float]:
        order = sorted(range(len(ys)), key=lambda i: ys[i])
        r = [0.0] * len(ys)
        for rank, i in enumerate(order):
            r[i] = float(rank)
        return r

    ra, rb = ranks(ya), ranks(yb)
    n = len(shared)
    d2 = sum((x - y) ** 2 for x, y in zip(ra, rb))
    rho = 1.0 - 6.0 * d2 / (n * (n * n - 1))
    if rho < min_correlation:
        return [f"{label}: rank correlation {rho:.3f} < {min_correlation}"]
    return []
