"""Fig. 9: pending-queue accesses on Haswell.

See :mod:`repro.experiments.pending_queue_common` for the paper context.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.pending_queue_common import (
    PAPER_CLAIMS,
    pending_queue_shape_checks,
    run_pending_queue_figure,
)
from repro.experiments.report import FigureResult

FIGURE_ID = "fig9"
TITLE = "Pending Queue Accesses: Intel Haswell"
CORES = (8, 16, 28)

__all__ = ["FIGURE_ID", "TITLE", "PAPER_CLAIMS", "run", "shape_checks"]


def run(scale: Scale) -> FigureResult:
    return run_pending_queue_figure(scale, "haswell", CORES, FIGURE_ID, TITLE)


def shape_checks(fig: FigureResult) -> list[str]:
    return pending_queue_shape_checks(fig)
