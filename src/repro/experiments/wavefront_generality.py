"""Generality check: the methodology on a second workload class.

The paper studies one benchmark and argues the metrics are
application-generic ("We are in the process of studying a variety of
applications with different workloads", Sec. I-C).  This experiment applies
the identical pipeline — grain sweep, Sec. II-A metrics, idle-rate
selection rule, adaptive tuner — to the 2-D DP wavefront
(:mod:`repro.apps.wavefront2d`), whose dependency topology and cost
profile (compute-bound, pipeline parallelism) differ from the stencil's in
every respect the cost model distinguishes.

Expected shapes: execution time U-shaped in tile size; idle-rate high at
both extremes (fine: overhead; coarse: pipeline fill/drain starvation);
the tuner lands near the sweep optimum.
"""

from __future__ import annotations

from repro.apps.wavefront2d import wavefront_run_fn
from repro.core.characterize import characterize
from repro.core.selection import select_by_idle_rate, select_by_min_time
from repro.core.tuner import AdaptiveGrainTuner, TunerConfig
from repro.experiments.config import Scale
from repro.experiments.harness import check_u_shape
from repro.experiments.report import FigureResult, Series
from repro.runtime.runtime import RuntimeConfig

FIGURE_ID = "wavefront"
TITLE = "Methodology generality: 2-D wavefront (sequence alignment)"
PAPER_CLAIMS = [
    "the granularity metrics are not stencil-specific: a compute-bound "
    "pipeline workload shows the same U-shape and responds to the same "
    "selection/tuning machinery",
]

PLATFORM = "haswell"
CORES = 16
CELL_NS = 3
TUNED_SLACK = 1.35


def _problem_side(scale: Scale) -> int:
    # Match the stencil's default task-count regime: n^2 cells such that the
    # finest tile still yields thousands of tasks but sweeps stay fast.
    return max(256, int(scale.total_points**0.5))


def run(scale: Scale) -> FigureResult:
    n = _problem_side(scale)
    run_fn = wavefront_run_fn(n=n, cell_ns=CELL_NS)
    tiles = []
    t = 4
    while t < n:
        tiles.append(t)
        t *= 2
    tiles.append(n)

    report = characterize(
        run_fn,
        tiles,
        platform=PLATFORM,
        num_cores=CORES,
        repetitions=max(2, scale.repetitions),
        seed=23,
        measure_single_core_reference=False,
    )
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="tile side (cells)",
        ylabel="execution time (s) / idle-rate",
    )
    panel = f"{PLATFORM} {CORES} cores, {n}x{n} cells"
    fig.add_series(panel, Series("execution time (s)", report.series("execution_time_s")))
    fig.add_series(panel, Series("idle-rate", report.series("idle_rate")))

    oracle = select_by_min_time(report)
    idle_rule = select_by_idle_rate(report, threshold=0.60)
    fig.notes.append(oracle.summary())
    fig.notes.append(idle_rule.summary())

    tuner = AdaptiveGrainTuner(
        epoch_fn=run_fn,
        runtime_config_factory=lambda epoch: RuntimeConfig(
            platform=PLATFORM, num_cores=CORES, seed=40 + epoch
        ),
        config=TunerConfig(
            min_grain=2,
            max_grain=n,
            initial_grain=2,
            # Pipeline workloads idle during fill/drain even at good tiles,
            # so the "coarse" utilization threshold sits lower here.
            utilization_lo=0.35,
            max_epochs=scale.tuner_max_epochs,
        ),
    )
    outcome = tuner.run()
    fig.notes.append(
        f"tuner: converged={outcome.converged} in {outcome.epochs} epochs; "
        f"final tile={outcome.final_grain} time={outcome.final_time_s:.5f}s "
        f"({outcome.final_time_s / oracle.best_execution_time_s:.3f}x oracle)"
    )
    fig.tuner_outcome = outcome  # type: ignore[attr-defined]
    fig.oracle = oracle  # type: ignore[attr-defined]
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    (panel,) = fig.panels
    by_label = {s.label: s.points for s in fig.panels[panel]}
    problems += check_u_shape(
        by_label["execution time (s)"], f"{FIGURE_ID} execution time"
    )
    idle = by_label["idle-rate"]
    if idle[0][1] < 0.5:
        problems.append(f"{FIGURE_ID}: fine-end idle-rate {idle[0][1]:.2f} < 0.5")
    if idle[-1][1] < 0.5:
        problems.append(
            f"{FIGURE_ID}: coarse-end idle-rate {idle[-1][1]:.2f} < 0.5 "
            "(pipeline drain should starve workers)"
        )
    outcome = getattr(fig, "tuner_outcome", None)
    oracle = getattr(fig, "oracle", None)
    if outcome is None or oracle is None:
        problems.append(f"{FIGURE_ID}: tuner outcome missing")
    else:
        ratio = outcome.final_time_s / oracle.best_execution_time_s
        if ratio > TUNED_SLACK:
            problems.append(
                f"{FIGURE_ID}: tuner landed {ratio:.2f}x off the oracle "
                f"(allowed {TUNED_SLACK}x)"
            )
    return problems
