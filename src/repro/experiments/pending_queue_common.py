"""Shared implementation of Figs. 9 and 10 (pending-queue accesses).

Paper (Sec. IV-E): "Measuring the number of accesses to the pending queues
gives an indication of the amount of activity involving the thread
scheduler. [...] this metric can be used to determine adequate task grain
size. [...] This metric gives similar results to the idle-rate metric but
does not require timestamps."

Each panel: execution time plus total pending-queue accesses (in millions at
paper scale; raw counts here) against partition size.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.harness import check_u_shape, stencil_report
from repro.experiments.report import FigureResult, Series

PAPER_CLAIMS = [
    "pending-queue accesses are very high at fine grain (many tasks), "
    "minimal in the medium region, and rise again at coarse grain "
    "(starved workers polling)",
    "the grain with minimal accesses has execution time close to the best "
    "(within 13% in the paper's 28-core example; checked in the selection "
    "experiment)",
]


def run_pending_queue_figure(
    scale: Scale,
    platform: str,
    cores: tuple[int, ...],
    figure_id: str,
    title: str,
) -> FigureResult:
    fig = FigureResult(
        figure_id=figure_id,
        title=title,
        xlabel="partition size (grid points)",
        ylabel="execution time (s) / pending-queue accesses",
    )
    fig.notes.append(f"scale={scale.name}; platform={platform}")
    for nc in cores:
        report = stencil_report(
            scale, platform, nc, measure_single_core_reference=False
        )
        panel = f"{platform} {nc} cores"
        fig.add_series(
            panel, Series("execution time (s)", report.series("execution_time_s"))
        )
        fig.add_series(
            panel, Series("pending-Q accesses", report.series("pending_accesses"))
        )
    return fig


def pending_queue_shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    for panel, series_list in fig.panels.items():
        by_label = {s.label: s.points for s in series_list}
        label = f"{fig.figure_id} {panel}"
        accesses = by_label["pending-Q accesses"]
        problems += check_u_shape(accesses, f"{label}: accesses", tolerance=1.5)

        # The access-minimizing grain must sit near the time-minimizing one
        # in execution time (the paper's "determine adequate task grain
        # size" claim; quantified precisely in the selection experiment).
        times = dict(by_label["execution time (s)"])
        best_t = min(times.values())
        min_access_grain = min(accesses, key=lambda p: p[1])[0]
        if min_access_grain in times:
            t = times[min_access_grain]
            if t > best_t * 1.5:
                problems.append(
                    f"{label}: access-minimizing grain {min_access_grain:g} is "
                    f"{t / best_t:.2f}x slower than the best time"
                )
    return problems
