"""Shared implementation of Figs. 7 and 8 (overhead decomposition).

Paper (Sec. IV-B, IV-D): the HPX-thread-management overhead (Eq. 4) "is high
for very fine- and coarse-grained tasks"; in the centre it is flat and the
execution time instead follows wait time (Eq. 6).  "The combination of time
for managing HPX-threads and waiting on resources show that these are the
driving effects on execution time" — the TM+WT curve mimics the
execution-time curve, and "wait time is negative [...] for the experiments
with very coarse-grained tasks".

Each panel plots four series against partition size: execution time, TM
(Eq. 4), WT (Eq. 6), and TM+WT, all in seconds per core, exactly as the
paper's stacked figures do.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.harness import check_negative_tail, check_tracks, stencil_report
from repro.experiments.report import FigureResult, Series

PAPER_CLAIMS = [
    "thread-management overhead is high at the fine and coarse extremes and "
    "flat in the middle",
    "the TM+WT combination mimics the execution-time curve",
    "wait time is negative for very coarse-grained tasks (fewer tasks per "
    "step than cores)",
    "the gap between execution time and TM+WT is the actual computation "
    "time, which shrinks as cores increase",
]


def run_decomposition_figure(
    scale: Scale,
    platform: str,
    cores: tuple[int, ...],
    figure_id: str,
    title: str,
) -> FigureResult:
    fig = FigureResult(
        figure_id=figure_id,
        title=title,
        xlabel="partition size (grid points)",
        ylabel="seconds",
    )
    fig.notes.append(f"scale={scale.name}; platform={platform}")
    for nc in cores:
        report = stencil_report(
            scale, platform, nc, measure_single_core_reference=True
        )
        panel = f"{platform} {nc} cores"
        fig.add_series(
            panel, Series("Exec Time", report.series("execution_time_s"))
        )
        fig.add_series(panel, Series("HPX-TM", report.series("tm_per_core_s")))
        fig.add_series(panel, Series("WT", report.series("wait_per_core_s")))
        fig.add_series(
            panel, Series("HPX-TM & WT", report.series("combined_cost_s"))
        )
    return fig


def decomposition_shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    for panel, series_list in fig.panels.items():
        by_label = {s.label: s.points for s in series_list}
        label = f"{fig.figure_id} {panel}"
        exec_t = by_label["Exec Time"]
        tm = by_label["HPX-TM"]
        wt = by_label["WT"]
        combined = by_label["HPX-TM & WT"]

        # TM is high at both extremes relative to its mid-region floor.
        tm_ys = [y for _, y in tm]
        tm_floor = min(tm_ys)
        if tm_ys[0] < tm_floor * 3:
            problems.append(f"{label}: no fine-end TM wall")
        if tm_ys[-1] < tm_floor * 3:
            problems.append(f"{label}: no coarse-end TM wall")

        # Combined cost mimics execution time.
        problems += check_tracks(
            combined, exec_t, f"{label}: TM+WT vs exec time",
            min_correlation=0.7,
        )

        # Negative wait at the coarse extreme.
        problems += check_negative_tail(wt, f"{label}: WT tail")

        # Combined cost never exceeds execution time by much (the gap is
        # compute time, which must be non-negative up to noise).
        e = dict(exec_t)
        over = [
            x for x, y in combined
            if x in e and y > e[x] * 1.05 + 1e-9
        ]
        if over:
            problems.append(
                f"{label}: TM+WT exceeds execution time at grains {over[:4]}"
            )
    return problems
