"""figO: overload control — goodput plateaus instead of collapsing.

The paper's task-size trade-off (Figs. 3-5) is measured closed-loop: the
stencil offers exactly as much work as the machine absorbs.  This figure
opens the loop — tasks arrive on a virtual-time schedule regardless of
completion — and asks what each overload-control layer buys when offered
load exceeds capacity:

- **admission control** (panel A): an unbounded runtime accepts every
  task, so its completion time diverges linearly with offered load while
  its queue depth grows without bound.  A bounded queue with the ``shed``
  policy keeps completion time pinned near the arrival window (excess is
  rejected with a typed :class:`~repro.overload.errors.TaskShedError`);
  ``block`` meters producer backpressure in simulated time; ``spill``
  parks the excess in an unbounded cold lane and re-admits it as the hot
  queue drains.  Goodput (useful execution per core-second) rises with
  load and then *plateaus* at capacity for every bounded policy.
- **credit-based flow control** (panel B): per-destination sender windows
  bound in-flight parcels on the distributed stencil's halo exchange; the
  baseline's unacked high-water mark exceeds the windows that the credit
  runs never violate.
- **breakers under degradation** (panel D): on a link degraded 60x, the
  retry transport retransmits every timed-out halo into the dead window;
  a circuit breaker opens after a few consecutive failures and parks
  traffic until a half-open probe succeeds, capping retransmissions.
- **graceful degradation** (panel E): the :class:`~repro.overload.
  governor.OverloadGovernor` watches idle-rate (Eq. 1), overhead ratio
  and queue depth across epochs of sustained 3x overload, coarsens the
  grain, and drives goodput from the overhead-collapse regime to a
  plateau an ungoverned fine-grain run never reaches.

Every claim is asserted by :func:`shape_checks`; panel C additionally
runs the Task Bench ``spread`` pattern distributed under tight credit
windows to show flow control composes with an irregular communication
pattern (the run self-verifies its dependency sums), and the summary
panel asserts bit-identical reruns of the heaviest configurations plus
the admission conservation identity ``offered == completed + shed``.
"""

from __future__ import annotations

from repro.apps.stencil1d_dist import DistStencilConfig, run_dist_stencil
from repro.dist import DistConfig, DistRunResult, FaultPlan, RetryParams
from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.faults.plan import LinkDegradation
from repro.overload import (
    AdmissionParams,
    BreakerParams,
    CreditParams,
    GovernorSignals,
    OverloadConfig,
    OverloadGovernor,
)
from repro.overload.workload import (
    OfferedLoad,
    OfferedLoadOutcome,
    run_offered_load,
)
from repro.runtime.runtime import RuntimeConfig
from repro.taskbench import TaskBenchSpec, run_taskbench_dist
from repro.verify.invariants import (
    ADMISSION_CONSERVED,
    PARCELS_CONSERVED,
    SPILL_CONSERVED,
)

FIGURE_ID = "figO"
TITLE = "Overload control: admission, credits, breakers, graceful degradation"
PAPER_CLAIMS = [
    "an unbounded runtime's completion time diverges with offered load "
    "while every bounded admission policy keeps queue depth at its bound "
    "and goodput plateaus at capacity",
    "credit-based flow control bounds in-flight parcels per destination "
    "at the configured window; the uncontrolled baseline exceeds it",
    "a per-link circuit breaker caps the retransmission storm a degraded "
    "link otherwise provokes from the retry transport",
    "the overload governor coarsens grain under sustained overload until "
    "goodput plateaus, beating the ungoverned fine-grain configuration",
    "the whole control stack is bit-reproducible and conserves work: "
    "offered == completed + shed, and every wire copy meets one fate",
]

PLATFORM = "haswell"
NUM_CORES = 8
#: offered load as a multiple of machine capacity (panel A's x axis)
UTILIZATIONS = (0.5, 1.0, 2.0, 4.0)
#: hot-queue bound for every bounded admission policy
ADMISSION_BOUND = 64
#: admission overflow policies swept against the unbounded baseline
POLICIES = ("unbounded", "block", "shed", "spill")
#: per-destination credit windows swept in panel B (0 = uncontrolled)
CREDIT_WINDOWS = (4, 8)
RETRY = RetryParams(max_retries=8)
BREAKER = BreakerParams(failure_threshold=2, cooldown_ns=400_000)
GOVERNOR_UTILIZATION = 3.0


def _arrival_window_ns(scale: Scale) -> int:
    # The window must dwarf the bounded policies' O(bound) drain tail, or
    # the shed-stays-bounded check drowns in the tail; 300 us is cheap
    # enough to keep even at smoke scale.
    del scale
    return 300_000


def _stencil_steps(scale: Scale) -> int:
    return 8 if scale.name == "smoke" else 12


def _governor_epochs(scale: Scale) -> int:
    return 5 if scale.name == "smoke" else 6


def _admission_config(policy: str) -> OverloadConfig:
    if policy == "unbounded":
        # max_depth=None observes (offered/peak-depth counters) but never
        # rejects: the collapse baseline.
        return OverloadConfig(admission=AdmissionParams())
    return OverloadConfig(
        admission=AdmissionParams(max_depth=ADMISSION_BOUND, policy=policy)
    )


def _offered_run(
    scale: Scale,
    utilization: float,
    policy: str,
    *,
    grain_ns: int = 2_500,
    seed: int = 0,
) -> OfferedLoadOutcome:
    load = OfferedLoad.at_utilization(
        utilization,
        grain_ns=grain_ns,
        num_cores=NUM_CORES,
        window_ns=_arrival_window_ns(scale),
    )
    config = RuntimeConfig(
        platform=PLATFORM,
        num_cores=NUM_CORES,
        seed=seed,
        overload=_admission_config(policy),
    )
    return run_offered_load(config, load)


def _dist_stencil(
    scale: Scale,
    *,
    credits: CreditParams | None = None,
    breaker: BreakerParams | None = None,
    faults: FaultPlan | None = None,
) -> DistRunResult:
    overload = None
    if credits is not None or breaker is not None:
        overload = OverloadConfig(credits=credits, breaker=breaker)
    dist_config = DistConfig(
        num_localities=2,
        platform=PLATFORM,
        cores_per_locality=4,
        retry=RETRY,
        faults=faults,
        overload=overload,
    )
    outcome = run_dist_stencil(
        dist_config,
        DistStencilConfig(
            total_points=16_384,
            partition_points=1_024,
            time_steps=_stencil_steps(scale),
            # Cyclic decomposition crosses the network on every adjacent
            # pair: the halo traffic that makes windows and breakers bite.
            decomposition="cyclic",
        ),
    )
    PARCELS_CONSERVED.require(outcome.result)
    return outcome.result


def _degradation_plan() -> FaultPlan:
    """A 3 ms window in which the 0->1 link runs at 60x latency."""
    return FaultPlan(
        degradations=(
            LinkDegradation(
                start_ns=50_000,
                end_ns=3_050_000,
                latency_factor=60.0,
                src=0,
                dst=1,
            ),
        )
    )


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="offered load (x capacity) / window / epoch",
        ylabel="goodput, time (s), depth, parcel counts",
        logx=False,
    )
    window_ns = _arrival_window_ns(scale)
    fig.notes.append(
        f"scale={scale.name}; {PLATFORM} x{NUM_CORES} cores; open-loop "
        f"arrivals over a {window_ns / 1e3:.0f} us window; admission bound "
        f"{ADMISSION_BOUND}; credit windows {CREDIT_WINDOWS}; breaker "
        f"threshold {BREAKER.failure_threshold} on a 60x-degraded link"
    )

    # -- panel A: admission policies under an offered-load sweep -----------
    conservation_violations = 0
    for policy in POLICIES:
        goodput: list[tuple[float, float]] = []
        times: list[tuple[float, float]] = []
        peaks: list[tuple[float, float]] = []
        shed: list[tuple[float, float]] = []
        backpressure: list[tuple[float, float]] = []
        readmitted: list[tuple[float, float]] = []
        for utilization in UTILIZATIONS:
            out = _offered_run(scale, utilization, policy)
            result = out.result
            if not ADMISSION_CONSERVED.holds(
                out.offered, out.completed, out.shed
            ):
                conservation_violations += 1
            if policy == "spill" and not SPILL_CONSERVED.holds(result):
                conservation_violations += 1
            goodput.append((utilization, out.goodput))
            times.append((utilization, result.execution_time_s))
            peaks.append((utilization, result.peak_queue_depth))
            shed.append((utilization, float(out.shed)))
            backpressure.append(
                (utilization, result.backpressure_wait_ns / 1e9)
            )
            readmitted.append((utilization, result.tasks_readmitted))
        fig.add_series("A admission: goodput", Series(policy, goodput))
        fig.add_series(
            "A admission: completion time (s)", Series(policy, times)
        )
        fig.add_series("A admission: peak queue depth", Series(policy, peaks))
        if policy == "shed":
            fig.add_series("A admission: accounting", Series("shed", shed))
        if policy == "block":
            fig.add_series(
                "A admission: accounting",
                Series("backpressure wait (s)", backpressure),
            )
        if policy == "spill":
            fig.add_series(
                "A admission: accounting", Series("readmitted", readmitted)
            )

    # -- panel B: credit windows on the distributed stencil ----------------
    hwm_points: list[tuple[float, float]] = []
    credit_times: list[tuple[float, float]] = []
    baseline = _dist_stencil(scale)
    hwm_points.append((0.0, float(baseline.max_unacked_in_flight)))
    credit_times.append((0.0, baseline.execution_time_s))
    for window in CREDIT_WINDOWS:
        result = _dist_stencil(scale, credits=CreditParams(window=window))
        hwm_points.append((float(window), float(result.max_unacked_in_flight)))
        credit_times.append((float(window), result.execution_time_s))
    fig.add_series(
        "B credits (dist stencil)",
        Series("max unacked in flight", hwm_points),
    )
    fig.add_series(
        "B credits (dist stencil)", Series("completion time (s)", credit_times)
    )

    # -- panel C: credits compose with an irregular pattern ----------------
    spread_spec = TaskBenchSpec(
        pattern="spread",
        width=16 if scale.name == "smoke" else 24,
        steps=8 if scale.name == "smoke" else 12,
    )
    spread = run_taskbench_dist(
        DistConfig(
            num_localities=2,
            platform=PLATFORM,
            cores_per_locality=4,
            retry=RETRY,
            overload=OverloadConfig(credits=CreditParams(window=4)),
        ),
        spread_spec,
    )
    PARCELS_CONSERVED.require(spread)
    fig.add_series(
        "C taskbench spread + credits",
        Series(
            "tasks executed / max unacked",
            [
                (0.0, float(spread.tasks_executed)),
                (1.0, float(spread.max_unacked_in_flight)),
            ],
        ),
    )

    # -- panel D: breaker vs no breaker on a degraded link -----------------
    degraded_base = _dist_stencil(scale, faults=_degradation_plan())
    degraded_breaker = _dist_stencil(
        scale, breaker=BREAKER, faults=_degradation_plan()
    )
    fig.add_series(
        "D breaker under 60x degradation",
        Series(
            "retransmissions",
            [
                (0.0, float(degraded_base.parcels_retransmitted)),
                (1.0, float(degraded_breaker.parcels_retransmitted)),
            ],
        ),
    )
    fig.add_series(
        "D breaker under 60x degradation",
        Series(
            "breaker transitions",
            [
                (0.0, float(degraded_base.breaker_transitions)),
                (1.0, float(degraded_breaker.breaker_transitions)),
            ],
        ),
    )
    fig.add_series(
        "D breaker under 60x degradation",
        Series(
            "completion time (s)",
            [
                (0.0, degraded_base.execution_time_s),
                (1.0, degraded_breaker.execution_time_s),
            ],
        ),
    )

    # -- panel E: the governor closes the loop ------------------------------
    governor = OverloadGovernor(grain_ns=1_000)
    governed: list[tuple[float, float]] = []
    grains: list[tuple[float, float]] = []
    epochs = _governor_epochs(scale)
    for epoch in range(epochs):
        out = _offered_run(
            scale,
            GOVERNOR_UTILIZATION,
            "shed",
            grain_ns=governor.grain_ns,
            seed=epoch,
        )
        signals = GovernorSignals.from_run(out.result)
        action = governor.observe(signals)
        governed.append((float(epoch), out.goodput))
        grains.append((float(epoch), float(action.grain_ns)))
    ungoverned = _offered_run(
        scale, GOVERNOR_UTILIZATION, "shed", grain_ns=1_000, seed=0
    )
    fig.add_series("E governor epochs", Series("governed goodput", governed))
    fig.add_series("E governor epochs", Series("grain (ns)", grains))
    fig.add_series(
        "E governor epochs",
        Series(
            "ungoverned goodput (fine grain)",
            [(float(e), ungoverned.goodput) for e in range(epochs)],
        ),
    )
    fig.notes.append(
        "governor actions: "
        + ", ".join(f"{a.kind}@{a.grain_ns}ns" for a in governor.actions)
    )

    # -- summary: determinism and conservation ------------------------------
    shed_a = _offered_run(scale, max(UTILIZATIONS), "shed")
    shed_b = _offered_run(scale, max(UTILIZATIONS), "shed")
    admission_deterministic = (
        shed_a.result.execution_time_ns == shed_b.result.execution_time_ns
        and shed_a.result.counters.values == shed_b.result.counters.values
    )
    breaker_rerun = _dist_stencil(
        scale, breaker=BREAKER, faults=_degradation_plan()
    )
    breaker_deterministic = (
        breaker_rerun.execution_time_ns == degraded_breaker.execution_time_ns
        and breaker_rerun.counters.values == degraded_breaker.counters.values
    )
    summary = "summary"
    fig.add_series(
        summary,
        Series(
            "determinism (1 = bit-identical rerun)",
            [
                (0.0, 1.0 if admission_deterministic else 0.0),
                (1.0, 1.0 if breaker_deterministic else 0.0),
            ],
        ),
    )
    fig.add_series(
        summary,
        Series(
            "conservation violations",
            [(0.0, float(conservation_violations))],
        ),
    )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []

    def series_map(panel: str) -> dict[str, dict[float, float]]:
        if panel not in fig.panels:
            problems.append(f"{fig.figure_id}: panel {panel!r} missing")
            return {}
        return {s.label: dict(s.points) for s in fig.panels[panel]}

    lo, mid, hi = UTILIZATIONS[0], 2.0, max(UTILIZATIONS)

    # -- A: divergence vs plateau ------------------------------------------
    times = series_map("A admission: completion time (s)")
    goodput = series_map("A admission: goodput")
    peaks = series_map("A admission: peak queue depth")
    accounting = series_map("A admission: accounting")
    if times:
        unbounded = times["unbounded"]
        if unbounded[hi] < 3.0 * unbounded[1.0]:
            problems.append(
                f"{fig.figure_id}: unbounded completion time at {hi}x load "
                f"({unbounded[hi]:.6f} s) did not diverge vs 1x "
                f"({unbounded[1.0]:.6f} s)"
            )
        shed_t = times["shed"]
        if shed_t[hi] > 1.5 * shed_t[1.0]:
            problems.append(
                f"{fig.figure_id}: shed completion time at {hi}x load "
                f"({shed_t[hi]:.6f} s) not bounded near the 1x time "
                f"({shed_t[1.0]:.6f} s)"
            )
    if goodput:
        for policy in POLICIES:
            g = goodput[policy]
            if g[hi] < g[lo]:
                problems.append(
                    f"{fig.figure_id}: {policy} goodput fell below the "
                    f"underloaded point ({g[hi]:.3f} < {g[lo]:.3f})"
                )
            if abs(g[hi] - g[mid]) > 0.1 * max(g[mid], 1e-9):
                problems.append(
                    f"{fig.figure_id}: {policy} goodput did not plateau "
                    f"({g[mid]:.3f} at {mid}x vs {g[hi]:.3f} at {hi}x)"
                )
    if peaks:
        for policy in ("block", "shed", "spill"):
            peak = peaks[policy][hi]
            if peak > ADMISSION_BOUND:
                problems.append(
                    f"{fig.figure_id}: {policy} peak queue depth {peak:.0f} "
                    f"exceeds the admission bound {ADMISSION_BOUND}"
                )
        if peaks["unbounded"][hi] <= 2 * ADMISSION_BOUND:
            problems.append(
                f"{fig.figure_id}: unbounded peak depth "
                f"({peaks['unbounded'][hi]:.0f}) stayed near the bound — "
                "the overload sweep is not actually overloading"
            )
    if accounting:
        if accounting["shed"][hi] <= 0:
            problems.append(
                f"{fig.figure_id}: shed policy shed nothing at {hi}x load"
            )
        if accounting["backpressure wait (s)"][hi] <= 0:
            problems.append(
                f"{fig.figure_id}: block policy metered no backpressure "
                f"at {hi}x load"
            )
        if accounting["readmitted"][hi] <= 0:
            problems.append(
                f"{fig.figure_id}: spill policy re-admitted nothing at "
                f"{hi}x load"
            )

    # -- B: credit windows bound in-flight parcels -------------------------
    credits = series_map("B credits (dist stencil)")
    if credits:
        hwm = credits["max unacked in flight"]
        for window in CREDIT_WINDOWS:
            if hwm[float(window)] > window:
                problems.append(
                    f"{fig.figure_id}: credit window {window} violated — "
                    f"max unacked in flight {hwm[float(window)]:.0f}"
                )
        if hwm[0.0] <= max(CREDIT_WINDOWS):
            problems.append(
                f"{fig.figure_id}: uncontrolled baseline high-water "
                f"({hwm[0.0]:.0f}) does not exceed the largest window "
                f"({max(CREDIT_WINDOWS)}) — the workload cannot show "
                "flow control working"
            )

    # -- C: credits compose with the spread pattern ------------------------
    spread = series_map("C taskbench spread + credits")
    if spread:
        points = spread["tasks executed / max unacked"]
        if points[0.0] <= 0:
            problems.append(
                f"{fig.figure_id}: taskbench spread under credits executed "
                "no tasks"
            )
        if points[1.0] > 4:
            problems.append(
                f"{fig.figure_id}: taskbench spread violated its credit "
                f"window (max unacked {points[1.0]:.0f} > 4)"
            )

    # -- D: the breaker caps the storm -------------------------------------
    breaker = series_map("D breaker under 60x degradation")
    if breaker:
        retx = breaker["retransmissions"]
        if retx[1.0] >= retx[0.0]:
            problems.append(
                f"{fig.figure_id}: breaker did not reduce retransmissions "
                f"({retx[1.0]:.0f} with vs {retx[0.0]:.0f} without)"
            )
        if breaker["breaker transitions"][1.0] < 2:
            problems.append(
                f"{fig.figure_id}: breaker never cycled "
                f"({breaker['breaker transitions'][1.0]:.0f} transitions)"
            )

    # -- E: governed goodput plateaus above the ungoverned baseline --------
    governor = series_map("E governor epochs")
    if governor:
        governed = sorted(governor["governed goodput"].items())
        ungoverned = governor["ungoverned goodput (fine grain)"][0.0]
        first, last = governed[0][1], governed[-1][1]
        prev = governed[-2][1]
        if last < 1.2 * ungoverned:
            problems.append(
                f"{fig.figure_id}: governed goodput ({last:.3f}) did not "
                f"beat the ungoverned fine grain ({ungoverned:.3f}) by 20%"
            )
        if last < first:
            problems.append(
                f"{fig.figure_id}: governed goodput regressed across "
                f"epochs ({first:.3f} -> {last:.3f})"
            )
        if abs(last - prev) > 0.1 * max(prev, 1e-9):
            problems.append(
                f"{fig.figure_id}: governed goodput still moving at the "
                f"final epoch ({prev:.3f} -> {last:.3f}) — no plateau"
            )

    # -- summary: determinism and conservation ------------------------------
    summary = series_map("summary")
    if summary:
        determinism = summary["determinism (1 = bit-identical rerun)"]
        if determinism[0.0] != 1.0:
            problems.append(
                f"{fig.figure_id}: two runs of the shed configuration "
                "disagreed — admission control broke determinism"
            )
        if determinism[1.0] != 1.0:
            problems.append(
                f"{fig.figure_id}: two runs of the breaker configuration "
                "disagreed — breaker jitter is not a pure function of seed"
            )
        if summary["conservation violations"][0.0] != 0:
            problems.append(
                f"{fig.figure_id}: admission conservation violated "
                "(offered != completed + shed, or spill leaked tasks)"
            )
    return problems
