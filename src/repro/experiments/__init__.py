"""Experiment harness: regenerate every table and figure of the paper.

Each experiment module exposes

- ``run(scale) -> FigureResult`` — execute the sweep at a given
  :class:`repro.experiments.config.Scale`;
- ``shape_checks(result) -> list[str]`` — the paper's qualitative claims for
  that figure, returned as a list of violations (empty list = reproduced).

The mapping to the paper:

=============  ====================================================
experiment     paper artifact
=============  ====================================================
``table1``     Table I, platform specifications
``fig3``       Fig. 3a-d, execution time vs grain, strong scaling
``fig4``       Fig. 4a-c, idle-rate, Haswell 8/16/28 cores
``fig5``       Fig. 5a-c, idle-rate, Xeon Phi 16/32/60 cores
``fig6``       Fig. 6, wait time per HPX-thread, Haswell
``fig7``       Fig. 7a-c, TM overhead + wait time, Haswell
``fig8``       Fig. 8a-c, TM overhead + wait time, Xeon Phi
``fig9``       Fig. 9a-c, pending-queue accesses, Haswell
``fig10``      Fig. 10a-c, pending-queue accesses, Xeon Phi
``selection``  Sec. IV-A / IV-E in-text grain-selection claims
``tuner``      Sec. VI future work: adaptive grain-size tuning
``ablation``   scheduler-policy / NUMA / timer-overhead ablations
=============  ====================================================

Run from the command line::

    repro-experiments --list
    repro-experiments fig4 --scale bench
    repro-experiments all --scale default --out results/
"""

from repro.experiments.config import SCALES, Scale, get_scale
from repro.experiments.report import FigureResult, Series

__all__ = ["SCALES", "Scale", "get_scale", "FigureResult", "Series"]
