"""figQ: QoS priority isolation — tail latency survives a 4x overload.

The paper's task-size study is single-tenant: one stencil owns the
machine and the only question is how big its tasks should be.  This
figure multi-tenants the same simulated runtime and asks the service
operator's question instead: when the *background* tenants offer far
more work than the machine can absorb, what happens to the p99 sojourn
time of the small interactive tenant that never asked for the overload?

Three tenants share one 8-core runtime over a fixed arrival window:

- **web** — the protected tenant: ``interactive`` class, Poisson
  arrivals pinned at 15% of machine capacity at *every* swept load, so
  its own demand never confounds the sweep;
- **api** — ``standard`` class, diurnal (sinusoidal-rate) arrivals;
- **etl** — ``batch`` class, bursty MMPP arrivals.

The background pair is scaled so total offered load sweeps 1x -> 4x
capacity.  Under the QoS stack (class-aware shedding that never picks
the ineligible interactive class as victim, plus the Clutch-style EDF
bucket scheduler with warp on wakeup), web's p99 stays pinned near its
uncontended value while the batch tenant absorbs the shedding.  The
ablation panel reruns the 4x point with the class-blind
``priority-local`` scheduler: same tenants, same arrivals, same
admission bound — only the QoS bucket scheduler removed — and web's
tail inflates by an order of magnitude.

Every claim is asserted by :func:`shape_checks`, including per-tenant
conservation (``arrived == completed + shed``) and a bit-identical
rerun of the heaviest configuration.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.overload import AdmissionParams, OverloadConfig
from repro.qos import (
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    QosServiceConfig,
    QosServiceOutcome,
    Tenant,
    default_classes,
    run_qos_service,
)

FIGURE_ID = "figQ"
TITLE = "QoS priority isolation: interactive p99 under background overload"
PAPER_CLAIMS = [
    "the interactive tenant's p99 sojourn time at 4x offered load stays "
    "within 1.5x of its value at 1x load — the QoS stack isolates it "
    "from the background overload",
    "overload lands on the least-protected class: the batch tenant sheds "
    "a growing fraction of its arrivals while the interactive tenant "
    "sheds none",
    "removing the QoS bucket scheduler (class-blind priority-local "
    "baseline, same admission bound) inflates the interactive tail — "
    "isolation comes from the QoS machinery, not the admission bound "
    "alone",
    "per-tenant conservation holds at every load: every arrival is "
    "either completed with an exact sojourn sample or shed with a typed "
    "error",
    "the heaviest configuration is bit-reproducible: counters and "
    "simulated completion time are identical across reruns",
]

PLATFORM = "haswell"
NUM_CORES = 8
#: total offered load as a multiple of machine capacity (the x axis)
UTILIZATIONS = (1.0, 2.0, 4.0)
#: the protected tenant's share of capacity, constant across the sweep
WEB_UTILIZATION = 0.15
#: request grain for every tenant (ns)
GRAIN_NS = 2_000
#: hot-queue bound for the shed admission policy
ADMISSION_BOUND = 64

BATCH, STANDARD, INTERACTIVE = default_classes()

SHED = OverloadConfig(
    admission=AdmissionParams(max_depth=ADMISSION_BOUND, policy="shed")
)


def _arrival_window_ns(scale: Scale) -> int:
    # Fixed window, same reasoning as figO: long enough that per-tenant
    # percentiles rest on hundreds of samples, cheap enough for smoke.
    del scale
    return 300_000


def _gap_ns(utilization: float) -> float:
    """Mean interarrival that offers ``utilization`` x capacity."""
    return GRAIN_NS / (NUM_CORES * utilization)


def _tenants(total_utilization: float) -> list[Tenant]:
    """web pinned at 15% capacity; api/etl scaled to fill the rest."""
    m = (total_utilization - WEB_UTILIZATION) / 0.85
    return [
        Tenant(
            0, "web", INTERACTIVE, GRAIN_NS,
            PoissonArrivals(_gap_ns(WEB_UTILIZATION)),
        ),
        Tenant(
            1, "api", STANDARD, GRAIN_NS,
            DiurnalArrivals(_gap_ns(0.3 * m)),
        ),
        Tenant(
            2, "etl", BATCH, GRAIN_NS,
            BurstyArrivals(_gap_ns(0.5 * m)),
        ),
    ]


def _service_run(
    scale: Scale, utilization: float, *, scheduler: str | None = None
) -> QosServiceOutcome:
    config = QosServiceConfig(
        platform=PLATFORM,
        num_cores=NUM_CORES,
        window_ns=_arrival_window_ns(scale),
        overload=SHED,
        scheduler=scheduler,
    )
    return run_qos_service(_tenants(utilization), config)


def _p99_us(out: QosServiceOutcome, tenant: str) -> float:
    stats = out.stats_for(tenant)
    if stats.completed == 0:
        return 0.0
    return stats.p(0.99) / 1e3


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="offered load (x capacity) / configuration",
        ylabel="p99 sojourn (us), shed fraction",
        logx=False,
    )
    window_ns = _arrival_window_ns(scale)
    fig.notes.append(
        f"scale={scale.name}; {PLATFORM} x{NUM_CORES} cores; web pinned at "
        f"{WEB_UTILIZATION:.0%} capacity with grain {GRAIN_NS} ns over a "
        f"{window_ns / 1e3:.0f} us window; shed admission bound "
        f"{ADMISSION_BOUND}; classes interactive/standard/batch"
    )

    # -- panels A/B: the load sweep under the QoS stack --------------------
    conservation_violations = 0
    p99 = {name: [] for name in ("web", "api", "etl")}
    shed = {name: [] for name in ("web", "api", "etl")}
    heaviest: QosServiceOutcome | None = None
    for utilization in UTILIZATIONS:
        out = _service_run(scale, utilization)
        if not out.conserved():
            conservation_violations += 1
        for name in p99:
            p99[name].append((utilization, _p99_us(out, name)))
            shed[name].append((utilization, out.stats_for(name).shed_fraction))
        if utilization == max(UTILIZATIONS):
            heaviest = out
    for name in p99:
        fig.add_series("A p99 sojourn (us)", Series(name, p99[name]))
        fig.add_series("B shed fraction", Series(name, shed[name]))

    # -- panel C: ablate the QoS scheduler at the heaviest load ------------
    assert heaviest is not None
    baseline = _service_run(
        scale, max(UTILIZATIONS), scheduler="priority-local"
    )
    if not baseline.conserved():
        conservation_violations += 1
    fig.add_series(
        "C scheduler ablation at 4x",
        Series(
            "web p99 (us)",
            [(0.0, _p99_us(heaviest, "web")), (1.0, _p99_us(baseline, "web"))],
        ),
    )
    fig.add_series(
        "C scheduler ablation at 4x",
        Series(
            "etl shed fraction",
            [
                (0.0, heaviest.stats_for("etl").shed_fraction),
                (1.0, baseline.stats_for("etl").shed_fraction),
            ],
        ),
    )
    fig.notes.append(
        "ablation: 0 = qos bucket scheduler, 1 = class-blind priority-local"
    )

    # -- summary: determinism and conservation ------------------------------
    rerun = _service_run(scale, max(UTILIZATIONS))
    deterministic = (
        rerun.result.execution_time_ns == heaviest.result.execution_time_ns
        and rerun.result.counters.values == heaviest.result.counters.values
        and all(
            rerun.stats[tid].sojourn_ns == heaviest.stats[tid].sojourn_ns
            for tid in rerun.stats
        )
    )
    fig.add_series(
        "summary",
        Series(
            "determinism (1 = bit-identical rerun)",
            [(0.0, 1.0 if deterministic else 0.0)],
        ),
    )
    fig.add_series(
        "summary",
        Series(
            "conservation violations",
            [(0.0, float(conservation_violations))],
        ),
    )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []

    def series_map(panel: str) -> dict[str, dict[float, float]]:
        if panel not in fig.panels:
            problems.append(f"{fig.figure_id}: panel {panel!r} missing")
            return {}
        return {s.label: dict(s.points) for s in fig.panels[panel]}

    lo, hi = min(UTILIZATIONS), max(UTILIZATIONS)

    # -- A: the protected tenant's tail stays pinned -----------------------
    p99 = series_map("A p99 sojourn (us)")
    if p99:
        web = p99["web"]
        if web[lo] <= 0:
            problems.append(
                f"{fig.figure_id}: web completed nothing at {lo}x load"
            )
        elif web[hi] > 1.5 * web[lo]:
            problems.append(
                f"{fig.figure_id}: web p99 at {hi}x load ({web[hi]:.1f} us) "
                f"exceeds 1.5x its {lo}x value ({web[lo]:.1f} us) — "
                "isolation failed"
            )
        if p99["etl"][hi] <= web[hi]:
            problems.append(
                f"{fig.figure_id}: batch p99 ({p99['etl'][hi]:.1f} us) did "
                f"not exceed interactive p99 ({web[hi]:.1f} us) at {hi}x — "
                "the classes are not differentiated"
            )

    # -- B: overload lands on the least-protected class --------------------
    shed = series_map("B shed fraction")
    if shed:
        if shed["web"][hi] != 0:
            problems.append(
                f"{fig.figure_id}: the interactive tenant shed "
                f"{shed['web'][hi]:.2%} of arrivals at {hi}x load — "
                "class-aware victim selection is not protecting it"
            )
        if shed["etl"][hi] <= 0:
            problems.append(
                f"{fig.figure_id}: the batch tenant shed nothing at {hi}x "
                "load — the sweep is not actually overloading"
            )
        etl = [shed["etl"][u] for u in UTILIZATIONS]
        if any(b < a for a, b in zip(etl, etl[1:])):
            problems.append(
                f"{fig.figure_id}: batch shed fraction is not monotone in "
                f"offered load ({etl})"
            )

    # -- C: isolation comes from the QoS machinery --------------------------
    ablation = series_map("C scheduler ablation at 4x")
    if ablation:
        web_p99 = ablation["web p99 (us)"]
        if web_p99[1.0] <= 1.5 * web_p99[0.0]:
            problems.append(
                f"{fig.figure_id}: class-blind baseline web p99 "
                f"({web_p99[1.0]:.1f} us) is not clearly worse than the QoS "
                f"stack ({web_p99[0.0]:.1f} us) — the scheduler is not "
                "earning its keep"
            )

    # -- summary -------------------------------------------------------------
    summary = series_map("summary")
    if summary:
        if summary["determinism (1 = bit-identical rerun)"][0.0] != 1.0:
            problems.append(
                f"{fig.figure_id}: two runs of the heaviest configuration "
                "disagreed — the QoS stack broke determinism"
            )
        if summary["conservation violations"][0.0] != 0:
            problems.append(
                f"{fig.figure_id}: per-tenant conservation violated "
                "(arrived != completed + shed)"
            )
    return problems
