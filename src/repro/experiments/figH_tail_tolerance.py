"""figH: tail tolerance — grain size × straggler severity.

The paper's U-curve prices task-management overhead against starvation on
a healthy machine.  Gray failure changes the coarse end of that bargain:
a straggling locality does not crash — its heartbeats still arrive, just
late — so the crash detector (correctly) never fires, and every
synchronization point that crosses the slow locality is stretched by the
straggler factor.  The finer the grain, the more synchronization points
per unit of work, so *without* tail tolerance the execution-time-optimal
grain coarsens as stragglers get worse: coarse tasks expose fewer
rendezvous to the slow node.

``repro.tail`` attacks the same tail from the other side: the gray
detector flags the straggler ``degraded`` (a third state — never a crash
declaration), hedged parcels insure individual sends, and speculative
re-execution clones the degraded locality's pending tasks onto healthy
survivors, first completion wins.  The sweep runs task grain × straggler
severity with both legs — tail tolerance on and off — over a ring of
dependency chains with constant total work per cell, and asserts:

- **hedged p99 stays bounded** — at every severity the best-grain p99
  makespan of the tail-on leg is within ``P99_BOUND``× the fault-free
  best, while the tail-off leg diverges beyond it at the top severity;
- **the unprotected optimum coarsens monotonically** — the tail-off best
  grain is non-decreasing in severity and strictly coarser at the top
  severity than fault-free, while the tail-on leg *restores* the
  fault-free optimum (speculation absorbs the synchronization tax that
  was pushing the minimum coarser);
- **work amplification respects the budget** — every cell's speculated
  clones stay within ``max_speculation_frac`` of completed work
  (the PF410 ledger's budget term, asserted per cell);
- **reruns are bit-identical** — a straggled, hedged, speculating cell
  re-run from the same seed reproduces values, makespan, and every
  counter exactly, and all final values match a serial reference.

The gray/crash boundary is part of the claim: every cell must report
``crashes_detected == 0`` (stragglers are degraded, never declared) and
every straggled tail-on cell must have actually flagged the straggler.
"""

from __future__ import annotations

from repro.dist import (
    DistConfig,
    DistRunResult,
    DistRuntime,
    FaultPlan,
    RetryParams,
    TailConfig,
)
from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.faults.plan import Straggler
from repro.recovery import RecoveryConfig
from repro.runtime.future import Future
from repro.runtime.work import FixedWork
from repro.verify.invariants import PARCELS_CONSERVED, SPECULATION_CONSERVED

FIGURE_ID = "figH"
TITLE = "Tail tolerance: grain vs straggler severity (simulated Haswell)"
PAPER_CLAIMS = [
    "a straggling locality is a gray failure: its heartbeats arrive late "
    "but arrive, so the crash quorum never fires and every cross-locality "
    "synchronization point is stretched by the straggler factor",
    "without tail tolerance the execution-time-optimal grain coarsens "
    "monotonically with straggler severity — fine grains multiply the "
    "rendezvous that expose the slow node",
    "with hedged parcels and speculative re-execution the p99 makespan at "
    "the best grain stays within a small constant of fault-free while the "
    "unprotected leg diverges, and the fault-free optimum grain is restored",
    "speculation is budgeted: cloned work never exceeds "
    "max_speculation_frac of completed tasks, and a rerun of the same "
    "seed is bit-identical",
]

NUM_LOCALITIES = 4
CORES_PER_LOCALITY = 2
PLATFORM = "haswell"
SEED = 19
#: the locality that straggles (never crashes)
STRAGGLER_LOCALITY = NUM_LOCALITIES - 1
#: straggler severities swept: healthy, bad, pathological
SEVERITIES = (1.0, 8.0, 32.0)
#: per-step per-locality work (ns), held constant across the grain sweep
STEP_WORK_NS = 200_000
#: chain widths swept; grain = STEP_WORK_NS / width, so fine grains mean
#: many small synchronized tasks and width 1 starves one of the two cores
WIDTHS = (8, 4, 2, 1)
#: a small parcel-drop rate so hedged sends genuinely race retransmits
DROP_RATE = 0.02
#: hedged-leg p99 must stay within this multiple of the fault-free best
#: while the unhedged leg at top severity must exceed it
P99_BOUND = 2.0
#: severe stragglers must stay *gray*: the crash detector's adaptive
#: threshold is lifted far above the worst heartbeat stretch so suspicion
#: never reaches quorum (the figH claim is about the third state)
SUSPICION_AFTER = 64.0
TAIL = TailConfig(check_interval_ns=25_000, hedge_min_delay_ns=5_000)
RECOVERY = RecoveryConfig(
    checkpoint_interval_ns=200_000, suspicion_after=SUSPICION_AFTER
)


def chain_steps(scale: Scale) -> int:
    """Ring-chain depth: enough steps that the straggler's tax and the
    speculation rescue both repeat many times per cell."""
    return max(10, scale.time_steps * 2)


def p99_samples(scale: Scale) -> int:
    """Runs per cell (distinct runtime seeds); the p99 of a handful of
    deterministic samples is their maximum."""
    return max(2, scale.repetitions)


def _step_fn(t: int, i: int, j: int):
    return lambda a, b: a * 0.5 + b * 0.25 + t * 0.001 + i + j * 0.01


def serial_reference(steps: int, width: int) -> list[float]:
    """The workload's answer, computed serially with the same arithmetic."""
    vals = [
        [float(i + j) for j in range(width)] for i in range(NUM_LOCALITIES)
    ]
    for t in range(steps):
        vals = [
            [
                _step_fn(t, i, j)(
                    vals[i][j], vals[(i + 1) % NUM_LOCALITIES][j]
                )
                for j in range(width)
            ]
            for i in range(NUM_LOCALITIES)
        ]
    return [v for row in vals for v in row]


def build_workload(
    runtime: DistRuntime, steps: int, width: int
) -> list[Future]:
    """``width`` ring-coupled chains per locality: chain ``j``'s step ``t``
    on locality ``i`` consumes its own step ``t-1`` and the right
    neighbour's (one halo parcel per chain per step), each step costing
    ``STEP_WORK_NS / width`` so total work per cell is grain-invariant."""
    grain = STEP_WORK_NS // width
    prev = [
        [
            runtime.make_ready_future(
                float(i + j), locality=i, name=f"root{i}c{j}"
            )
            for j in range(width)
        ]
        for i in range(NUM_LOCALITIES)
    ]
    for t in range(steps):
        prev = [
            [
                runtime.dataflow(
                    _step_fn(t, i, j),
                    [prev[i][j], prev[(i + 1) % NUM_LOCALITIES][j]],
                    locality=i,
                    work=FixedWork(grain),
                    name=f"s{t}l{i}c{j}",
                )
                for j in range(width)
            ]
            for i in range(NUM_LOCALITIES)
        ]
    return [f for row in prev for f in row]


def _config(*, severity: float, tail_on: bool, seed: int) -> DistConfig:
    stragglers = (
        (Straggler(STRAGGLER_LOCALITY, severity),) if severity > 1.0 else ()
    )
    return DistConfig(
        num_localities=NUM_LOCALITIES,
        platform=PLATFORM,
        cores_per_locality=CORES_PER_LOCALITY,
        seed=seed,
        faults=FaultPlan(
            seed=seed + 7, drop_rate=DROP_RATE, stragglers=stragglers
        ),
        retry=RetryParams(),
        crash_recovery=RECOVERY,
        tail=TAIL if tail_on else None,
    )


def run_cell(
    steps: int, width: int, *, severity: float, tail_on: bool, seed: int
) -> tuple[DistRunResult, list[float]]:
    """One sweep cell: build, run, return (result, final values)."""
    runtime = DistRuntime(
        _config(severity=severity, tail_on=tail_on, seed=seed)
    )
    finals = build_workload(runtime, steps, width)
    result = runtime.wait(finals)
    return result, [f.value for f in finals]


def _check_cell(
    result: DistRunResult,
    values: list[float],
    reference: list[float],
    steps: int,
    width: int,
    *,
    severity: float,
    tail_on: bool,
    problems: list[str],
    label: str,
) -> None:
    """Per-cell claims every run of the sweep must satisfy."""
    PARCELS_CONSERVED.require(result)
    SPECULATION_CONSERVED.require(result)
    if values != reference:
        problems.append(
            f"{FIGURE_ID}: {label}: final values differ from the serial "
            "reference — speculation or hedging changed the answer"
        )
    if result.crashes_detected != 0:
        problems.append(
            f"{FIGURE_ID}: {label}: {result.crashes_detected} crash(es) "
            "declared — a straggler is a gray failure and must never "
            "reach the crash quorum"
        )
    expected = NUM_LOCALITIES * width * steps
    if result.app_tasks_completed != expected:
        problems.append(
            f"{FIGURE_ID}: {label}: {result.app_tasks_completed} "
            f"application task(s) completed, workload defines {expected}"
        )
    if not tail_on:
        if result.tasks_speculated or result.hedges_armed:
            problems.append(
                f"{FIGURE_ID}: {label}: tail-off run reports tail work "
                f"({result.tasks_speculated} speculations, "
                f"{result.hedges_armed} hedges armed)"
            )
        return
    # Work amplification ≤ budget: the PF410 budget term, per cell.
    if result.speculation_budget > 0 and (
        result.tasks_speculated > result.speculation_budget
    ):
        problems.append(
            f"{FIGURE_ID}: {label}: {result.tasks_speculated} tasks "
            f"speculated exceeds the budget {result.speculation_budget} "
            f"(max_speculation_frac={TAIL.max_speculation_frac:g})"
        )
    if severity > 1.0 and result.degraded_events == 0:
        problems.append(
            f"{FIGURE_ID}: {label}: a {severity:g}x straggler was never "
            "flagged degraded by the gray detector"
        )
    if severity == 1.0 and result.degraded_events != 0:
        problems.append(
            f"{FIGURE_ID}: {label}: fault-free run flagged a locality "
            f"degraded {result.degraded_events} time(s)"
        )


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="task grain (ns)",
        ylabel="p99 makespan (s)",
    )
    steps = chain_steps(scale)
    samples = p99_samples(scale)
    problems: list[str] = []
    fig.notes.append(
        f"scale={scale.name}; {NUM_LOCALITIES} localities x "
        f"{CORES_PER_LOCALITY} cores; {steps}-step ring chains; constant "
        f"{STEP_WORK_NS} ns work per locality-step across the grain sweep; "
        f"locality {STRAGGLER_LOCALITY} straggles at factors "
        f"{tuple(int(s) for s in SEVERITIES)}; p99 over {samples} seeded "
        f"runs per cell; drop rate {DROP_RATE:g} keeps hedging honest; "
        f"suspicion_after={SUSPICION_AFTER:g} so gray never becomes crash"
    )

    best_on: list[tuple[float, float]] = []
    best_off: list[tuple[float, float]] = []
    best_on_p99: dict[float, float] = {}
    best_off_p99: dict[float, float] = {}
    spec_totals: list[tuple[float, float]] = []
    budget_totals: list[tuple[float, float]] = []
    hedge_wins: list[tuple[float, float]] = []
    for severity in SEVERITIES:
        panel = f"{PLATFORM} straggler {severity:g}x"
        curves = {True: [], False: []}
        speculated = budget = won = 0
        for width in WIDTHS:
            grain = STEP_WORK_NS // width
            reference = serial_reference(steps, width)
            for tail_on in (True, False):
                makespans: list[int] = []
                for rep in range(samples):
                    result, values = run_cell(
                        steps, width,
                        severity=severity, tail_on=tail_on,
                        seed=SEED + rep,
                    )
                    _check_cell(
                        result, values, reference, steps, width,
                        severity=severity, tail_on=tail_on,
                        problems=problems,
                        label=(
                            f"severity {severity:g}, grain {grain}, "
                            f"{'tail' if tail_on else 'no-tail'}, "
                            f"seed {SEED + rep}"
                        ),
                    )
                    makespans.append(result.execution_time_ns)
                    if tail_on:
                        speculated += result.tasks_speculated
                        budget += result.speculation_budget
                        won += result.hedges_won
                curves[tail_on].append((grain, max(makespans) / 1e9))
        fig.add_series(
            panel, Series("tail tolerance on: p99 makespan (s)", curves[True])
        )
        fig.add_series(
            panel,
            Series("tail tolerance off: p99 makespan (s)", curves[False]),
        )
        for tail_on, best, best_p99 in (
            (True, best_on, best_on_p99),
            (False, best_off, best_off_p99),
        ):
            grain, p99 = min(curves[tail_on], key=lambda point: point[1])
            best.append((severity, float(grain)))
            best_p99[severity] = p99
        spec_totals.append((severity, float(speculated)))
        budget_totals.append((severity, float(budget)))
        hedge_wins.append((severity, float(won)))

    summary = "summary (x = straggler severity)"
    fig.add_series(summary, Series("best grain, tail on (ns)", best_on))
    fig.add_series(summary, Series("best grain, tail off (ns)", best_off))
    fig.add_series(
        summary,
        Series(
            "best-grain p99 / fault-free best, tail on",
            [
                (s, best_on_p99[s] / best_on_p99[SEVERITIES[0]])
                for s in SEVERITIES
            ],
        ),
    )
    fig.add_series(
        summary,
        Series(
            "best-grain p99 / fault-free best, tail off",
            [
                (s, best_off_p99[s] / best_on_p99[SEVERITIES[0]])
                for s in SEVERITIES
            ],
        ),
    )
    fig.add_series(summary, Series("tasks speculated", spec_totals))
    fig.add_series(summary, Series("speculation budget", budget_totals))
    fig.add_series(summary, Series("hedge wins", hedge_wins))

    # Bit-identical rerun of the nastiest cell: finest grain, top severity,
    # tail on — hedges, speculation, and the gray detector all active.
    first, v1 = run_cell(
        steps, WIDTHS[0],
        severity=SEVERITIES[-1], tail_on=True, seed=SEED,
    )
    second, v2 = run_cell(
        steps, WIDTHS[0],
        severity=SEVERITIES[-1], tail_on=True, seed=SEED,
    )
    deterministic = (
        v1 == v2
        and first.execution_time_ns == second.execution_time_ns
        and first.counters.values == second.counters.values
        and first.tasks_speculated == second.tasks_speculated
        and first.hedges_sent == second.hedges_sent
    )
    fig.add_series(
        summary,
        Series(
            "determinism (1 = bit-identical rerun)",
            [(SEVERITIES[-1], 1.0 if deterministic else 0.0)],
        ),
    )
    fig.add_series(
        summary,
        Series(
            "per-cell checks passed (1 = all)",
            [(SEVERITIES[0], 0.0 if problems else 1.0)],
        ),
    )
    fig.notes.extend(problems)
    fig.notes.append(
        "best grain per severity, tail off: "
        + ", ".join(f"{s:g}x→{int(g)}" for s, g in best_off)
        + "; tail on: "
        + ", ".join(f"{s:g}x→{int(g)}" for s, g in best_on)
    )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    summary = next((p for p in fig.panels if p.startswith("summary")), None)
    if summary is None:
        return [f"{fig.figure_id}: summary panel missing"]
    series = {s.label: dict(s.points) for s in fig.panels[summary]}

    if series["per-cell checks passed (1 = all)"][SEVERITIES[0]] != 1.0:
        problems.extend(
            note for note in fig.notes if note.startswith(f"{fig.figure_id}:")
        )
    if series["determinism (1 = bit-identical rerun)"][SEVERITIES[-1]] != 1.0:
        problems.append(
            f"{fig.figure_id}: two runs of the worst straggled cell "
            "disagreed — tail tolerance is not a pure function of the seed"
        )

    # Claim 1: tail-on p99 at the best grain stays within P99_BOUND of the
    # fault-free best at every severity; the unprotected leg diverges past
    # it at the top severity.
    on_ratio = series["best-grain p99 / fault-free best, tail on"]
    off_ratio = series["best-grain p99 / fault-free best, tail off"]
    for severity in SEVERITIES:
        if on_ratio[severity] > P99_BOUND:
            problems.append(
                f"{fig.figure_id}: tail-on best-grain p99 at severity "
                f"{severity:g}x is {on_ratio[severity]:.2f}x fault-free, "
                f"beyond the {P99_BOUND:g}x bound"
            )
    if off_ratio[SEVERITIES[-1]] <= P99_BOUND:
        problems.append(
            f"{fig.figure_id}: tail-off best-grain p99 at severity "
            f"{SEVERITIES[-1]:g}x is only "
            f"{off_ratio[SEVERITIES[-1]]:.2f}x fault-free — the "
            "unprotected leg did not diverge"
        )
    for lower, upper in zip(SEVERITIES, SEVERITIES[1:]):
        if off_ratio[upper] < off_ratio[lower]:
            problems.append(
                f"{fig.figure_id}: tail-off p99 ratio improved from "
                f"severity {lower:g}x ({off_ratio[lower]:.2f}) to "
                f"{upper:g}x ({off_ratio[upper]:.2f}) — worse stragglers "
                "cannot speed up an unprotected run"
            )

    # Claim 2: the unprotected optimum coarsens monotonically with
    # severity, strictly so from healthy to pathological; the protected
    # leg keeps the fault-free optimum.
    best_off = series["best grain, tail off (ns)"]
    for lower, upper in zip(SEVERITIES, SEVERITIES[1:]):
        if best_off[upper] < best_off[lower]:
            problems.append(
                f"{fig.figure_id}: tail-off best grain at severity "
                f"{upper:g}x ({int(best_off[upper])} ns) finer than at "
                f"{lower:g}x ({int(best_off[lower])} ns) — not monotone"
            )
    if best_off[SEVERITIES[-1]] <= best_off[SEVERITIES[0]]:
        problems.append(
            f"{fig.figure_id}: tail-off best grain at severity "
            f"{SEVERITIES[-1]:g}x ({int(best_off[SEVERITIES[-1]])} ns) not "
            "strictly coarser than fault-free "
            f"({int(best_off[SEVERITIES[0]])} ns)"
        )
    best_on = series["best grain, tail on (ns)"]
    for severity in SEVERITIES[1:]:
        if best_on[severity] != best_on[SEVERITIES[0]]:
            problems.append(
                f"{fig.figure_id}: tail-on best grain moved from "
                f"{int(best_on[SEVERITIES[0]])} ns (fault-free) to "
                f"{int(best_on[severity])} ns at severity {severity:g}x — "
                "tail tolerance should restore the fault-free optimum"
            )

    # Claim 3: speculation happened where it should and stayed budgeted.
    speculated = series["tasks speculated"]
    budget = series["speculation budget"]
    if speculated[SEVERITIES[0]] != 0:
        problems.append(
            f"{fig.figure_id}: {int(speculated[SEVERITIES[0]])} tasks "
            "speculated with no straggler present"
        )
    for severity in SEVERITIES[1:]:
        if speculated[severity] <= 0:
            problems.append(
                f"{fig.figure_id}: no speculation at severity "
                f"{severity:g}x — the rescue path never ran"
            )
        if speculated[severity] > budget[severity]:
            problems.append(
                f"{fig.figure_id}: severity {severity:g}x speculated "
                f"{int(speculated[severity])} tasks against a summed "
                f"budget of {int(budget[severity])}"
            )
    if all(series["hedge wins"][s] <= 0 for s in SEVERITIES):
        problems.append(
            f"{fig.figure_id}: no hedged parcel ever won across the whole "
            "sweep — hedging was never exercised"
        )
    return problems
