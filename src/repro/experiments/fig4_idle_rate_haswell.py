"""Fig. 4: idle-rate and execution time on Haswell (8/16/28 cores).

See :mod:`repro.experiments.idle_rate_common` for the paper context.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.idle_rate_common import (
    FIG4_CORES,
    PAPER_CLAIMS_FIG4,
    idle_rate_shape_checks,
    run_idle_rate_figure,
)
from repro.experiments.report import FigureResult

FIGURE_ID = "fig4"
TITLE = "Idle-rate: Intel Haswell (8/16/28 cores)"
PAPER_CLAIMS = PAPER_CLAIMS_FIG4


def run(scale: Scale) -> FigureResult:
    return run_idle_rate_figure(scale, "haswell", FIG4_CORES, FIGURE_ID, TITLE)


def shape_checks(fig: FigureResult) -> list[str]:
    return idle_rate_shape_checks(fig, fine_floor=0.55, decoupled_cores=(8, 16))
