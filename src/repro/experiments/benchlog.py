"""Machine-readable benchmark log: ``BENCH_<rev>.json``.

``make bench`` (``pytest benchmarks/ --benchmark-only``) reproduces one
paper artifact per benchmark and asserts its shape checks, but the wall
time and task-count trail used to live only in pytest-benchmark's
terminal table.  This module collects one :class:`BenchRecord` per
figure run — experiment name, wall-clock seconds, simulated-task count,
scale — and writes them as ``BENCH_<git short rev>.json`` next to the
repo root when the benchmark session finishes, so CI can archive a
per-revision performance trail and regressions show up as a diff
between two small JSON files.

The plumbing: :func:`run_figure_benchmark <benchmarks._support.
run_figure_benchmark>` calls :func:`record` around every figure run,
and ``benchmarks/conftest.py`` calls :func:`write` from
``pytest_sessionfinish``.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["BenchRecord", "RECORDS", "git_revision", "record", "reset", "write"]


@dataclass(frozen=True)
class BenchRecord:
    """One benchmarked figure run."""

    experiment: str
    #: wall-clock seconds for ``module.run(scale)``
    wall_s: float
    #: simulated tasks created during the run (across all its sub-runs)
    tasks: int
    scale: str


#: the session accumulator ``write()`` drains
RECORDS: list[BenchRecord] = []


def record(
    experiment: str, wall_s: float, tasks: int, scale: str = "bench"
) -> BenchRecord:
    """Append one run to the session log and return it."""
    rec = BenchRecord(
        experiment=experiment,
        wall_s=round(float(wall_s), 4),
        tasks=int(tasks),
        scale=scale,
    )
    RECORDS.append(rec)
    return rec


def reset() -> None:
    """Drop accumulated records (test isolation)."""
    RECORDS.clear()


def git_revision(cwd: str | Path | None = None) -> str:
    """The short git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def write(
    directory: str | Path = ".", revision: str | None = None
) -> Path | None:
    """Write ``BENCH_<rev>.json`` into ``directory``; ``None`` when the
    session recorded nothing (e.g. ``-k`` deselected every benchmark)."""
    if not RECORDS:
        return None
    rev = revision if revision is not None else git_revision(directory)
    path = Path(directory) / f"BENCH_{rev}.json"
    payload = {
        "revision": rev,
        "records": [asdict(r) for r in sorted(RECORDS, key=lambda r: r.experiment)],
        "total_wall_s": round(sum(r.wall_s for r in RECORDS), 4),
        "total_tasks": sum(r.tasks for r in RECORDS),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
