"""Machine-readable benchmark log: ``BENCH_<rev>.json``.

``make bench`` (``pytest benchmarks/ --benchmark-only``) reproduces one
paper artifact per benchmark and asserts its shape checks, but the wall
time and task-count trail used to live only in pytest-benchmark's
terminal table.  This module collects one :class:`BenchRecord` per
figure run — experiment name, wall-clock seconds, simulated-task count,
scale — and writes them as ``BENCH_<git short rev>.json`` next to the
repo root when the benchmark session finishes, so CI can archive a
per-revision performance trail and regressions show up as a diff
between two small JSON files.

The plumbing: :func:`run_figure_benchmark <benchmarks._support.
run_figure_benchmark>` calls :func:`record` around every figure run,
and ``benchmarks/conftest.py`` calls :func:`write` from
``pytest_sessionfinish``.

:func:`compare` is the regression gate over two such logs:

    python -m repro.experiments.benchlog compare OLD.json NEW.json

prints a per-figure wall-time table and exits non-zero when any
experiment present in both logs slowed down by more than the threshold
(default 25%).  CI downloads the previous revision's ``bench-log``
artifact and runs exactly this, so a wall-time regression fails the
build with a readable diff instead of burying it in a JSON blob.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "BenchRecord",
    "CompareResult",
    "CompareRow",
    "RECORDS",
    "compare",
    "compare_files",
    "format_table",
    "git_revision",
    "main",
    "record",
    "registered_experiments",
    "reset",
    "write",
]


@dataclass(frozen=True)
class BenchRecord:
    """One benchmarked figure run."""

    experiment: str
    #: wall-clock seconds for ``module.run(scale)``
    wall_s: float
    #: simulated tasks created during the run (across all its sub-runs)
    tasks: int
    scale: str


#: the session accumulator ``write()`` drains
RECORDS: list[BenchRecord] = []


def record(
    experiment: str, wall_s: float, tasks: int, scale: str = "bench"
) -> BenchRecord:
    """Append one run to the session log and return it."""
    rec = BenchRecord(
        experiment=experiment,
        wall_s=round(float(wall_s), 4),
        tasks=int(tasks),
        scale=scale,
    )
    RECORDS.append(rec)
    return rec


def reset() -> None:
    """Drop accumulated records (test isolation)."""
    RECORDS.clear()


def _git(args: list[str], cwd: str | Path | None) -> str | None:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout if out.returncode == 0 else None


def git_revision(cwd: str | Path | None = None) -> str:
    """The short revision of HEAD *right now*, or ``"unknown"``.

    Stamped at emission time — not import time — so a long benchmark
    session that straddles a commit is attributed to the revision the
    log was written under.  A working tree with uncommitted changes
    gets a ``-dirty`` suffix: a trail measured against unreviewed edits
    must never be mistaken for the commit's own baseline.
    """
    rev = (_git(["rev-parse", "--short", "HEAD"], cwd) or "").strip()
    if not rev:
        return "unknown"
    status = _git(["status", "--porcelain"], cwd)
    if status is None or status.strip():
        return f"{rev}-dirty"
    return rev


def registered_experiments() -> list[str]:
    """Every experiment ``make bench`` is expected to cover — the CLI
    registry's names, which the benchmark files record under (their
    ``FIGURE_ID``s match the registry keys one for one)."""
    from repro.experiments.cli import EXPERIMENT_MODULES

    return sorted(EXPERIMENT_MODULES)


def write(
    directory: str | Path = ".",
    revision: str | None = None,
    registered: list[str] | None = None,
) -> Path | None:
    """Write ``BENCH_<rev>.json`` into ``directory``; ``None`` when the
    session recorded nothing (e.g. ``-k`` deselected every benchmark).

    Besides the per-run records, the payload pins *coverage*: the sorted
    set of experiments that actually ran, plus every registered
    experiment the session missed — so a figure added to the CLI without
    a benchmark shows up as a named hole in the trail, not a silent gap
    in a diff.
    """
    if not RECORDS:
        return None
    rev = revision if revision is not None else git_revision(directory)
    expected = (
        registered_experiments() if registered is None else sorted(registered)
    )
    ran = sorted({r.experiment for r in RECORDS})
    path = Path(directory) / f"BENCH_{rev}.json"
    payload = {
        "revision": rev,
        "records": [asdict(r) for r in sorted(RECORDS, key=lambda r: r.experiment)],
        "experiments": ran,
        "missing": [name for name in expected if name not in set(ran)],
        "total_wall_s": round(sum(r.wall_s for r in RECORDS), 4),
        "total_tasks": sum(r.tasks for r in RECORDS),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# -- the regression gate --------------------------------------------------------


@dataclass(frozen=True)
class CompareRow:
    """One experiment's wall time across two bench logs."""

    experiment: str
    #: seconds in the old / new log; None when absent from that log
    old_wall_s: float | None
    new_wall_s: float | None

    @property
    def ratio(self) -> float | None:
        """``new / old``, or None when either side is missing or old is 0."""
        if self.old_wall_s is None or self.new_wall_s is None:
            return None
        if self.old_wall_s <= 0.0:
            return None
        return self.new_wall_s / self.old_wall_s

    def regressed(self, threshold: float) -> bool:
        ratio = self.ratio
        return ratio is not None and ratio > 1.0 + threshold


@dataclass(frozen=True)
class CompareResult:
    """Outcome of :func:`compare` — rows plus the verdict."""

    rows: tuple[CompareRow, ...]
    threshold: float

    @property
    def regressions(self) -> tuple[CompareRow, ...]:
        return tuple(r for r in self.rows if r.regressed(self.threshold))

    @property
    def ok(self) -> bool:
        return not self.regressions


def _wall_by_experiment(payload: dict) -> dict[str, float]:
    walls: dict[str, float] = {}
    for rec in payload.get("records", []):
        # a figure benchmarked twice in one session accumulates
        walls[rec["experiment"]] = (
            walls.get(rec["experiment"], 0.0) + float(rec["wall_s"])
        )
    return walls


def compare(old: dict, new: dict, threshold: float = 0.25) -> CompareResult:
    """Diff two ``BENCH_<rev>.json`` payloads, flagging slowdowns.

    An experiment regresses when it appears in both logs and its new
    wall time exceeds the old by more than ``threshold`` (a fraction:
    0.25 means 25% slower fails).  Experiments present on only one side
    (newly added or retired figures) are listed but never regress.
    """
    if threshold < 0.0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    old_walls = _wall_by_experiment(old)
    new_walls = _wall_by_experiment(new)
    rows = tuple(
        CompareRow(
            experiment=name,
            old_wall_s=old_walls.get(name),
            new_wall_s=new_walls.get(name),
        )
        for name in sorted(set(old_walls) | set(new_walls))
    )
    return CompareResult(rows=rows, threshold=threshold)


def compare_files(
    old_path: str | Path, new_path: str | Path, threshold: float = 0.25
) -> CompareResult:
    old = json.loads(Path(old_path).read_text())
    new = json.loads(Path(new_path).read_text())
    return compare(old, new, threshold=threshold)


def format_table(result: CompareResult) -> str:
    """The per-figure table the CI log shows — one row per experiment."""
    header = (
        f"{'experiment':<12} {'old (s)':>9} {'new (s)':>9} "
        f"{'delta':>8}  verdict"
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        old_s = "-" if row.old_wall_s is None else f"{row.old_wall_s:.3f}"
        new_s = "-" if row.new_wall_s is None else f"{row.new_wall_s:.3f}"
        ratio = row.ratio
        if ratio is None:
            delta = "-"
            verdict = "new" if row.old_wall_s is None else "retired"
        else:
            delta = f"{(ratio - 1.0) * 100.0:+.1f}%"
            if row.regressed(result.threshold):
                verdict = f"REGRESSED (> {result.threshold * 100:.0f}%)"
            elif ratio < 1.0:
                verdict = "faster"
            else:
                verdict = "ok"
        lines.append(
            f"{row.experiment:<12} {old_s:>9} {new_s:>9} {delta:>8}  {verdict}"
        )
    if result.ok:
        lines.append(
            f"no wall-time regression above {result.threshold * 100:.0f}%"
        )
    else:
        names = ", ".join(r.experiment for r in result.regressions)
        lines.append(
            f"{len(result.regressions)} regression(s) above "
            f"{result.threshold * 100:.0f}%: {names}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.benchlog",
        description="Benchmark-log tooling (BENCH_<rev>.json).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    cmp_parser = sub.add_parser(
        "compare",
        help="diff two bench logs; exit 1 on a wall-time regression",
    )
    cmp_parser.add_argument("old", help="baseline BENCH_<rev>.json")
    cmp_parser.add_argument("new", help="candidate BENCH_<rev>.json")
    cmp_parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="slowdown fraction that fails the gate (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    result = compare_files(args.old, args.new, threshold=args.threshold)
    print(format_table(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
