"""figC: grain size × checkpoint interval — surviving a locality crash.

The paper's U-curve prices task management against starvation; figR added
parcel faults; figC adds the classic resilience trade-off on top: how often
should a locality checkpoint its completed task results?

Two forces, both functions of the grain:

- **checkpointing costs a tick** — every ``checkpoint_interval_ns`` each
  locality runs a visible checkpoint task (``checkpoint_base_ns`` plus the
  serialization of the entries it persists) that competes with application
  work.  An interval shorter than the grain's task-completion period buys
  *nothing*: most ticks persist zero entries and are pure overhead, so the
  useful interval floor rises with the grain;
- **a long interval concentrates loss** — when the heartbeat detector
  declares a locality dead, every result completed since its last durable
  checkpoint must be *re-executed* from lineage on the survivors, and each
  re-execution costs the grain.  Expected lost work grows linearly with
  the interval.

Young's approximation puts the optimum near ``sqrt(2 x runtime x
per-checkpoint cost)`` — and since the runtime of a fixed-depth chain
scales with the grain, the best interval coarsens as the grain does.  The
sweep runs grain × checkpoint interval with a mid-run crash of the last
locality and asserts exactly that, plus the recovery-correctness claims:

- every crashed cell *completes* and its final values are bit-identical to
  a crash-free serial reference (checkpoint/restore moves results, it never
  recomputes them differently);
- recovered-task conservation: ``reexecuted == lost`` and the application
  task count matches the crash-free run's;
- time-to-recover decomposes exactly into detection + restore +
  re-execution, and is bounded by the crash-free runtime;
- a crashed cell re-run from the same seed is bit-identical;
- the same crash with ``crash_recovery=None`` still dies with the legacy
  :class:`~repro.faults.LocalityCrashError` diagnosis.
"""

from __future__ import annotations

from repro.dist import (
    CrashAt,
    DistConfig,
    DistRunResult,
    DistRuntime,
    FaultPlan,
    LocalityCrashError,
    ParcelLostError,
    RetryParams,
)
from repro.experiments.config import Scale
from repro.experiments.report import FigureResult, Series
from repro.recovery import RecoveryConfig
from repro.runtime.future import Future
from repro.runtime.work import FixedWork
from repro.verify.invariants import PARCELS_CONSERVED

FIGURE_ID = "figC"
TITLE = "Crash recovery: best checkpoint interval vs grain (simulated Haswell)"
PAPER_CLAIMS = [
    "checkpoint ticks shorter than the grain's completion period are pure "
    "overhead, so the useful interval floor rises with the grain",
    "a longer interval loses more completed work to a crash, and every "
    "lost task is re-executed at the cost of one grain",
    "the execution-time-optimal checkpoint interval therefore coarsens "
    "as the grain coarsens (Young's sqrt(runtime x cost) scaling)",
    "a crashed run completes with values bit-identical to a crash-free "
    "serial reference, with lost work conserved (reexecuted == lost)",
]

NUM_LOCALITIES = 4
#: one core per locality so checkpoint ticks genuinely compete with the
#: chain (a second core would hide them entirely and flatten the sweep)
CORES_PER_LOCALITY = 1
PLATFORM = "haswell"
SEED = 11
#: the locality that dies
CRASH_LOCALITY = NUM_LOCALITIES - 1
#: crash times as fractions of the measured crash-free runtime; a single
#: crash sample quantizes the lost-work term at grain granularity, so each
#: cell averages over these
CRASH_FRACTIONS = (0.35, 0.5, 0.65)
#: task grains swept (virtual ns per chain step)
GRAINS_NS = (10_000, 160_000, 640_000)
#: checkpoint intervals swept (virtual ns); wide enough that every grain's
#: U-curve minimum is interior to the grid
INTERVALS_NS = (
    100_000, 160_000, 250_000, 400_000, 650_000, 1_000_000, 2_500_000
)
#: ceiling on how much a recovered run may cost relative to crash-free
SLOWDOWN_BOUND = 3.0
RETRY = RetryParams()


def chain_depth(scale: Scale) -> int:
    """Chain steps per locality; deep enough that a mid-run crash loses
    real work at every grain and the interval sweep is not dominated by
    single-task quantization."""
    return max(24, scale.time_steps * 8)


def serial_reference(steps: int) -> list[float]:
    """The workload's answer, computed serially with the same arithmetic."""
    vals = [float(i) for i in range(NUM_LOCALITIES)]
    for t in range(steps):
        vals = [
            vals[i] * 0.5 + vals[(i + 1) % NUM_LOCALITIES] * 0.25
            + t + i * 0.125
            for i in range(NUM_LOCALITIES)
        ]
    return vals


def _mean(values) -> float:
    vals = list(values)
    return sum(vals) / len(vals)


def _step_fn(t: int, i: int):
    return lambda a, b: a * 0.5 + b * 0.25 + t + i * 0.125


def build_workload(
    runtime: DistRuntime, steps: int, grain_ns: int
) -> list[Future]:
    """A ring of dependency chains: step ``t`` on locality ``i`` consumes
    step ``t-1`` of itself and of its right neighbour (one halo parcel per
    locality per step), costing ``grain_ns`` of compute."""
    prev = [
        runtime.make_ready_future(float(i), locality=i, name=f"root{i}")
        for i in range(NUM_LOCALITIES)
    ]
    for t in range(steps):
        prev = [
            runtime.dataflow(
                _step_fn(t, i),
                [prev[i], prev[(i + 1) % NUM_LOCALITIES]],
                locality=i,
                work=FixedWork(grain_ns),
                name=f"s{t}l{i}",
            )
            for i in range(NUM_LOCALITIES)
        ]
    return prev


def _config(
    *,
    crash_at_ns: int | None,
    checkpoint_interval_ns: int | None,
) -> DistConfig:
    faults = None
    if crash_at_ns is not None:
        faults = FaultPlan(
            seed=SEED, crashes=(CrashAt(CRASH_LOCALITY, crash_at_ns),)
        )
    recovery = None
    if checkpoint_interval_ns is not None:
        recovery = RecoveryConfig(
            checkpoint_interval_ns=checkpoint_interval_ns
        )
    return DistConfig(
        num_localities=NUM_LOCALITIES,
        platform=PLATFORM,
        cores_per_locality=CORES_PER_LOCALITY,
        seed=SEED,
        retry=RETRY,
        faults=faults,
        crash_recovery=recovery,
    )


def run_cell(
    steps: int,
    grain_ns: int,
    *,
    crash_at_ns: int | None = None,
    checkpoint_interval_ns: int | None = None,
) -> tuple[DistRunResult, list[float]]:
    """One sweep cell: build, run, return (result, final values)."""
    runtime = DistRuntime(
        _config(
            crash_at_ns=crash_at_ns,
            checkpoint_interval_ns=checkpoint_interval_ns,
        )
    )
    finals = build_workload(runtime, steps, grain_ns)
    result = runtime.wait(finals)
    return result, [f.value for f in finals]


def _check_recovered_cell(
    result: DistRunResult,
    values: list[float],
    reference: list[float],
    clean: DistRunResult,
    problems: list[str],
    label: str,
) -> None:
    """The per-cell correctness claims every crashed run must satisfy."""
    if values != reference:
        problems.append(
            f"{FIGURE_ID}: {label}: recovered values {values} differ from "
            f"the crash-free serial reference {reference}"
        )
    if result.crashes_detected != 1:
        problems.append(
            f"{FIGURE_ID}: {label}: expected exactly 1 detected crash, "
            f"got {result.crashes_detected}"
        )
    if result.tasks_reexecuted != result.tasks_lost:
        problems.append(
            f"{FIGURE_ID}: {label}: lost-work conservation broken — "
            f"{result.tasks_lost} task(s) lost but "
            f"{result.tasks_reexecuted} re-executed"
        )
    if result.app_tasks_completed != clean.app_tasks_completed:
        problems.append(
            f"{FIGURE_ID}: {label}: {result.app_tasks_completed} "
            "application task(s) completed, crash-free run completed "
            f"{clean.app_tasks_completed}"
        )
    decomposed = (
        result.detection_ns + result.restore_ns + result.reexecution_ns
    )
    if decomposed != result.recovery_total_ns:
        problems.append(
            f"{FIGURE_ID}: {label}: recovery time does not decompose — "
            f"detection {result.detection_ns} + restore {result.restore_ns}"
            f" + reexecution {result.reexecution_ns} != total "
            f"{result.recovery_total_ns}"
        )
    # Bounded: the recovery window sits inside the run, and the whole run
    # (including re-executing the dead locality's chain on survivors) stays
    # within a small multiple of the crash-free runtime.
    if not 0 < result.recovery_total_ns < result.execution_time_ns:
        problems.append(
            f"{FIGURE_ID}: {label}: time-to-recover "
            f"{result.recovery_total_ns} ns not within (0, run time "
            f"{result.execution_time_ns} ns)"
        )
    if result.execution_time_ns > SLOWDOWN_BOUND * clean.execution_time_ns:
        problems.append(
            f"{FIGURE_ID}: {label}: recovered run time "
            f"{result.execution_time_ns} ns exceeds {SLOWDOWN_BOUND:g}x "
            f"the crash-free {clean.execution_time_ns} ns"
        )


def run(scale: Scale) -> FigureResult:
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="checkpoint interval (ns)",
        ylabel="execution time (s)",
    )
    steps = chain_depth(scale)
    reference = serial_reference(steps)
    problems: list[str] = []
    fig.notes.append(
        f"scale={scale.name}; {NUM_LOCALITIES} localities x "
        f"{CORES_PER_LOCALITY} core; chain depth {steps}; locality "
        f"{CRASH_LOCALITY} crashes at fractions {CRASH_FRACTIONS} of the "
        "crash-free runtime (cells average over crash times); heartbeat "
        "detection, checkpoint/restore and lineage re-execution as "
        "configured by repro.recovery.RecoveryConfig"
    )

    best_by_grain: list[tuple[float, float]] = []
    sample: DistRunResult | None = None
    sample_clean: DistRunResult | None = None
    for grain in GRAINS_NS:
        clean, clean_values = run_cell(steps, grain)
        if clean_values != reference:
            problems.append(
                f"{FIGURE_ID}: grain {grain}: crash-free run diverged from "
                "the serial reference"
            )
        # The app-task yardstick for a crash-free run: recovery enabled but
        # no crash, so app_tasks_completed is populated on the same basis.
        clean_rec, _ = run_cell(
            steps, grain, checkpoint_interval_ns=INTERVALS_NS[-1]
        )
        panel = f"{PLATFORM} grain {grain} ns"
        times: list[tuple[float, float]] = []
        recovery_times: list[tuple[float, float]] = []
        lost: list[tuple[float, float]] = []
        for interval in INTERVALS_NS:
            cell: list[DistRunResult] = []
            for fraction in CRASH_FRACTIONS:
                crash_at = int(clean.execution_time_ns * fraction)
                result, values = run_cell(
                    steps, grain,
                    crash_at_ns=crash_at,
                    checkpoint_interval_ns=interval,
                )
                PARCELS_CONSERVED.require(result)
                _check_recovered_cell(
                    result, values, reference, clean_rec, problems,
                    f"grain {grain}, interval {interval}, "
                    f"crash at {fraction:g}T",
                )
                cell.append(result)
                if sample is None:
                    sample, sample_clean = result, clean
            times.append(
                (interval, _mean(r.execution_time_s for r in cell))
            )
            recovery_times.append(
                (interval, _mean(r.recovery_total_ns / 1e9 for r in cell))
            )
            lost.append((interval, _mean(float(r.tasks_lost) for r in cell)))
        fig.add_series(panel, Series("mean execution time (s)", times))
        fig.add_series(
            panel, Series("mean time-to-recover (s)", recovery_times)
        )
        fig.add_series(panel, Series("mean tasks lost to the crash", lost))
        best_interval = min(times, key=lambda point: point[1])[0]
        best_by_grain.append((grain, best_interval))

    summary = "summary (x = grain ns)"
    fig.add_series(
        summary, Series("best checkpoint interval (ns)", best_by_grain)
    )
    assert sample is not None and sample_clean is not None
    fig.add_series(
        summary,
        Series(
            "finest-grain recovery decomposition (ns)",
            [
                (1.0, float(sample.detection_ns)),
                (2.0, float(sample.restore_ns)),
                (3.0, float(sample.reexecution_ns)),
            ],
        ),
    )

    # Bit-identical rerun of one crashed cell.
    grain = GRAINS_NS[0]
    crash_at = int(sample_clean.execution_time_ns * CRASH_FRACTIONS[1])
    first, v1 = run_cell(
        steps, grain, crash_at_ns=crash_at,
        checkpoint_interval_ns=INTERVALS_NS[1],
    )
    second, v2 = run_cell(
        steps, grain, crash_at_ns=crash_at,
        checkpoint_interval_ns=INTERVALS_NS[1],
    )
    deterministic = (
        v1 == v2
        and first.execution_time_ns == second.execution_time_ns
        and first.counters.values == second.counters.values
    )
    fig.add_series(
        summary,
        Series(
            "determinism (1 = bit-identical rerun)",
            [(float(grain), 1.0 if deterministic else 0.0)],
        ),
    )

    # The same crash without crash_recovery still dies the legacy death:
    # either the watchdog's LocalityCrashError or a retry-exhausted
    # ParcelLostError, both ending in "no recovery possible".
    try:
        run_cell(steps, grain, crash_at_ns=crash_at)
    except (LocalityCrashError, ParcelLostError) as exc:
        legacy = 1.0 if "no recovery possible" in str(exc) else 0.0
    else:
        legacy = 0.0
    fig.add_series(
        summary,
        Series(
            "disabled recovery dies the legacy death (1 = yes)",
            [(float(grain), legacy)],
        ),
    )
    fig.add_series(
        summary,
        Series(
            "per-cell checks passed (1 = all)",
            [(float(grain), 0.0 if problems else 1.0)],
        ),
    )
    fig.notes.extend(problems)
    fig.notes.append(
        "best interval per grain: "
        + ", ".join(f"{int(g)}→{int(c)}" for g, c in best_by_grain)
    )
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    summary = next((p for p in fig.panels if p.startswith("summary")), None)
    if summary is None:
        return [f"{fig.figure_id}: summary panel missing"]
    series = {s.label: dict(s.points) for s in fig.panels[summary]}
    grain_f = float(GRAINS_NS[0])

    if series["per-cell checks passed (1 = all)"][grain_f] != 1.0:
        problems.extend(
            note for note in fig.notes if note.startswith(f"{fig.figure_id}:")
        )
    if series["determinism (1 = bit-identical rerun)"][grain_f] != 1.0:
        problems.append(
            f"{fig.figure_id}: two runs of the same crashed cell disagreed "
            "— recovery is not a pure function of the seed"
        )
    if series["disabled recovery dies the legacy death (1 = yes)"][grain_f] != 1.0:
        problems.append(
            f"{fig.figure_id}: with crash_recovery=None the crash did not "
            "surface through the legacy 'no recovery possible' terminal "
            "path"
        )

    # The headline: the optimal checkpoint interval coarsens with the grain.
    best = [
        series["best checkpoint interval (ns)"][float(g)] for g in GRAINS_NS
    ]
    for fine, coarse in zip(best, best[1:]):
        if coarse < fine:
            problems.append(
                f"{fig.figure_id}: best interval sequence {best} is not "
                "monotone non-decreasing over coarsening grains"
            )
            break
    if best[-1] <= best[0]:
        problems.append(
            f"{fig.figure_id}: best interval at the coarsest grain "
            f"({int(best[-1])} ns) not strictly larger than at the finest "
            f"({int(best[0])} ns)"
        )
    return problems
