"""Figure/table result containers and text rendering.

A :class:`FigureResult` is the reproduction of one paper artifact: named
panels (the paper's sub-figures), each holding named series of (x, y)
points.  ``render()`` emits aligned tables plus an ASCII plot per panel —
the terminal-friendly equivalent of the paper's charts — and
``to_markdown()`` emits the EXPERIMENTS.md section.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.asciiplot import plot_series
from repro.util.tables import format_table


@dataclass(frozen=True)
class Series:
    """One labelled curve."""

    label: str
    points: list[tuple[float, float]]


@dataclass
class FigureResult:
    """The reproduced data for one table/figure."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    #: panel name (e.g. "Haswell 8 cores") -> series
    panels: dict[str, list[Series]] = field(default_factory=dict)
    #: free-form commentary (scale used, caveats, in-text claims checked)
    notes: list[str] = field(default_factory=list)
    logx: bool = True

    def add_series(self, panel: str, series: Series) -> None:
        self.panels.setdefault(panel, []).append(series)

    # -- rendering ------------------------------------------------------------

    def _panel_table(self, panel: str) -> str:
        series = self.panels[panel]
        xs = sorted({x for s in series for x, _ in s.points})
        headers = [self.xlabel] + [s.label for s in series]
        lookup = [{x: y for x, y in s.points} for s in series]
        rows = []
        for x in xs:
            row: list[object] = [x]
            for m in lookup:
                row.append(m.get(x, ""))
            rows.append(row)
        return format_table(headers, rows, title=f"[{self.figure_id}] {panel}")

    def _panel_plot(self, panel: str) -> str:
        series = {s.label: s.points for s in self.panels[panel]}
        return plot_series(
            series,
            title=f"[{self.figure_id}] {panel}",
            xlabel=self.xlabel,
            ylabel=self.ylabel,
            logx=self.logx,
        )

    def render(self, plots: bool = True) -> str:
        chunks = [f"=== {self.figure_id}: {self.title} ==="]
        for panel in self.panels:
            chunks.append(self._panel_table(panel))
            if plots:
                chunks.append(self._panel_plot(panel))
        if self.notes:
            chunks.append("notes:")
            chunks.extend(f"  - {n}" for n in self.notes)
        return "\n\n".join(chunks)

    def to_markdown(self) -> str:
        chunks = [f"### {self.figure_id}: {self.title}\n"]
        for panel in self.panels:
            chunks.append(f"**{panel}**\n")
            chunks.append("```\n" + self._panel_table(panel) + "\n```\n")
        if self.notes:
            chunks.extend(f"- {n}" for n in self.notes)
            chunks.append("")
        return "\n".join(chunks)
