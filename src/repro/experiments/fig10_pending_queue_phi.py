"""Fig. 10: pending-queue accesses on the Xeon Phi.

See :mod:`repro.experiments.pending_queue_common` for the paper context.
"""

from __future__ import annotations

from repro.experiments.config import Scale
from repro.experiments.pending_queue_common import (
    PAPER_CLAIMS,
    pending_queue_shape_checks,
    run_pending_queue_figure,
)
from repro.experiments.report import FigureResult

FIGURE_ID = "fig10"
TITLE = "Pending Queue Accesses: Intel Xeon Phi"
CORES = (16, 32, 60)

__all__ = ["FIGURE_ID", "TITLE", "PAPER_CLAIMS", "run", "shape_checks"]


def run(scale: Scale) -> FigureResult:
    return run_pending_queue_figure(scale, "xeon-phi", CORES, FIGURE_ID, TITLE)


def shape_checks(fig: FigureResult) -> list[str]:
    return pending_queue_shape_checks(fig)
