"""In-text grain-selection claims (Sec. IV-A and IV-E).

Two quantitative statements in the paper's prose are reproduced here, at the
highest Haswell core count:

1. *Idle-rate threshold* (Sec. IV-A): "on the Haswell node for 28 cores with
   a maximum threshold for idle-rate at 30%, the smallest partition size is
   78,125 [...] the average execution time is 1.75 seconds, which is within
   the standard deviation (0.03) for the minimum time of 1.71 seconds."
   → at our scale: the smallest grain under the 30% idle-rate threshold must
   be within one standard deviation of (or within a few percent of) the
   minimum time.

2. *Pending-queue minimum* (Sec. IV-E): "the minimum pending queue accesses
   for Haswell when running on 28 cores occurs when the partition size is
   31,250 and the execution time is 1.925 seconds, within 13% of the minimum
   time."  → the access-minimizing grain must be within ~13% (we allow 20%
   at reduced scale) of the minimum time.
"""

from __future__ import annotations

from repro.core.selection import (
    select_by_idle_rate,
    select_by_min_time,
    select_by_pending_accesses,
)
from repro.experiments.config import Scale
from repro.experiments.harness import stencil_report
from repro.experiments.report import FigureResult, Series

FIGURE_ID = "selection"
TITLE = "Grain-size selection rules (Sec. IV-A / IV-E in-text claims)"
PAPER_CLAIMS = [
    "the smallest grain meeting a 30% idle-rate threshold performs within "
    "one standard deviation of the minimum time (28-core Haswell example)",
    "the pending-queue-access-minimizing grain performs within 13% of the "
    "minimum time",
]

PLATFORM = "haswell"
CORES = 28
IDLE_THRESHOLD = 0.30
#: paper says 13%; reduced scale earns a little slack
QUEUE_RULE_SLACK = 1.25
IDLE_RULE_SLACK = 1.20


def run(scale: Scale) -> FigureResult:
    # Standard deviations are central to the claim, so insist on >= 2
    # repetitions regardless of the ambient scale preset.
    scale = scale.with_(repetitions=max(2, scale.repetitions))
    report = stencil_report(
        scale, PLATFORM, CORES, measure_single_core_reference=False
    )
    outcomes = [
        select_by_min_time(report),
        select_by_idle_rate(report, threshold=IDLE_THRESHOLD),
        select_by_pending_accesses(report),
    ]
    fig = FigureResult(
        figure_id=FIGURE_ID,
        title=TITLE,
        xlabel="rule index",
        ylabel="execution time (s)",
        logx=False,
    )
    fig.add_series(
        f"{PLATFORM} {CORES} cores",
        Series(
            "selected time (s)",
            [(i, o.execution_time_s) for i, o in enumerate(outcomes)],
        ),
    )
    fig.add_series(
        f"{PLATFORM} {CORES} cores",
        Series("slowdown vs oracle", [(i, o.slowdown) for i, o in enumerate(outcomes)]),
    )
    for o in outcomes:
        fig.notes.append(o.summary())
    # Stash the raw outcomes for shape_checks / tests.
    fig.outcomes = outcomes  # type: ignore[attr-defined]
    return fig


def shape_checks(fig: FigureResult) -> list[str]:
    problems: list[str] = []
    outcomes = getattr(fig, "outcomes", None)
    if not outcomes:
        return ["selection: no outcomes attached"]
    oracle, idle_rule, queue_rule = outcomes
    if oracle.slowdown != 1.0:
        problems.append("selection: oracle rule is not optimal?!")
    if not (idle_rule.within_one_stddev or idle_rule.slowdown <= IDLE_RULE_SLACK):
        problems.append(
            f"selection: idle-rate rule {idle_rule.slowdown:.3f}x slower than "
            "best and outside one stddev (paper: within stddev)"
        )
    if queue_rule.slowdown > QUEUE_RULE_SLACK:
        problems.append(
            f"selection: queue rule {queue_rule.slowdown:.3f}x slower than "
            f"best (paper: within 13%)"
        )
    return problems
