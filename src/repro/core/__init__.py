"""The paper's core contribution: granularity metrics and their uses.

- :mod:`repro.core.metrics` — the six equations of Sec. II-A plus the
  pending-queue alternatives;
- :mod:`repro.core.characterize` — the experimental methodology: sweep grain
  size, repeat runs, aggregate mean/stddev/COV, classify regions;
- :mod:`repro.core.selection` — grain-size selection rules (idle-rate
  threshold, pending-queue minimum, minimum-time oracle);
- :mod:`repro.core.tuner` — the adaptive grain-size tuning the paper names
  as the goal of this research line (Sec. VI), implemented as a feedback
  controller plus greedy refinement over the dynamic metrics;
- :mod:`repro.core.policy` — an APEX-style policy engine with a
  Porterfield-style concurrency-throttling policy (the other half of the
  paper's Sec. VI integration plan);
- :mod:`repro.core.timeline` — schedule-level analysis of execution traces
  (utilization, concurrency profile, waves, critical path, ASCII Gantt).
"""

from repro.core.metrics import GranularityMetrics, MetricInputs
from repro.core.characterize import (
    CharacterizationReport,
    GrainPoint,
    characterize,
    default_partition_sweep,
)
from repro.core.selection import (
    SelectionOutcome,
    select_by_idle_rate,
    select_by_min_time,
    select_by_pending_accesses,
)
from repro.core.policy import PolicyEngine, ThrottlingPolicy
from repro.core.timeline import (
    concurrency_profile,
    critical_path_ns,
    render_gantt,
    worker_utilization,
)
from repro.core.tuner import AdaptiveGrainTuner, TunerConfig, TunerStep

__all__ = [
    "PolicyEngine",
    "ThrottlingPolicy",
    "concurrency_profile",
    "critical_path_ns",
    "render_gantt",
    "worker_utilization",
    "GranularityMetrics",
    "MetricInputs",
    "CharacterizationReport",
    "GrainPoint",
    "characterize",
    "default_partition_sweep",
    "SelectionOutcome",
    "select_by_idle_rate",
    "select_by_min_time",
    "select_by_pending_accesses",
    "AdaptiveGrainTuner",
    "TunerConfig",
    "TunerStep",
]
