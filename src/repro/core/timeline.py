"""Timeline analysis of execution traces.

Turns an :class:`repro.sim.trace.ExecutionTrace` into the schedule-level
views a granularity study needs:

- :func:`worker_utilization` — exec / management / idle split per worker,
  the microscopic counterpart of the idle-rate counter;
- :func:`concurrency_profile` — how many workers execute simultaneously,
  sampled over the run (starvation shows up as a long low tail);
- :func:`wave_count` — dependency "waves" of the stencil schedule: maxima
  of concurrency separated by troughs;
- :func:`critical_path_ns` — length of the longest chain of causally
  ordered phases, a lower bound on any schedule of the same tasks;
- :func:`render_gantt` — ASCII Gantt chart (workers × time) for eyeballing
  schedules in a terminal.

All functions are pure and operate on the trace alone, so they work on
traces from any executor configuration.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class WorkerUtilization:
    """Time split of one worker over the traced run."""

    worker: int
    exec_ns: int
    mgmt_ns: int
    idle_ns: int
    total_ns: int

    @property
    def exec_fraction(self) -> float:
        return self.exec_ns / self.total_ns if self.total_ns else 0.0

    @property
    def idle_fraction(self) -> float:
        return self.idle_ns / self.total_ns if self.total_ns else 0.0


def worker_utilization(trace: ExecutionTrace) -> list[WorkerUtilization]:
    """Per-worker exec/management/idle accounting over [0, finish]."""
    total = trace.finish_ns
    out = []
    for w in range(trace.num_workers):
        exec_ns = 0
        mgmt_ns = 0
        for p in trace.phases_of_worker(w):
            exec_ns += p.duration_ns
            mgmt_ns += p.mgmt_ns
        idle_ns = max(0, total - exec_ns - mgmt_ns)
        out.append(
            WorkerUtilization(
                worker=w,
                exec_ns=exec_ns,
                mgmt_ns=mgmt_ns,
                idle_ns=idle_ns,
                total_ns=total,
            )
        )
    return out


def concurrency_profile(
    trace: ExecutionTrace, samples: int = 200
) -> list[tuple[int, int]]:
    """(time_ns, executing workers) sampled at ``samples`` uniform points.

    Uses an event-sweep over phase boundaries, then samples the step
    function — O(phases log phases + samples).
    """
    if not trace.phases or trace.finish_ns == 0:
        return [(0, 0)]
    events: list[tuple[int, int]] = []
    for p in trace.phases:
        events.append((p.start_ns, +1))
        events.append((p.end_ns, -1))
    events.sort()
    points: list[tuple[int, int]] = []
    level = 0
    for t, delta in events:
        level += delta
        points.append((t, level))

    out = []
    step = max(1, trace.finish_ns // samples)
    idx = 0
    current = 0
    for t in range(0, trace.finish_ns + 1, step):
        while idx < len(points) and points[idx][0] <= t:
            current = points[idx][1]
            idx += 1
        out.append((t, current))
    return out


def average_concurrency(trace: ExecutionTrace) -> float:
    """Time-averaged number of executing workers (Σ exec / makespan)."""
    if trace.finish_ns == 0:
        return 0.0
    return sum(p.duration_ns for p in trace.phases) / trace.finish_ns


def wave_count(trace: ExecutionTrace, threshold_fraction: float = 0.5) -> int:
    """Number of concurrency "waves": rising crossings of
    ``threshold_fraction x num_workers`` in the concurrency profile.

    A perfectly pipelined stencil shows one long wave; a coarse-grained
    schedule with barriers between steps shows one wave per step.
    """
    profile = concurrency_profile(trace, samples=max(200, len(trace.phases)))
    threshold = threshold_fraction * trace.num_workers
    waves = 0
    above = False
    for _, level in profile:
        if not above and level >= threshold:
            waves += 1
            above = True
        elif above and level < threshold:
            above = False
    return waves


def critical_path_ns(trace: ExecutionTrace) -> int:
    """Longest chain of causally ordered phases (by time), in ns.

    Phase B causally follows phase A when B was *dispatched* at or after A
    ended (so B's management interval cannot overlap A); the heaviest such
    chain — management plus execution — bounds the makespan from below.
    Computed with a sweep over phases sorted by end time — O(n log n).
    """
    if not trace.phases:
        return 0
    phases = sorted(trace.phases, key=lambda p: p.end_ns)
    # Sweep in end-time order, keeping for every prefix the heaviest chain
    # achievable by any phase ending at or before that point.
    max_chain = 0
    ends: list[int] = []
    prefix_best: list[int] = []
    for p in phases:
        # heaviest chain among phases that end before this one was dispatched
        i = bisect.bisect_right(ends, p.dispatch_ns) - 1
        inherited = prefix_best[i] if i >= 0 else 0
        chain = inherited + (p.end_ns - p.dispatch_ns)
        max_chain = max(max_chain, chain)
        ends.append(p.end_ns)
        prefix_best.append(max(chain, prefix_best[-1] if prefix_best else 0))
    return max_chain


def render_gantt(
    trace: ExecutionTrace, width: int = 100, max_workers: int = 16
) -> str:
    """ASCII Gantt: one row per worker, '#' executing, '.' managing/idle."""
    if trace.finish_ns == 0:
        return "(empty trace)"
    scale = trace.finish_ns / width
    lines = [
        f"gantt: {trace.finish_ns / 1e6:.3f} ms across "
        f"{trace.num_workers} workers ('#'=exec, '-'=mgmt, '.'=idle)"
    ]
    for w in range(min(trace.num_workers, max_workers)):
        row = ["."] * width
        for p in trace.phases_of_worker(w):
            m0 = min(width - 1, int(p.dispatch_ns / scale))
            c0 = min(width - 1, int(p.start_ns / scale))
            c1 = min(width, max(c0 + 1, int(p.end_ns / scale)))
            for col in range(m0, c0):
                if row[col] == ".":
                    row[col] = "-"
            for col in range(c0, c1):
                row[col] = "#"
        lines.append(f"w{w:<3d}|" + "".join(row))
    if trace.num_workers > max_workers:
        lines.append(f"... ({trace.num_workers - max_workers} more workers)")
    return "\n".join(lines)
