"""The paper's experimental methodology as a reusable driver (Sec. II).

"The experiments for this study comprise executing the HPX parallel
benchmark [...] over a large range of partition sizes, to vary granularity,
and for an increasing number of cores for strong scaling performance. [...]
we make multiple runs and calculate means and standard deviation of these
counts.  We compute the metrics using the average of the required event
counts."

:func:`characterize` does exactly that for any workload exposing the
``(RuntimeConfig, grain) -> RunResult`` protocol:

1. optionally measure the single-core reference ``t_d1`` per grain size
   ("a one time cost prior to data runs", Sec. II-A);
2. repeat each (grain, cores) cell ``repetitions`` times with distinct
   seeds;
3. aggregate means / standard deviations / COVs;
4. evaluate the Sec. II-A metrics on the mean counts.

The result, :class:`CharacterizationReport`, is what the figure harnesses
and the selection rules consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.metrics import GranularityMetrics, MetricInputs
from repro.runtime.runtime import RunResult, RuntimeConfig
from repro.util.stats import SampleStats
from repro.util.tables import format_table

#: The workload protocol: run one experiment at one grain size.
RunFn = Callable[[RuntimeConfig, int], RunResult]


def default_partition_sweep(
    total_points: int, finest: int = 128, points_per_decade: int = 4
) -> list[int]:
    """Geometric grain-size sweep from ``finest`` to the whole domain.

    The paper sweeps partition size 160 → 10⁸ on a log axis; this generates
    the same coverage for any problem scale (always including the full
    domain, the coarsest possible grain).
    """
    if not 1 <= finest <= total_points:
        raise ValueError(f"finest={finest} outside 1..{total_points}")
    if points_per_decade < 1:
        raise ValueError("points_per_decade must be >= 1")
    if finest == total_points:
        return [total_points]
    ratio = 10.0 ** (1.0 / points_per_decade)
    sweep: list[int] = []
    value = float(finest)
    while value < total_points:
        grain = int(round(value))
        if not sweep or grain > sweep[-1]:
            sweep.append(grain)
        value *= ratio
    if sweep[-1] != total_points:
        sweep.append(total_points)
    return sweep


@dataclass(frozen=True)
class GrainPoint:
    """Aggregated measurements for one grain size at one core count."""

    grain: int
    num_cores: int
    repetitions: int
    execution_time_s: SampleStats
    idle_rate: SampleStats
    pending_accesses: SampleStats
    pending_misses: SampleStats
    task_duration_ns: SampleStats
    tasks_executed: int
    #: metrics evaluated on the mean counts (the paper's procedure)
    metrics: GranularityMetrics
    #: t_d1 for this grain (None when the reference pass was skipped)
    task_duration_1core_ns: float | None

    @property
    def region(self) -> str:
        """Coarse qualitative classification of this operating point.

        - ``fine``: per-task management is a large fraction of per-task
          duration and there are plenty of tasks per core — the left wall of
          Fig. 3;
        - ``coarse``: workers are starved: few tasks per core and average
          concurrency well below the core count — the right wall;
        - ``medium``: the flat middle where wait time governs.
        """
        m = self.metrics
        t = m.execution_time_ns
        if t <= 0 or self.tasks_executed == 0:
            return "medium"
        overhead_ratio = (
            m.task_overhead_ns / m.task_duration_ns
            if m.task_duration_ns > 0
            else float("inf")
        )
        tasks_per_core = self.tasks_executed / self.num_cores
        utilization = m.task_duration_ns * self.tasks_executed / (
            t * self.num_cores
        )
        if tasks_per_core < 64 and utilization < 0.6 and self.num_cores > 1:
            return "coarse"
        if overhead_ratio > 0.5 and tasks_per_core >= 64:
            return "fine"
        return "medium"


@dataclass
class CharacterizationReport:
    """All grain points for one (platform, cores, scheduler) configuration."""

    platform_name: str
    num_cores: int
    scheduler: str
    points: list[GrainPoint] = field(default_factory=list)

    def grains(self) -> list[int]:
        return [p.grain for p in self.points]

    def point_at(self, grain: int) -> GrainPoint:
        for p in self.points:
            if p.grain == grain:
                return p
        raise KeyError(f"no grain point {grain}")

    def series(self, quantity: str) -> list[tuple[int, float]]:
        """(grain, value) pairs for a named quantity.

        Supported: ``execution_time_s``, ``idle_rate``, ``pending_accesses``,
        ``pending_misses``, ``task_duration_ns``, ``wait_per_core_s``,
        ``tm_per_core_s``, ``combined_cost_s``, ``wait_per_task_ns``.
        """
        out: list[tuple[int, float]] = []
        for p in self.points:
            if quantity == "execution_time_s":
                value: float | None = p.execution_time_s.mean
            elif quantity == "idle_rate":
                value = p.idle_rate.mean
            elif quantity == "pending_accesses":
                value = p.pending_accesses.mean
            elif quantity == "pending_misses":
                value = p.pending_misses.mean
            elif quantity == "task_duration_ns":
                value = p.task_duration_ns.mean
            elif quantity == "wait_per_core_s":
                w = p.metrics.wait_time_per_core_ns
                value = None if w is None else w / 1e9
            elif quantity == "tm_per_core_s":
                value = p.metrics.thread_management_per_core_ns / 1e9
            elif quantity == "combined_cost_s":
                c = p.metrics.combined_cost_ns
                value = None if c is None else c / 1e9
            elif quantity == "wait_per_task_ns":
                w = p.metrics.wait_time_per_task_ns
                value = None if w is None else w
            else:
                raise KeyError(f"unknown quantity {quantity!r}")
            if value is not None:
                out.append((p.grain, value))
        return out

    def to_table(self) -> str:
        headers = [
            "grain",
            "tasks",
            "time(s)",
            "cov",
            "idle-rate",
            "t_d(us)",
            "t_o(us)",
            "T_o(s)",
            "T_w(s)",
            "pendQ",
            "region",
        ]
        rows = []
        for p in self.points:
            tw = p.metrics.wait_time_per_core_ns
            rows.append(
                [
                    p.grain,
                    p.tasks_executed,
                    round(p.execution_time_s.mean, 4),
                    round(p.execution_time_s.cov, 3),
                    round(p.idle_rate.mean, 3),
                    round(p.metrics.task_duration_ns / 1e3, 2),
                    round(p.metrics.task_overhead_ns / 1e3, 2),
                    round(p.metrics.thread_management_per_core_ns / 1e9, 4),
                    "n/a" if tw is None else round(tw / 1e9, 4),
                    int(p.pending_accesses.mean),
                    p.region,
                ]
            )
        title = (
            f"{self.platform_name} | {self.num_cores} cores | "
            f"{self.scheduler} scheduler"
        )
        return format_table(headers, rows, title=title)


def characterize(
    run_fn: RunFn,
    grains: Sequence[int],
    *,
    platform: str = "haswell",
    num_cores: int = 8,
    scheduler: str = "priority-local",
    repetitions: int = 3,
    seed: int = 0,
    measure_single_core_reference: bool = True,
) -> CharacterizationReport:
    """Run the paper's methodology over ``grains``; see module docstring."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    report = CharacterizationReport(
        platform_name=platform, num_cores=num_cores, scheduler=scheduler
    )

    for grain in grains:
        td1: float | None = None
        if measure_single_core_reference and num_cores > 1:
            ref = run_fn(
                RuntimeConfig(
                    platform=platform, num_cores=1, scheduler=scheduler,
                    seed=seed,
                ),
                grain,
            )
            td1 = ref.task_duration_ns
        elif measure_single_core_reference:
            # On one core t_d1 == t_d by definition; measured below.
            pass

        runs: list[RunResult] = []
        for rep in range(repetitions):
            cfg = RuntimeConfig(
                platform=platform,
                num_cores=num_cores,
                scheduler=scheduler,
                seed=seed + 1 + rep,
            )
            runs.append(run_fn(cfg, grain))

        if measure_single_core_reference and num_cores == 1:
            td1 = sum(r.task_duration_ns for r in runs) / len(runs)

        mean_inputs = MetricInputs(
            execution_time_ns=_mean(r.execution_time_ns for r in runs),
            cumulative_exec_ns=_mean(r.cumulative_exec_ns for r in runs),
            cumulative_func_ns=_mean(r.cumulative_func_ns for r in runs),
            tasks_executed=int(
                _mean(r.counters.get("/threads/count/cumulative") for r in runs)
            ),
            num_cores=num_cores,
            pending_accesses=_mean(r.pending_accesses for r in runs),
            pending_misses=_mean(r.pending_misses for r in runs),
            task_duration_1core_ns=td1,
        )
        report.points.append(
            GrainPoint(
                grain=grain,
                num_cores=num_cores,
                repetitions=repetitions,
                execution_time_s=SampleStats.from_samples(
                    [r.execution_time_s for r in runs]
                ),
                idle_rate=SampleStats.from_samples([r.idle_rate for r in runs]),
                pending_accesses=SampleStats.from_samples(
                    [r.pending_accesses for r in runs]
                ),
                pending_misses=SampleStats.from_samples(
                    [r.pending_misses for r in runs]
                ),
                task_duration_ns=SampleStats.from_samples(
                    [r.task_duration_ns for r in runs]
                ),
                tasks_executed=mean_inputs.tasks_executed,
                metrics=GranularityMetrics.compute(mean_inputs),
                task_duration_1core_ns=td1,
            )
        )
    return report


def _mean(values) -> float:
    xs = list(values)
    return sum(xs) / len(xs)
