"""Grain-size selection rules (paper Sec. IV-A and IV-E).

Three ways to pick an operating grain size from a characterization:

- :func:`select_by_idle_rate` — "an acceptable grain size can be determined
  by setting a threshold for the idle-rate": the smallest grain whose
  idle-rate is at or below the threshold.  The paper's worked example:
  Haswell, 28 cores, 30 % threshold → partition 78,125, whose execution time
  is within one standard deviation of the minimum (Sec. IV-A).
- :func:`select_by_pending_accesses` — the grain minimizing total pending-
  queue accesses; "gives similar results to the idle-rate metric but does
  not require timestamps" (Sec. IV-E; within 13 % of the minimum time in the
  paper's example).
- :func:`select_by_min_time` — the oracle: argmin of measured execution
  time.  Useful as the baseline the other two rules are judged against.

All three return a :class:`SelectionOutcome` that records the chosen grain
and how close it came to the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.characterize import CharacterizationReport, GrainPoint


@dataclass(frozen=True)
class SelectionOutcome:
    """A chosen grain size and its quality relative to the best measured."""

    rule: str
    grain: int
    execution_time_s: float
    best_grain: int
    best_execution_time_s: float
    #: chosen-vs-best time ratio (1.0 = matched the oracle)
    slowdown: float
    #: True when the chosen time is within one stddev of the best point's
    #: mean — the paper's criterion for "as good as the minimum"
    within_one_stddev: bool

    def summary(self) -> str:
        return (
            f"{self.rule}: grain={self.grain} time={self.execution_time_s:.4f}s "
            f"(best grain={self.best_grain} at {self.best_execution_time_s:.4f}s, "
            f"slowdown x{self.slowdown:.3f}, "
            f"{'within' if self.within_one_stddev else 'outside'} 1 stddev)"
        )


def _best_point(report: CharacterizationReport) -> GrainPoint:
    if not report.points:
        raise ValueError("empty characterization report")
    return min(report.points, key=lambda p: p.execution_time_s.mean)


def _outcome(rule: str, chosen: GrainPoint, report: CharacterizationReport) -> SelectionOutcome:
    best = _best_point(report)
    chosen_t = chosen.execution_time_s.mean
    best_t = best.execution_time_s.mean
    return SelectionOutcome(
        rule=rule,
        grain=chosen.grain,
        execution_time_s=chosen_t,
        best_grain=best.grain,
        best_execution_time_s=best_t,
        slowdown=chosen_t / best_t if best_t > 0 else float("inf"),
        within_one_stddev=best.execution_time_s.within_stddev(chosen_t),
    )


def select_by_idle_rate(
    report: CharacterizationReport, threshold: float = 0.30
) -> SelectionOutcome:
    """Smallest grain whose mean idle-rate does not exceed ``threshold``.

    Falls back to the grain with the lowest idle-rate when no point meets
    the threshold (a warning sign that the sweep never left the walls).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    eligible = [p for p in report.points if p.idle_rate.mean <= threshold]
    if eligible:
        chosen = min(eligible, key=lambda p: p.grain)
    else:
        chosen = min(report.points, key=lambda p: p.idle_rate.mean)
    return _outcome(f"idle-rate<={threshold:.0%}", chosen, report)


def select_by_pending_accesses(report: CharacterizationReport) -> SelectionOutcome:
    """Grain with the fewest total pending-queue accesses (Sec. IV-E)."""
    if not report.points:
        raise ValueError("empty characterization report")
    chosen = min(report.points, key=lambda p: (p.pending_accesses.mean, p.grain))
    return _outcome("min-pending-accesses", chosen, report)


def select_by_min_time(report: CharacterizationReport) -> SelectionOutcome:
    """The oracle rule: grain with the smallest measured execution time."""
    chosen = _best_point(report)
    return _outcome("min-time-oracle", chosen, report)
