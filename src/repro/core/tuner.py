"""Adaptive grain-size tuning — the paper's stated goal (Sec. VI).

"For future work, we will apply the methodology to dynamically adapt grain
size to minimize scheduling overheads and improve performance of parallel
applications."  This module implements that step on top of the metrics, in
the epoch style the stencil permits (grain size is an input of each
relaunch, so adaptation happens between epochs — the paper itself notes the
benchmark's grain "can be easily done statically and potentially done
dynamically").

:class:`AdaptiveGrainTuner` runs two phases, both driven purely by the
paper's dynamic metrics — it never sees a sweep:

1. **Region feedback** — diagnose each epoch's operating region and move
   multiplicatively toward the middle:

   * *too fine* — many tasks per core and per-task overhead is a large
     fraction of task duration (the paper's fine-grained wall);
   * *too coarse* — few tasks per core and the workers are under-utilized
     (the starvation wall).  Task count discriminates the two: both walls
     show low utilization, but only the fine wall has task counts in the
     thousands per core.

2. **Greedy refinement** — once inside the usable region, compare measured
   epoch times of neighbouring grains (a shrinking multiplicative
   neighbourhood) and descend while it helps.

The tuner converges in O(log(range)) epochs, which is the point of having
*dynamic* metrics rather than offline sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.metrics import GranularityMetrics, MetricInputs
from repro.runtime.runtime import RunResult, RuntimeConfig

#: One epoch: run the application briefly at a grain size.
EpochFn = Callable[[RuntimeConfig, int], RunResult]


@dataclass(frozen=True)
class TunerConfig:
    """Controller parameters."""

    min_grain: int
    max_grain: int
    initial_grain: int | None = None
    #: overhead-to-duration ratio above which the grain is "too fine"
    overhead_ratio_hi: float = 0.20
    #: utilization (avg concurrency / cores) below which it is "too coarse"
    utilization_lo: float = 0.60
    #: tasks per core separating the fine wall from the coarse wall
    starvation_tasks_per_core: float = 64.0
    #: initial multiplicative step of the region-feedback phase
    step: float = 4.0
    #: step shrink on each direction reversal
    step_shrink: float = 0.5
    #: region phase ends when its step falls below this
    min_step: float = 1.19
    #: initial neighbourhood of the refinement phase
    refine_step: float = 2.0
    #: a refinement move must improve time by this fraction
    refine_improvement: float = 0.02
    max_epochs: int = 40

    def __post_init__(self) -> None:
        if not 1 <= self.min_grain <= self.max_grain:
            raise ValueError("need 1 <= min_grain <= max_grain")
        if self.step <= 1.0 or self.refine_step <= 1.0:
            raise ValueError("step factors must be > 1.0")
        if not 0.0 < self.step_shrink < 1.0:
            raise ValueError("step_shrink must be in (0, 1)")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")


@dataclass(frozen=True)
class TunerStep:
    """One epoch's observation and the controller's decision."""

    epoch: int
    grain: int
    execution_time_s: float
    idle_rate: float
    overhead_ratio: float
    utilization: float
    diagnosis: str  # "too-fine" | "too-coarse" | "ok" | "refine"
    action: str  # "grow" | "shrink" | "hold" | "refine" | "stop"


@dataclass
class TunerResult:
    """Full trajectory plus the final recommendation."""

    steps: list[TunerStep] = field(default_factory=list)
    final_grain: int = 0
    final_time_s: float = 0.0
    converged: bool = False

    @property
    def epochs(self) -> int:
        return len(self.steps)

    def best_observed(self) -> TunerStep:
        if not self.steps:
            raise ValueError("tuner never ran")
        return min(self.steps, key=lambda s: s.execution_time_s)


class AdaptiveGrainTuner:
    """Feedback controller over the paper's dynamic metrics."""

    def __init__(
        self,
        epoch_fn: EpochFn,
        runtime_config_factory: Callable[[int], RuntimeConfig],
        config: TunerConfig,
    ) -> None:
        """``epoch_fn(runtime_config, grain)`` runs one epoch.

        ``runtime_config_factory(epoch)`` supplies a fresh config per epoch
        (so each epoch gets a distinct seed while platform/cores stay fixed).
        """
        self.epoch_fn = epoch_fn
        self.runtime_config_factory = runtime_config_factory
        self.config = config

    # -- diagnosis ---------------------------------------------------------------

    def diagnose(self, metrics: GranularityMetrics) -> tuple[str, float, float]:
        """Classify an epoch: (diagnosis, overhead_ratio, utilization).

        Both walls show low utilization; the task count per core separates
        them (see module docstring).
        """
        td = metrics.task_duration_ns
        to = metrics.task_overhead_ns
        overhead_ratio = to / td if td > 0 else float("inf")
        t = metrics.execution_time_ns
        utilization = (
            td * metrics.tasks_executed / (t * metrics.num_cores) if t > 0 else 0.0
        )
        cfg = self.config
        tasks_per_core = (
            metrics.tasks_executed / metrics.num_cores if metrics.num_cores else 0.0
        )
        many_tasks = tasks_per_core >= cfg.starvation_tasks_per_core
        if overhead_ratio > cfg.overhead_ratio_hi and many_tasks:
            return "too-fine", overhead_ratio, utilization
        if utilization < cfg.utilization_lo and not many_tasks and metrics.num_cores > 1:
            return "too-coarse", overhead_ratio, utilization
        if utilization < cfg.utilization_lo and metrics.num_cores > 1:
            # Low utilization with many tasks: overhead is eating the
            # machine even if the ratio test was borderline.
            return "too-fine", overhead_ratio, utilization
        return "ok", overhead_ratio, utilization

    # -- the control loop -----------------------------------------------------------

    def run(self) -> TunerResult:
        cfg = self.config
        result = TunerResult()
        times: dict[int, float] = {}
        epoch_counter = [0]

        def measure(grain: int, diagnosis_override: str | None = None) -> TunerStep | None:
            if epoch_counter[0] >= cfg.max_epochs:
                return None
            epoch = epoch_counter[0]
            epoch_counter[0] += 1
            run = self.epoch_fn(self.runtime_config_factory(epoch), grain)
            metrics = GranularityMetrics.compute(
                MetricInputs.from_run_result(run)
            )
            diagnosis, ratio, util = self.diagnose(metrics)
            step = TunerStep(
                epoch=epoch,
                grain=grain,
                execution_time_s=run.execution_time_s,
                idle_rate=metrics.idle_rate,
                overhead_ratio=ratio,
                utilization=util,
                diagnosis=diagnosis_override or diagnosis,
                action="",
            )
            times[grain] = run.execution_time_s
            result.steps.append(step)
            return step

        def clamp(grain: int) -> int:
            return min(max(grain, cfg.min_grain), cfg.max_grain)

        # ---- phase 1: region feedback ----
        grain = clamp(
            cfg.initial_grain if cfg.initial_grain is not None else cfg.min_grain
        )
        step_factor = cfg.step
        last_direction = 0
        in_region = False
        while True:
            observed = measure(grain)
            if observed is None:
                break
            if observed.diagnosis == "too-fine":
                direction = +1
            elif observed.diagnosis == "too-coarse":
                direction = -1
            else:
                in_region = True
                self._annotate_last(result, "hold")
                break
            self._annotate_last(result, "grow" if direction > 0 else "shrink")
            if last_direction != 0 and direction != last_direction:
                step_factor = max(
                    1.0 + (step_factor - 1.0) * cfg.step_shrink, cfg.min_step
                )
                if step_factor <= cfg.min_step:
                    in_region = True
                    break
            new_grain = clamp(
                int(round(grain * step_factor))
                if direction > 0
                else int(round(grain / step_factor))
            )
            if new_grain == grain:
                in_region = True  # pinned against a bound
                break
            grain = new_grain
            last_direction = direction

        # ---- phase 2: greedy refinement on measured epoch time ----
        refine = cfg.refine_step
        while in_region and epoch_counter[0] < cfg.max_epochs and refine > 1.05:
            current_time = times[grain]
            candidates = []
            for neighbour in (
                clamp(int(round(grain / refine))),
                clamp(int(round(grain * refine))),
            ):
                if neighbour == grain:
                    continue
                if neighbour not in times:
                    if measure(neighbour, diagnosis_override="refine") is None:
                        break
                    self._annotate_last(result, "refine")
                candidates.append(neighbour)
            if not candidates:
                break
            best = min(candidates, key=lambda g: times[g])
            if times[best] < current_time * (1.0 - cfg.refine_improvement):
                grain = best
            else:
                refine = refine**0.5

        best_grain = min(times, key=lambda g: times[g]) if times else grain
        result.final_grain = best_grain
        result.final_time_s = times.get(best_grain, 0.0)
        result.converged = in_region
        if result.steps:
            last = result.steps[-1]
            result.steps[-1] = TunerStep(
                epoch=last.epoch,
                grain=last.grain,
                execution_time_s=last.execution_time_s,
                idle_rate=last.idle_rate,
                overhead_ratio=last.overhead_ratio,
                utilization=last.utilization,
                diagnosis=last.diagnosis,
                action="stop",
            )
        return result

    @staticmethod
    def _annotate_last(result: TunerResult, action: str) -> None:
        last = result.steps[-1]
        result.steps[-1] = TunerStep(
            epoch=last.epoch,
            grain=last.grain,
            execution_time_s=last.execution_time_s,
            idle_rate=last.idle_rate,
            overhead_ratio=last.overhead_ratio,
            utilization=last.utilization,
            diagnosis=last.diagnosis,
            action=action,
        )
