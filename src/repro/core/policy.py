"""APEX-style policy engine: periodic counter samples drive actuation.

The paper's future-work section (Sec. VI) names two integration targets:
Porterfield's throttling scheduler [19] and "an initial implementation of
the policy engine from the APEX prototype" [21], to be driven by the
paper's metrics.  This module supplies both halves for the simulated
runtime:

- :class:`PolicyEngine` — samples the counter registry at a fixed virtual
  interval during a run and feeds each :class:`Policy` the interval deltas;
- :class:`ThrottlingPolicy` — adapts the number of *active* workers: when
  the interval shows overhead-dominated execution (fine-grained tasks whose
  management cost rivals their duration), concurrency is reduced, which in
  turn reduces queue/allocator contention; when the machine is cleanly
  busy, workers are released again.

Throttling is complementary to grain adaptation (:mod:`repro.core.tuner`):
the tuner changes the *application's* decomposition between runs, the
throttler changes the *runtime's* resources within a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.counters.interval import IntervalSample
from repro.runtime.runtime import Runtime, RunResult


@dataclass
class PolicyContext:
    """What a policy may observe and actuate."""

    runtime: Runtime
    now_ns: int = 0

    @property
    def num_workers(self) -> int:
        return self.runtime.machine.num_cores

    @property
    def active_worker_limit(self) -> int:
        return self.runtime.executor.active_worker_limit

    def set_active_worker_limit(self, limit: int) -> None:
        self.runtime.executor.set_active_worker_limit(limit)


class Policy(Protocol):
    """One adaptation rule; called once per sampling interval."""

    def on_sample(self, sample: IntervalSample, ctx: PolicyContext) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class ThrottleDecision:
    """Log entry of one throttling step."""

    time_ns: int
    throughput: float
    old_limit: int
    new_limit: int
    reason: str


@dataclass
class ThrottlingPolicy:
    """Adaptive concurrency throttling: hill-climb on task throughput.

    The objective is the interval *task completion rate* — the quantity
    throttling actually improves when scheduler contention is superlinear in
    active workers (the fine-grained regime).  Each interval:

    - measure ``rate = tasks completed / interval``;
    - if the last adjustment improved the rate by at least ``tolerance``,
      keep moving in the same direction;
    - if it made things worse, revert direction (and remember the rate under
      the old limit as the new baseline);
    - while no adjustment is in flight, probe downward once the per-task
      overhead signal (available − exec, per task, vs exec per task) says
      management dominates; probe upward when the active workers are
      saturated with useful work.

    The controller holds once probes in both directions have failed
    (``settled``), avoiding oscillation around the optimum.
    """

    tolerance: float = 0.05
    min_workers: int = 1
    decisions: list[ThrottleDecision] = field(default_factory=list)
    _last_rate: float | None = field(default=None, repr=False)
    _direction: int = field(default=0, repr=False)
    _failed_directions: set = field(default_factory=set, repr=False)

    def _move(self, ctx: PolicyContext, direction: int, rate: float, reason: str) -> None:
        limit = ctx.active_worker_limit
        if direction > 0:
            new_limit = min(ctx.num_workers, limit + max(1, limit // 3))
        else:
            new_limit = max(self.min_workers, int(limit * 0.6))
        if new_limit == limit:
            self._direction = 0
            return
        ctx.set_active_worker_limit(new_limit)
        self.decisions.append(
            ThrottleDecision(
                time_ns=ctx.now_ns,
                throughput=rate,
                old_limit=limit,
                new_limit=new_limit,
                reason=reason,
            )
        )
        self._direction = direction

    def on_sample(self, sample: IntervalSample, ctx: PolicyContext) -> None:
        tasks = sample.get("/threads/count/cumulative")
        if sample.length_ns <= 0:
            return
        rate = tasks / sample.length_ns
        limit = ctx.active_worker_limit

        if self._direction != 0 and self._last_rate is not None:
            if rate > self._last_rate * (1.0 + self.tolerance):
                # Improvement: keep climbing the same way.
                self._move(ctx, self._direction, rate, "improved, continue")
            elif rate < self._last_rate * (1.0 - self.tolerance):
                # Regression: undo and mark the direction as explored.
                self._failed_directions.add(self._direction)
                undo = -self._direction
                self._move(ctx, undo, rate, "regressed, revert")
                self._direction = 0
            else:
                # Flat: stop probing this way.
                self._failed_directions.add(self._direction)
                self._direction = 0
            self._last_rate = rate
            return

        self._last_rate = rate
        if tasks <= 0:
            return
        exec_ns = sample.get("/threads/time/cumulative")
        available = limit * sample.length_ns
        overhead_per_task = (available - exec_ns) / tasks
        exec_per_task = exec_ns / tasks if tasks else 0.0
        if (
            -1 not in self._failed_directions
            and limit > self.min_workers
            and exec_per_task > 0
            and overhead_per_task > exec_per_task
            # Starvation guard: with few tasks per active worker in the
            # interval, the "overhead" is idle waiting for dependencies —
            # shrinking the pool cannot help and usually hurts.
            and tasks >= 2 * limit
        ):
            self._move(ctx, -1, rate, "overhead-dominated, probe down")
        elif (
            +1 not in self._failed_directions
            and limit < ctx.num_workers
            and available > 0
            and exec_ns / available > 0.85
        ):
            self._move(ctx, +1, rate, "saturated, probe up")


class PolicyEngine:
    """Runs policies on periodic counter samples during one runtime run.

    Usage::

        rt = Runtime(platform="haswell", num_cores=28)
        ... submit work ...
        engine = PolicyEngine(rt, interval_ns=100_000)
        engine.add_policy(ThrottlingPolicy())
        result = engine.run()
    """

    def __init__(self, runtime: Runtime, interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.runtime = runtime
        self.interval_ns = interval_ns
        self.policies: list[Policy] = []
        self.samples_taken = 0

    def add_policy(self, policy: Policy) -> "PolicyEngine":
        self.policies.append(policy)
        # Policies may export their own counters (e.g. the overload
        # governor's /overload/count/governor-actions).
        register = getattr(policy, "register_counters", None)
        if register is not None:
            register(self.runtime.registry)
        return self

    def run(self) -> RunResult:
        """Drive the runtime to completion with policy ticks installed."""
        rt = self.runtime
        ctx = PolicyContext(runtime=rt)
        rt.sampler.start(0)

        def tick() -> None:
            now = rt.simulator.now
            sample = rt.sampler.sample(now)
            self.samples_taken += 1
            ctx.now_ns = now
            for policy in self.policies:
                policy.on_sample(sample, ctx)
            if rt.executor.outstanding_tasks > 0:
                rt.simulator.schedule(self.interval_ns, tick)

        rt.simulator.schedule(self.interval_ns, tick)
        return rt.run()
