"""The granularity metrics of Sec. II-A — the paper's analytical core.

Given the raw counter readings of one run (and optionally the single-core
reference run for the same grain size), :class:`GranularityMetrics.compute`
evaluates:

====  =============================================  =========================
Eq.   Metric                                          Definition
====  =============================================  =========================
 1    idle-rate ``Ir``                                ``(Σt_func − Σt_exec) / Σt_func``
 2    task duration ``t_d``                           ``Σt_exec / n_t``
 3    task overhead ``t_o``                           ``(Σt_func − Σt_exec) / n_t``
 4    thread-management overhead per core ``T_o``     ``t_o · n_t / n_c``
 5    wait time per task ``t_w``                      ``t_d − t_d1``
 6    wait time per core ``T_w``                      ``(t_d − t_d1) · n_t / n_c``
====  =============================================  =========================

plus the timestamp-free pending-queue metrics (accesses and misses), which
the paper offers as "viable alternatives" on platforms without cheap
timestamps.

Interpretation note (matches both HPX and the paper's figures): ``Σt_func``
is the total worker wall time, so Eq. 3's "overhead" charges *starvation* as
well as management against the tasks.  That is why the paper's Fig. 7 shows
the thread-management curve rising again at coarse grain, and why idle-rate
climbs at both extremes (Sec. IV-A/IV-B).

Wait time (Eq. 5) "can be negative since behaviors such as caching effects
can cause the time for one core to be larger than that for multiple cores";
the sign is preserved here, never clamped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.runtime.runtime import RunResult


@dataclass(frozen=True)
class MetricInputs:
    """Raw event counts required by the equations.

    ``task_duration_1core_ns`` is ``t_d1``: the average task duration of the
    *same experiment run on one core* (Eq. 5).  The paper takes it "at a one
    time cost prior to data runs"; pass ``None`` when unavailable and the
    wait-time metrics become ``None``.
    """

    execution_time_ns: float
    cumulative_exec_ns: float
    cumulative_func_ns: float
    tasks_executed: int
    num_cores: int
    pending_accesses: float = 0.0
    pending_misses: float = 0.0
    task_duration_1core_ns: float | None = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.tasks_executed < 0:
            raise ValueError("tasks_executed must be >= 0")
        if self.cumulative_func_ns + 1e-9 < self.cumulative_exec_ns:
            raise ValueError(
                "Σt_func must be >= Σt_exec "
                f"({self.cumulative_func_ns} < {self.cumulative_exec_ns})"
            )

    @classmethod
    def from_run_result(
        cls,
        result: "RunResult",
        task_duration_1core_ns: float | None = None,
    ) -> "MetricInputs":
        """Extract the inputs from a completed :class:`RunResult`."""
        return cls(
            execution_time_ns=float(result.execution_time_ns),
            cumulative_exec_ns=result.cumulative_exec_ns,
            cumulative_func_ns=result.cumulative_func_ns,
            tasks_executed=int(
                result.counters.get("/threads/count/cumulative")
            ),
            num_cores=result.num_cores,
            pending_accesses=result.pending_accesses,
            pending_misses=result.pending_misses,
            task_duration_1core_ns=task_duration_1core_ns,
        )


@dataclass(frozen=True)
class GranularityMetrics:
    """The evaluated metrics of Sec. II-A for one run."""

    execution_time_ns: float
    #: Eq. 1
    idle_rate: float
    #: Eq. 2, t_d
    task_duration_ns: float
    #: Eq. 3, t_o
    task_overhead_ns: float
    #: Eq. 4, T_o
    thread_management_per_core_ns: float
    #: Eq. 5, t_w (None without a single-core reference)
    wait_time_per_task_ns: float | None
    #: Eq. 6, T_w (None without a single-core reference)
    wait_time_per_core_ns: float | None
    pending_accesses: float
    pending_misses: float
    tasks_executed: int
    num_cores: int

    @classmethod
    def compute(cls, inputs: MetricInputs) -> "GranularityMetrics":
        """Evaluate Eq. 1-6 from raw counts.

        Degenerate cases follow the counters' conventions: with zero tasks
        every per-task quantity is 0, and idle-rate is 0 when no worker time
        has accumulated.
        """
        func = inputs.cumulative_func_ns
        exec_ = inputs.cumulative_exec_ns
        nt = inputs.tasks_executed
        nc = inputs.num_cores

        idle_rate = (func - exec_) / func if func > 0 else 0.0
        td = exec_ / nt if nt else 0.0
        to = (func - exec_) / nt if nt else 0.0
        to_total = to * nt / nc

        tw: float | None = None
        tw_total: float | None = None
        if inputs.task_duration_1core_ns is not None:
            tw = td - inputs.task_duration_1core_ns
            tw_total = tw * nt / nc

        return cls(
            execution_time_ns=inputs.execution_time_ns,
            idle_rate=idle_rate,
            task_duration_ns=td,
            task_overhead_ns=to,
            thread_management_per_core_ns=to_total,
            wait_time_per_task_ns=tw,
            wait_time_per_core_ns=tw_total,
            pending_accesses=inputs.pending_accesses,
            pending_misses=inputs.pending_misses,
            tasks_executed=nt,
            num_cores=nc,
        )

    @property
    def combined_cost_ns(self) -> float | None:
        """Fig. 7/8's "HPX-TM & WT": management plus wait time per core.

        The paper shows this combination mimics the execution-time curve —
        the driving costs of the benchmark.  ``None`` without a single-core
        reference.
        """
        if self.wait_time_per_core_ns is None:
            return None
        return self.thread_management_per_core_ns + self.wait_time_per_core_ns

    @property
    def pending_miss_rate(self) -> float:
        """Fraction of pending-queue accesses that found no work."""
        if self.pending_accesses <= 0:
            return 0.0
        return self.pending_misses / self.pending_accesses

    @property
    def execution_time_s(self) -> float:
        return self.execution_time_ns / 1e9
