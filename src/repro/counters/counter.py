"""Counter kinds.

Four kinds cover every counter the paper uses:

- :class:`RawCounter` — monotonically increasing event count
  (queue accesses, tasks executed);
- :class:`ValueCounter` — instantaneous gauge (queue length, uptime);
- :class:`AverageCounter` — maintains a running sum and a sample count and
  reports their quotient (``/threads/time/average``,
  ``/threads/time/average-overhead``);
- :class:`DerivedCounter` — computed on read from other counters
  (``/threads/idle-rate`` is derived from the cumulative exec and func times).

All counters are cheap plain-Python objects; the simulated runtime increments
them inline on the event path, exactly where the HPX scheduler increments its
native counters.
"""

from __future__ import annotations

from typing import Callable


class Counter:
    """Base class: a named, resettable source of one numeric value."""

    __slots__ = ("name", "description")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description

    def get_value(self) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}={self.get_value()!r}>"


class RawCounter(Counter):
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self.value: int = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def get_value(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0


class ValueCounter(Counter):
    """Instantaneous gauge; may also be backed by a callable."""

    __slots__ = ("_value", "_source")

    def __init__(
        self,
        name: str,
        description: str = "",
        source: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(name, description)
        self._value: float = 0.0
        self._source = source

    def set_value(self, value: float) -> None:
        if self._source is not None:
            raise RuntimeError(f"{self.name} is source-backed; cannot set")
        self._value = value

    def get_value(self) -> float:
        if self._source is not None:
            return self._source()
        return self._value

    def reset(self) -> None:
        if self._source is None:
            self._value = 0.0


class AverageCounter(Counter):
    """Running sum / sample count, reported as their quotient.

    ``get_value`` returns 0.0 before the first sample, matching HPX's
    behaviour of reporting zero for idle average counters.
    """

    __slots__ = ("total", "count")

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self.total: float = 0.0
        self.count: int = 0

    def add_sample(self, value: float) -> None:
        self.total += value
        self.count += 1

    def add_bulk(self, total: float, count: int) -> None:
        """Fold in a pre-aggregated (sum, count) pair.

        The per-worker accounting in the simulator aggregates locally and
        flushes in bulk to keep the event path cheap.
        """
        self.total += total
        self.count += count

    def get_value(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0


class DerivedCounter(Counter):
    """Computed on read from a closure over other counters."""

    __slots__ = ("_fn",)

    def __init__(
        self, name: str, fn: Callable[[], float], description: str = ""
    ) -> None:
        super().__init__(name, description)
        self._fn = fn

    def get_value(self) -> float:
        return self._fn()

    def reset(self) -> None:
        # Derived counters reset through their inputs.
        pass
