"""Performance-monitoring substrate modelled on HPX performance counters.

HPX exposes hardware and software event counts as *first-class objects*, each
addressable by a symbolic name such as ``/threads{locality#0/total}/idle-rate``
(Sec. I-B of the paper).  This package reproduces that design in Python:

- :mod:`repro.counters.names` — the counter-name grammar and parser;
- :mod:`repro.counters.counter` — counter kinds (raw, value, average, derived);
- :mod:`repro.counters.registry` — the name → counter registry with wildcard
  discovery and snapshotting;
- :mod:`repro.counters.interval` — interval sampling for dynamic monitoring,
  the mechanism the paper proposes for runtime grain-size adaptation.

The counters relevant to the paper's metrics are pre-declared in
:data:`repro.counters.names.WELL_KNOWN_COUNTERS`.
"""

from repro.counters.counter import (
    AverageCounter,
    Counter,
    DerivedCounter,
    RawCounter,
    ValueCounter,
)
from repro.counters.interval import IntervalSampler, IntervalSample
from repro.counters.names import CounterName, parse_counter_name
from repro.counters.registry import CounterRegistry, CounterSnapshot

__all__ = [
    "AverageCounter",
    "Counter",
    "DerivedCounter",
    "RawCounter",
    "ValueCounter",
    "IntervalSampler",
    "IntervalSample",
    "CounterName",
    "parse_counter_name",
    "CounterRegistry",
    "CounterSnapshot",
]
