"""Counter registry: the runtime-wide name → counter map.

Mirrors HPX's performance-counter registry: counters are registered under
canonical names, looked up by exact or abbreviated name, discovered with
``#*`` wildcards, and read in bulk into immutable :class:`CounterSnapshot`
objects.  Snapshots support subtraction, which is what interval sampling and
the paper's "measure over any interval of interest" methodology (Sec. II-A)
are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.counters.counter import (
    AverageCounter,
    Counter,
    DerivedCounter,
    RawCounter,
    ValueCounter,
)
from repro.counters.names import CounterName, parse_counter_name


@dataclass(frozen=True)
class CounterSnapshot:
    """An immutable point-in-time reading of a set of counters.

    For :class:`AverageCounter` entries the snapshot stores the *(sum, count)*
    pair rather than the quotient, so that interval differences of averages
    are exact: ``(s2 - s1) / (c2 - c1)`` is the true average over the
    interval, not a difference of ratios.
    """

    timestamp_ns: int
    values: Mapping[str, float]
    average_pairs: Mapping[str, tuple[float, int]]

    def get(self, name: str, default: float = 0.0) -> float:
        """Read a counter value by canonical or abbreviated name."""
        if name in self.values:
            return self.values[name]
        if name in self.average_pairs:
            total, count = self.average_pairs[name]
            return total / count if count else 0.0
        canonical = parse_counter_name(name).canonical()
        if canonical in self.values:
            return self.values[canonical]
        if canonical in self.average_pairs:
            total, count = self.average_pairs[canonical]
            return total / count if count else 0.0
        return default

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """The interval reading ``self - earlier``.

        Raw counts subtract; average counters subtract their (sum, count)
        pairs; gauges keep the later value (a gauge has no meaningful delta).

        Both snapshots must read the *same* counter set — counters live for
        a runtime's whole lifetime, so differing sets mean the snapshots came
        from different runtimes (or different registries) and any "interval"
        between them is meaningless.  Raises :class:`ValueError` naming the
        offending counters.
        """
        mine = set(self.values) | set(self.average_pairs)
        theirs = set(earlier.values) | set(earlier.average_pairs)
        if mine != theirs:
            missing = sorted(theirs - mine)
            extra = sorted(mine - theirs)
            parts = []
            if missing:
                parts.append(f"missing from the later snapshot: {missing}")
            if extra:
                parts.append(f"extra in the later snapshot: {extra}")
            raise ValueError(
                "cannot subtract snapshots over different counter sets; "
                + "; ".join(parts)
            )
        values = dict(self.values)
        for key, old in earlier.values.items():
            if key in values and not key.endswith("@gauge"):
                values[key] = values[key] - old
        pairs = {}
        for key, (total, count) in self.average_pairs.items():
            old_total, old_count = earlier.average_pairs.get(key, (0.0, 0))
            pairs[key] = (total - old_total, count - old_count)
        return CounterSnapshot(
            timestamp_ns=self.timestamp_ns - earlier.timestamp_ns,
            values=values,
            average_pairs=pairs,
        )


class CounterRegistry:
    """Name-indexed collection of counters with wildcard discovery."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._parsed: dict[str, CounterName] = {}

    # -- registration ------------------------------------------------------

    def register(self, name: str, counter: Counter) -> Counter:
        """Register ``counter`` under ``name`` (canonicalized).

        Returns the counter for chaining.  Re-registering a name raises
        :class:`ValueError`; counters are meant to live for a runtime's whole
        lifetime.
        """
        parsed = parse_counter_name(name)
        if parsed.is_wildcard:
            raise ValueError(f"cannot register wildcard name {name!r}")
        canonical = parsed.canonical()
        if canonical in self._counters:
            raise ValueError(f"counter {canonical!r} already registered")
        counter.name = canonical
        self._counters[canonical] = counter
        self._parsed[canonical] = parsed
        return counter

    def raw(self, name: str, description: str = "") -> RawCounter:
        return self.register(name, RawCounter(name, description))  # type: ignore[return-value]

    def value(self, name: str, description: str = "", source=None) -> ValueCounter:
        return self.register(name, ValueCounter(name, description, source))  # type: ignore[return-value]

    def average(self, name: str, description: str = "") -> AverageCounter:
        return self.register(name, AverageCounter(name, description))  # type: ignore[return-value]

    def derived(self, name: str, fn, description: str = "") -> DerivedCounter:
        return self.register(name, DerivedCounter(name, fn, description))  # type: ignore[return-value]

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> Counter:
        """Exact lookup by canonical or abbreviated name."""
        canonical = parse_counter_name(name).canonical()
        try:
            return self._counters[canonical]
        except KeyError:
            raise KeyError(f"no counter registered as {canonical!r}") from None

    def query(self, pattern: str) -> Iterator[Counter]:
        """Yield counters matching a possibly wildcarded name.

        ``/threads{locality#0/worker-thread#*}/count/pending-accesses``
        yields the per-worker instances.
        """
        query = parse_counter_name(pattern)
        for canonical, parsed in self._parsed.items():
            if query.matches(parsed):
                yield self._counters[canonical]

    def total(self, pattern: str) -> float:
        """Sum of every counter matching a possibly wildcarded name.

        The distributed aggregation primitive: with the ``locality#*``
        wildcard this folds one counter across all localities, e.g.
        ``total("/parcels{locality#*/total}/count/sent")`` is the
        system-wide parcel count.  Matching zero counters sums to 0.0.
        """
        return sum(c.get_value() for c in self.query(pattern))

    def per_locality(self, pattern: str) -> dict[int, float]:
        """Locality index → value for counters matching ``pattern``.

        Use with a ``locality#*`` wildcard to discover which localities
        expose a counter and read them all; several matches on the same
        locality (e.g. a ``worker-thread#*`` instance wildcard) sum.
        """
        query = parse_counter_name(pattern)
        out: dict[int, float] = {}
        for canonical, parsed in self._parsed.items():
            if query.matches(parsed) and parsed.locality is not None:
                value = self._counters[canonical].get_value()
                out[parsed.locality] = out.get(parsed.locality, 0.0) + value
        return dict(sorted(out.items()))

    def __contains__(self, name: str) -> bool:
        try:
            canonical = parse_counter_name(name).canonical()
        except ValueError:
            return False
        return canonical in self._counters

    def __iter__(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def __len__(self) -> int:
        return len(self._counters)

    # -- bulk operations ----------------------------------------------------

    def snapshot(self, timestamp_ns: int = 0) -> CounterSnapshot:
        """Read every counter into an immutable snapshot."""
        values: dict[str, float] = {}
        pairs: dict[str, tuple[float, int]] = {}
        for canonical, counter in self._counters.items():
            if isinstance(counter, AverageCounter):
                pairs[canonical] = (counter.total, counter.count)
            else:
                values[canonical] = counter.get_value()
        return CounterSnapshot(
            timestamp_ns=timestamp_ns, values=values, average_pairs=pairs
        )

    def reset_all(self) -> None:
        for counter in self._counters.values():
            counter.reset()
