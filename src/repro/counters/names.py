"""Counter-name grammar, modelled on HPX's performance-counter names.

HPX counter names have the shape::

    /objectname{parentinstancename#parentindex/instancename#instanceindex}/countername@parameters

e.g. ``/threads{locality#0/worker-thread#3}/count/pending-accesses``.  The
paper refers to counters by their abbreviated form (``/threads/idle-rate``),
which addresses the *total* aggregate across all worker threads of locality 0.
We implement the same convention: a name without an instance block expands to
``{locality#0/total}``.

The paper's own experiments are single-node, so its counters all live at
``locality#0``.  The distributed runtime (:mod:`repro.dist`) instantiates
real localities: per-locality counters carry a ``locality#N`` prefix and the
``locality#*`` wildcard addresses all of them at once (see
:meth:`repro.counters.registry.CounterRegistry.total`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

_NAME_RE = re.compile(
    r"""
    ^/
    (?P<object>[a-zA-Z][\w-]*)                 # object, e.g. threads
    (?:\{
        (?P<parent>[a-zA-Z][\w-]*)\#(?P<parentindex>\d+|\*)
        (?:/
            (?P<instance>[a-zA-Z][\w-]*)
            (?:\#(?P<instanceindex>\d+|\*))?
        )?
    \})?
    /
    (?P<counter>[\w-]+(?:/[\w-]+)*)            # counter path, e.g. time/average
    (?:@(?P<parameters>.*))?
    $
    """,
    re.VERBOSE,
)

TOTAL_INSTANCE = "total"


@dataclass(frozen=True)
class CounterName:
    """A parsed, canonicalized counter name.

    ``instance_index`` is ``None`` for aggregate instances such as ``total``
    and for wildcard queries; ``-1`` is never used as a sentinel.
    """

    object_name: str
    counter_path: str
    parent_instance: str = "locality"
    parent_index: int | None = 0
    instance: str = TOTAL_INSTANCE
    instance_index: int | None = None
    parameters: str | None = field(default=None, compare=True)

    @property
    def is_wildcard(self) -> bool:
        """True when any component of the instance block is ``*``."""
        return self.parent_index is None or (
            self.instance != TOTAL_INSTANCE and self.instance_index is None
        )

    @property
    def locality(self) -> int | None:
        """The locality index this name addresses.

        ``None`` for a ``locality#*`` wildcard or when the parent instance is
        not a locality at all (no such counters exist today, but the grammar
        permits them).
        """
        if self.parent_instance != "locality":
            return None
        return self.parent_index

    def with_locality(self, index: int | None) -> "CounterName":
        """This name re-addressed at ``locality#index``.

        ``None`` produces the ``locality#*`` wildcard form, the query that
        matches the same counter on every locality — the addressing mode the
        distributed runtime's aggregation is built on.
        """
        if index is not None and index < 0:
            raise ValueError(f"locality index must be >= 0, got {index}")
        return replace(self, parent_instance="locality", parent_index=index)

    def canonical(self) -> str:
        """The full canonical string form of this name."""
        parent_ix = "*" if self.parent_index is None else str(self.parent_index)
        inst = self.instance
        if inst != TOTAL_INSTANCE:
            inst_ix = (
                "*" if self.instance_index is None else str(self.instance_index)
            )
            inst = f"{inst}#{inst_ix}"
        base = (
            f"/{self.object_name}"
            f"{{{self.parent_instance}#{parent_ix}/{inst}}}"
            f"/{self.counter_path}"
        )
        if self.parameters is not None:
            base += f"@{self.parameters}"
        return base

    def short(self) -> str:
        """The abbreviated form used throughout the paper's text."""
        return f"/{self.object_name}/{self.counter_path}"

    def matches(self, other: "CounterName") -> bool:
        """True when ``other`` (a concrete name) matches this possibly
        wildcarded query name."""
        if (
            self.object_name != other.object_name
            or self.counter_path != other.counter_path
        ):
            return False
        if self.parent_index is not None and self.parent_index != other.parent_index:
            return False
        if self.instance != other.instance:
            return False
        if (
            self.instance_index is not None
            and self.instance_index != other.instance_index
        ):
            return False
        return True


def parse_counter_name(text: str) -> CounterName:
    """Parse ``text`` into a :class:`CounterName`.

    Raises :class:`ValueError` for names that do not follow the grammar.
    """
    m = _NAME_RE.match(text)
    if m is None:
        raise ValueError(f"malformed counter name: {text!r}")
    parent = m.group("parent") or "locality"
    parent_index_s = m.group("parentindex")
    if parent_index_s is None:
        parent_index: int | None = 0
    elif parent_index_s == "*":
        parent_index = None
    else:
        parent_index = int(parent_index_s)
    instance = m.group("instance") or TOTAL_INSTANCE
    instance_index_s = m.group("instanceindex")
    if instance_index_s is None or instance_index_s == "*":
        instance_index = None
    else:
        instance_index = int(instance_index_s)
    return CounterName(
        object_name=m.group("object"),
        counter_path=m.group("counter"),
        parent_instance=parent,
        parent_index=parent_index,
        instance=instance,
        instance_index=instance_index,
        parameters=m.group("parameters"),
    )


#: Counters the paper's metrics depend on (Sec. II-A), with the HPX names.
WELL_KNOWN_COUNTERS: dict[str, str] = {
    "/threads/idle-rate": "ratio of thread-management time to total time (Eq. 1)",
    "/threads/time/average": "average task execution time t_d (Eq. 2)",
    "/threads/time/average-overhead": "average per-task management time t_o (Eq. 3)",
    "/threads/time/cumulative": "running sum of task execution times (sum t_exec)",
    "/threads/time/cumulative-overhead": "running sum of management times",
    "/threads/count/cumulative": "number of HPX-threads executed n_t",
    "/threads/count/cumulative-phases": "number of thread phases executed",
    "/threads/time/average-phase": "average duration of a thread phase",
    "/threads/time/average-phase-overhead": "average management time per phase",
    "/threads/count/pending-accesses": "pending-queue lookups by the scheduler",
    "/threads/count/pending-misses": "pending-queue lookups that found no work",
    "/threads/count/staged-accesses": "staged-queue lookups by the scheduler",
    "/threads/count/staged-misses": "staged-queue lookups that found no work",
    "/threads/count/stolen": "tasks obtained from another worker's queues",
    "/threads/count/stolen-staged": "staged tasks stolen before conversion",
    "/runtime/uptime": "virtual wall-clock time of the runtime (ns)",
}
