"""Interval sampling of counters.

The paper stresses that every metric "can be calculated over any interval of
interest" (Sec. II-A) — that is what makes the metrics usable for *dynamic*
adaptation rather than only post-mortem analysis.  :class:`IntervalSampler`
takes successive snapshots of a registry and exposes the per-interval deltas;
the adaptive tuner (:mod:`repro.core.tuner`) consumes these samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.counters.registry import CounterRegistry, CounterSnapshot


@dataclass(frozen=True)
class IntervalSample:
    """Counter deltas over one sampling interval."""

    start_ns: int
    end_ns: int
    delta: CounterSnapshot

    @property
    def length_ns(self) -> int:
        return self.end_ns - self.start_ns

    def get(self, name: str, default: float = 0.0) -> float:
        return self.delta.get(name, default)


@dataclass
class IntervalSampler:
    """Collects per-interval counter deltas from a registry.

    Call :meth:`sample` at each observation point (the simulated runtime calls
    it on a virtual-time timer); each call closes the current interval and
    opens the next.
    """

    registry: CounterRegistry
    samples: list[IntervalSample] = field(default_factory=list)
    _last: CounterSnapshot | None = field(default=None, repr=False)
    _last_ns: int = 0

    def start(self, now_ns: int) -> None:
        """Open the first interval at virtual time ``now_ns``."""
        self._last = self.registry.snapshot(now_ns)
        self._last_ns = now_ns

    def sample(self, now_ns: int) -> IntervalSample:
        """Close the current interval at ``now_ns`` and record its deltas."""
        if self._last is None:
            self.start(now_ns)
        assert self._last is not None
        current = self.registry.snapshot(now_ns)
        interval = IntervalSample(
            start_ns=self._last_ns,
            end_ns=now_ns,
            delta=current.delta(self._last),
        )
        self.samples.append(interval)
        self._last = current
        self._last_ns = now_ns
        return interval

    def idle_rate_series(self) -> list[tuple[int, float]]:
        """(interval end time, idle-rate) series — the paper's primary
        dynamic signal for grain-size adjustment."""
        out = []
        for s in self.samples:
            exec_ns = s.get("/threads/time/cumulative")
            func_ns = s.get("/threads/time/cumulative-func")
            if func_ns > 0:
                out.append((s.end_ns, (func_ns - exec_ns) / func_ns))
        return out
