"""Per-link circuit breakers over the retry transport.

A lossy or degraded link turns positive-ack retransmission (PR 3) into a
storm: every timed-out parcel is retransmitted with backoff, and under a
long :class:`~repro.faults.plan.LinkDegradation` window the wire fills
with copies that will also time out.  The breaker sits between the
parcelport's send path and the wire and cuts the storm off at the source:

* **closed** — normal operation; consecutive ack-timeouts are counted
  (any ack resets the count).
* **open** — after ``failure_threshold`` consecutive failures nothing is
  transmitted.  Sends and retransmits park in the port's waiting lane
  (or, with ``fail_fast=True``, new sends raise
  :class:`~repro.overload.errors.CircuitOpenError`).  A half-open probe
  is scheduled after a cooldown that escalates geometrically with
  consecutive opens, plus seeded jitter so breakers on a shared fabric
  do not probe in lockstep.
* **half-open** — exactly one parked parcel is transmitted as a probe.
  Its ack closes the breaker and flushes the lane; another timeout
  re-opens it with a longer cooldown.

Transitions are events in simulated time; the jitter comes from the same
SplitMix64 counter-stream construction as :mod:`repro.faults.plan`
(role tag ``0x44``, keyed by link and open-count), so runs are
bit-reproducible under any :class:`~repro.faults.plan.FaultPlan`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.faults.plan import stream_unit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Event, Simulator

__all__ = ["BreakerState", "BreakerParams", "CircuitBreaker"]

#: SplitMix64 role tag for half-open probe jitter (0x11 drop, 0x22
#: duplicate, 0x33 retransmit jitter are taken by repro.faults).
_ROLE_BREAKER = 0x44


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerParams:
    """Configuration for per-destination circuit breakers.

    ``failure_threshold`` consecutive ack-timeouts open the breaker;
    the cooldown before the half-open probe starts at ``cooldown_ns``
    and multiplies by ``cooldown_backoff`` for every re-open without an
    intervening close, capped at ``max_cooldown_ns``.  ``fail_fast``
    makes new sends raise :class:`CircuitOpenError` while open instead
    of parking them.
    """

    failure_threshold: int = 3
    cooldown_ns: int = 500_000
    cooldown_backoff: float = 2.0
    max_cooldown_ns: int = 64_000_000
    max_jitter_ns: int = 10_000
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_ns <= 0:
            raise ValueError(f"cooldown_ns must be positive, got {self.cooldown_ns}")
        if self.cooldown_backoff < 1.0:
            raise ValueError(
                f"cooldown_backoff must be >= 1, got {self.cooldown_backoff}"
            )
        if self.max_jitter_ns < 0:
            raise ValueError(f"max_jitter_ns must be >= 0, got {self.max_jitter_ns}")


class CircuitBreaker:
    """Breaker state machine for one directed link (source -> destination)."""

    def __init__(
        self,
        params: BreakerParams,
        simulator: "Simulator",
        *,
        seed: int,
        source: int,
        destination: int,
        on_half_open: Callable[[], None] | None = None,
        on_transition: Callable[[BreakerState, BreakerState], None] | None = None,
    ):
        self.params = params
        self.sim = simulator
        self.seed = seed
        self.source = source
        self.destination = destination
        self.on_half_open = on_half_open
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ns: int | None = None
        #: (time_ns, from_state, to_state) for every transition
        self.transitions: list[tuple[int, str, str]] = []
        self._open_streak = 0  # opens without an intervening close
        self._probe_outstanding = False
        self._half_open_event: "Event | None" = None

    # -- gates ----------------------------------------------------------

    def allows_send(self) -> bool:
        """May a copy be put on the wire right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.HALF_OPEN:
            return not self._probe_outstanding
        return False

    def note_dispatch(self) -> None:
        """A copy went on the wire; in half-open it becomes the probe."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_outstanding = True

    # -- outcomes -------------------------------------------------------

    def record_success(self) -> None:
        """An ack arrived for this link."""
        self.consecutive_failures = 0
        self._probe_outstanding = False
        if self.state is not BreakerState.CLOSED:
            self._cancel_pending_probe()
            self._open_streak = 0
            self.opened_at_ns = None
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """An ack timer expired for this link."""
        self._probe_outstanding = False
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.params.failure_threshold
        ):
            self._trip()
        # Already open: late timers from pre-trip copies just accumulate.

    def halt(self) -> None:
        """Cancel the pending half-open event (simulation teardown)."""
        self._cancel_pending_probe()

    # -- internals ------------------------------------------------------

    def _trip(self) -> None:
        params = self.params
        self.opened_at_ns = self.sim.now
        cooldown = min(
            params.cooldown_ns * params.cooldown_backoff**self._open_streak,
            float(params.max_cooldown_ns),
        )
        self._open_streak += 1
        jitter = int(
            stream_unit(
                self.seed,
                _ROLE_BREAKER,
                self.source,
                self.destination,
                self._open_streak,
            )
            * (params.max_jitter_ns + 1)
        )
        self._transition(BreakerState.OPEN)
        self._half_open_event = self.sim.schedule(
            int(cooldown) + jitter, self._to_half_open
        )

    def _to_half_open(self) -> None:
        self._half_open_event = None
        self._probe_outstanding = False
        self._transition(BreakerState.HALF_OPEN)
        hook = self.on_half_open
        if hook is not None:
            hook()

    def _transition(self, new: BreakerState) -> None:
        old = self.state
        self.state = new
        self.transitions.append((self.sim.now, old.value, new.value))
        hook = self.on_transition
        if hook is not None:
            hook(old, new)

    def _cancel_pending_probe(self) -> None:
        if self._half_open_event is not None:
            self._half_open_event.cancel()
            self._half_open_event = None
