"""OverloadGovernor: graceful degradation instead of collapse.

The paper's Sec. VI names the control loop this module closes: the
idle-rate (Eq. 1) and pending-queue metrics (Figs. 9/10) are cheap,
timestamp-free signals, and grain size / admitted concurrency are the
knobs.  The governor watches those signals and acts so that goodput
*plateaus* at the machine's capacity when offered load keeps rising,
rather than collapsing under task-management overhead:

* **between epochs** (tuner idiom, :mod:`repro.core.tuner`):
  :meth:`OverloadGovernor.observe` inspects a finished epoch's
  :class:`~repro.runtime.runtime.RunResult` and coarsens the grain when
  management overhead rivals useful work, or refines it when the machine
  starves at coarse grain;
* **within a run** (policy idiom, :mod:`repro.core.policy`): the
  governor is also a ``Policy`` — :meth:`on_sample` receives interval
  counter deltas from a :class:`~repro.core.policy.PolicyEngine` and
  throttles admitted concurrency (active workers down, and the admission
  bound with it) while queues are backlogged and overhead-dominated,
  releasing again when the backlog drains.

Every action is recorded in :attr:`OverloadGovernor.actions`, and the
count is exported as ``/overload/count/governor-actions`` when the
governor is installed on a runtime's policy engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.counters.interval import IntervalSample
    from repro.core.policy import PolicyContext
    from repro.runtime.runtime import RunResult

__all__ = ["GovernorParams", "GovernorSignals", "GovernorAction", "OverloadGovernor"]


@dataclass(frozen=True)
class GovernorParams:
    """Thresholds and knob ranges for the governor."""

    #: coarsen when per-task management time exceeds this fraction of
    #: per-task execution time (t_o / t_d)
    overhead_high: float = 0.5
    #: refine when idle-rate exceeds this with empty queues (starvation)
    idle_high: float = 0.4
    #: per-worker staged+pending depth considered backlogged
    depth_high: float = 32.0
    #: multiplicative grain step for coarsen/refine
    grain_step: float = 2.0
    min_grain_ns: int = 1_000
    max_grain_ns: int = 4_000_000
    min_worker_limit: int = 1

    def __post_init__(self) -> None:
        if self.grain_step <= 1.0:
            raise ValueError(f"grain_step must be > 1, got {self.grain_step}")
        if not 1 <= self.min_grain_ns <= self.max_grain_ns:
            raise ValueError(
                f"need 1 <= min_grain_ns <= max_grain_ns, got "
                f"{self.min_grain_ns}..{self.max_grain_ns}"
            )


@dataclass(frozen=True)
class GovernorSignals:
    """One epoch's worth of overload signals, all dimensionless."""

    idle_rate: float  #: Eq. 1
    overhead_ratio: float  #: t_o / t_d
    depth_per_worker: float  #: peak staged+pending depth per worker
    pending_miss_rate: float  #: misses / accesses (Figs. 9/10 signal)
    shed_fraction: float  #: shed / offered (0 when admission off)
    #: shed / arrived among the *highest-rank* QoS tenants (0 without a
    #: QoS layer).  Class-aware shedding drops low-QoS work first, so any
    #: nonzero value here means overload has eaten through every buffer
    #: the class ladder provides — the strongest signal the governor sees.
    high_qos_shed_fraction: float = 0.0

    @classmethod
    def from_run(cls, result: "RunResult") -> "GovernorSignals":
        """Derive the signals from a finished run's counters."""
        counters = result.counters
        t_d = result.task_duration_ns
        t_o = result.task_overhead_ns
        accesses = result.pending_accesses
        offered = counters.get("/overload/count/offered")
        peak = counters.get("/overload/count/peak-queue-depth@gauge")
        high_arrived = counters.get("/qos/count/high-arrived")
        return cls(
            idle_rate=result.idle_rate,
            overhead_ratio=(t_o / t_d) if t_d > 0 else 0.0,
            depth_per_worker=peak / max(1, result.num_cores),
            pending_miss_rate=(
                result.pending_misses / accesses if accesses > 0 else 0.0
            ),
            shed_fraction=(
                counters.get("/overload/count/shed") / offered
                if offered > 0
                else 0.0
            ),
            high_qos_shed_fraction=(
                counters.get("/qos/count/high-shed") / high_arrived
                if high_arrived > 0
                else 0.0
            ),
        )


@dataclass(frozen=True)
class GovernorAction:
    """Log entry of one governor decision."""

    kind: str  #: "coarsen" | "refine" | "throttle" | "release" | "hold"
    reason: str
    grain_ns: int  #: grain in force after the action
    worker_limit: int | None = None  #: in-run actions only
    time_ns: int | None = None  #: in-run actions only


class OverloadGovernor:
    """Watches overload signals; coarsens grain and throttles concurrency."""

    def __init__(self, params: GovernorParams | None = None, *, grain_ns: int):
        self.params = params if params is not None else GovernorParams()
        if not self.params.min_grain_ns <= grain_ns <= self.params.max_grain_ns:
            raise ValueError(
                f"initial grain {grain_ns} outside "
                f"[{self.params.min_grain_ns}, {self.params.max_grain_ns}]"
            )
        self.grain_ns = grain_ns
        self.actions: list[GovernorAction] = []

    # -- epoch-level control (tuner idiom) ------------------------------

    def observe(self, signals: GovernorSignals) -> GovernorAction:
        """Digest one epoch's signals; returns (and records) the action."""
        p = self.params
        overloaded = (
            signals.shed_fraction > 0.0
            or signals.depth_per_worker >= p.depth_high
        )
        if signals.high_qos_shed_fraction > 0.0:
            # Shedding highest-rank work means the class ladder's buffers
            # are exhausted: coarsen unconditionally (if headroom remains)
            # — larger grains cut per-task management cost, which is the
            # only capacity the governor can recover for premium traffic.
            new_grain = min(int(self.grain_ns * p.grain_step), p.max_grain_ns)
            if new_grain > self.grain_ns:
                self.grain_ns = new_grain
                return self._record(
                    "coarsen",
                    f"high-QoS shed fraction "
                    f"{signals.high_qos_shed_fraction:.2%} > 0",
                )
        if signals.overhead_ratio > p.overhead_high and (
            overloaded or signals.idle_rate > p.idle_high
        ):
            # Management overhead rivals useful work while queues are
            # deep: fewer, larger tasks absorb the same offered work for
            # less per-task cost.
            new_grain = min(int(self.grain_ns * p.grain_step), p.max_grain_ns)
            if new_grain > self.grain_ns:
                self.grain_ns = new_grain
                return self._record(
                    "coarsen",
                    f"overhead ratio {signals.overhead_ratio:.2f} "
                    f"> {p.overhead_high}",
                )
        elif (
            signals.idle_rate > p.idle_high
            and not overloaded
            and signals.pending_miss_rate > 0.5
        ):
            # Workers mostly find empty queues and the machine idles:
            # the grain is too coarse to feed every core.
            new_grain = max(int(self.grain_ns / p.grain_step), p.min_grain_ns)
            if new_grain < self.grain_ns:
                self.grain_ns = new_grain
                return self._record(
                    "refine",
                    f"idle-rate {signals.idle_rate:.2f} with "
                    f"{signals.pending_miss_rate:.0%} queue misses",
                )
        return self._record("hold", "signals within bounds")

    # -- in-run control (Policy protocol, structural) -------------------

    def register_counters(self, registry) -> None:
        """Export the decision count (PolicyEngine calls this on install)."""
        registry.derived(
            "/overload/count/governor-actions",
            lambda: float(len(self.actions)),
            "overload-governor decisions recorded this run",
        )

    def on_sample(self, sample: "IntervalSample", ctx: "PolicyContext") -> None:
        """Throttle admitted concurrency while backlogged and
        overhead-dominated; release when the backlog drains."""
        if sample.length_ns <= 0:
            return
        p = self.params
        tasks = sample.get("/threads/count/cumulative")
        exec_ns = sample.get("/threads/time/cumulative")
        limit = ctx.active_worker_limit
        available = limit * sample.length_ns
        overhead_dominated = (
            tasks > 0 and (available - exec_ns) / tasks > exec_ns / tasks
        )
        depth_per_worker = ctx.runtime.policy.queued_tasks() / max(1, limit)
        if (
            overhead_dominated
            and depth_per_worker >= p.depth_high
            and limit > p.min_worker_limit
        ):
            new_limit = max(p.min_worker_limit, int(limit * 0.6))
            ctx.set_active_worker_limit(new_limit)
            self._tighten_admission(ctx, new_limit)
            self._record(
                "throttle",
                f"depth/worker {depth_per_worker:.0f} and overhead-dominated",
                worker_limit=new_limit,
                time_ns=ctx.now_ns,
            )
        elif (
            not overhead_dominated
            and depth_per_worker < p.depth_high / 2
            and limit < ctx.num_workers
        ):
            new_limit = min(ctx.num_workers, limit + max(1, limit // 3))
            ctx.set_active_worker_limit(new_limit)
            self._record(
                "release",
                f"backlog drained (depth/worker {depth_per_worker:.0f})",
                worker_limit=new_limit,
                time_ns=ctx.now_ns,
            )

    @staticmethod
    def _tighten_admission(ctx: "PolicyContext", worker_limit: int) -> None:
        """Scale the live admission bound with the worker limit, if bounded."""
        admission = getattr(ctx.runtime, "admission", None)
        if admission is None or admission.params.max_depth is None:
            return
        floor = max(1, admission.params.max_depth // 4)
        scaled = admission.params.max_depth * worker_limit // ctx.num_workers
        admission.max_depth = max(floor, scaled)

    def _record(
        self,
        kind: str,
        reason: str,
        *,
        worker_limit: int | None = None,
        time_ns: int | None = None,
    ) -> GovernorAction:
        action = GovernorAction(
            kind=kind,
            reason=reason,
            grain_ns=self.grain_ns,
            worker_limit=worker_limit,
            time_ns=time_ns,
        )
        self.actions.append(action)
        return action
