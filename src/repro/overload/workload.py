"""Open-loop offered-load driver for overload experiments.

The paper's experiments are *closed-loop*: a fixed task graph runs to
completion, so offered load can never exceed what the machine absorbs.
Overload is an *open-loop* phenomenon — arrivals do not wait for
completions — so figO needs a source that injects independent tasks at a
configured rate regardless of how far behind the runtime falls.  Arrival
events are scheduled directly on the runtime's simulator before the run
starts; the executor's dormancy-restart hook (built for externally
delivered parcels) revives the worker pool whenever an arrival lands on
an idle runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overload.errors import TaskShedError
from repro.runtime.future import Future
from repro.runtime.runtime import Runtime, RuntimeConfig, RunResult
from repro.runtime.work import FixedWork

__all__ = ["OfferedLoad", "OfferedLoadOutcome", "run_offered_load"]


def _unit() -> int:
    """The body of one offered task (pure bookkeeping)."""
    return 1


@dataclass(frozen=True)
class OfferedLoad:
    """An open-loop arrival process of fixed-grain independent tasks.

    ``interarrival_ns`` is the (deterministic) spacing between arrivals;
    arrivals occur at ``k * interarrival_ns`` for every k with a spawn
    time strictly inside ``[0, window_ns)``.  The *offered utilization*
    relative to a machine with C cores is
    ``grain_ns / (interarrival_ns * C)`` — 1.0 offers exactly as much
    work per unit time as C cores can execute ignoring overhead, so
    overload starts slightly below 1.0 in practice.
    """

    grain_ns: int
    interarrival_ns: float
    window_ns: int

    def __post_init__(self) -> None:
        if self.grain_ns <= 0:
            raise ValueError(f"grain_ns must be positive, got {self.grain_ns}")
        if self.interarrival_ns <= 0:
            raise ValueError(
                f"interarrival_ns must be positive, got {self.interarrival_ns}"
            )
        if self.window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {self.window_ns}")

    @property
    def count(self) -> int:
        """Number of arrivals in the window."""
        n = int(self.window_ns / self.interarrival_ns)
        if n * self.interarrival_ns >= self.window_ns:
            n -= 1
        return n + 1

    @classmethod
    def at_utilization(
        cls,
        utilization: float,
        *,
        grain_ns: int,
        num_cores: int,
        window_ns: int,
    ) -> "OfferedLoad":
        """The load offering ``utilization`` x the pure-execution capacity."""
        if utilization <= 0:
            raise ValueError(f"utilization must be positive, got {utilization}")
        return cls(
            grain_ns=grain_ns,
            interarrival_ns=grain_ns / (num_cores * utilization),
            window_ns=window_ns,
        )


@dataclass(frozen=True)
class OfferedLoadOutcome:
    """A finished offered-load run plus the per-task future outcomes."""

    result: RunResult
    offered: int  #: arrivals injected
    completed: int  #: futures that carry a value
    shed: int  #: futures that carry a TaskShedError

    @property
    def goodput(self) -> float:
        """Useful work completed per core-nanosecond of the run."""
        if self.result.execution_time_ns <= 0:
            return 0.0
        return self.result.cumulative_exec_ns / (
            self.result.num_cores * self.result.execution_time_ns
        )


def run_offered_load(
    config: RuntimeConfig, load: OfferedLoad
) -> OfferedLoadOutcome:
    """Drive a fresh :class:`Runtime` with ``load``; classify every task."""
    rt = Runtime(config)
    futures: list[Future] = []

    def arrive(index: int) -> None:
        futures.append(
            rt.async_(
                _unit,
                work=FixedWork(load.grain_ns),
                name=f"offered#{index}",
            )
        )

    for k in range(load.count):
        rt.simulator.schedule_at(
            int(k * load.interarrival_ns),
            (lambda kk: lambda: arrive(kk))(k),
        )
    result = rt.run()

    completed = shed = 0
    for future in futures:
        if future.exception is not None:
            if isinstance(future.exception, TaskShedError):
                shed += 1
            else:  # pragma: no cover - nothing else can fail here
                raise future.exception
        else:
            completed += 1
    return OfferedLoadOutcome(
        result=result, offered=len(futures), completed=completed, shed=shed
    )
