"""Admission control: bounded scheduler queues with overflow policies.

The paper's two walls (Sec. IV) are queueing phenomena: at fine grain the
pending/staged queues grow faster than workers can drain them, and every
queued task pays management overhead whether or not it ever helps
utilization.  Admission control bounds the *depth* of each
:class:`~repro.schedulers.queues.DualQueue` (staged + pending) and picks
one of three overflow policies when a new staged task arrives at a full
queue:

``block``
    The producer pays backpressure: the task waits in a per-queue
    deferred lane and is admitted (FIFO) as soon as depth recovers.  The
    simulated-time wait is metered into
    ``/overload/time/backpressure-blocked``.

``shed``
    The least-protected staged task (newest among ties) is rejected with
    a typed :class:`~repro.overload.errors.TaskShedError`; if nothing
    staged is less protected than the newcomer, the newcomer itself is
    shed.  Protection is queue priority first, then QoS class standing
    (shed eligibility, then class rank — see
    :meth:`AdmissionControl._shed_key`), so under multi-tenant overload
    low-QoS work is dropped before high-QoS work at equal priority.
    Shedding bounds completion time as well as memory: offered work that
    cannot be absorbed is dropped instead of queued.

``spill``
    The task moves to an unbounded *cold* queue (a description, not a
    runnable) and is re-admitted when depth recovers.  Spilling bounds
    the hot structures the workers scan while conserving all offered
    work.

Only *new staged admissions* are gated.  ``push_pending`` (resumed tasks
and staged-to-pending conversion inside ``find_work``) is always
admitted: a suspended task already holds resources, and deferring its
resume could deadlock the very continuation that would free capacity.

Conservation identity (asserted by figO)::

    offered == admitted == executed + shed + deferred_pending

where ``deferred_pending`` is zero once a run drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.overload.errors import TaskShedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.task import Task
    from repro.schedulers.queues import DualQueue

__all__ = ["AdmissionParams", "AdmissionStats", "AdmissionControl"]

_POLICIES = ("block", "shed", "spill")


@dataclass(frozen=True)
class AdmissionParams:
    """Configuration for admission control on the scheduler queues.

    ``max_depth`` bounds staged+pending depth *per queue*; ``None`` means
    unbounded (observe-only: depth statistics are tracked but nothing is
    ever deferred or shed — useful as a measured baseline).
    """

    max_depth: int | None = None
    policy: str = "shed"

    def __post_init__(self) -> None:
        if self.policy not in _POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.policy!r}; "
                f"expected one of {_POLICIES}"
            )
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")


@dataclass
class AdmissionStats:
    """Running totals for one :class:`AdmissionControl` instance."""

    offered: int = 0  #: tasks presented for staged admission
    admitted: int = 0  #: tasks placed directly on a hot queue
    shed: int = 0  #: tasks rejected under the ``shed`` policy
    blocked: int = 0  #: tasks deferred under the ``block`` policy
    spilled: int = 0  #: tasks deferred under the ``spill`` policy
    readmitted: int = 0  #: deferred tasks later admitted
    backpressure_wait_ns: int = 0  #: total simulated wait (``block`` only)
    peak_depth: int = 0  #: high-water staged+pending depth of any queue


class AdmissionControl:
    """Shared controller gating staged admissions across a policy's queues.

    One instance is attached to every :class:`DualQueue` of a scheduling
    policy; each queue keeps its own deferred lane while bounds, policy,
    statistics and the shed callback live here.  ``max_depth`` is
    deliberately mutable: the :class:`~repro.overload.governor
    .OverloadGovernor` throttles admitted concurrency by tightening it
    mid-run.
    """

    def __init__(
        self,
        params: AdmissionParams,
        *,
        now_fn: Callable[[], int],
        on_shed: Callable[["Task", TaskShedError], None] | None = None,
    ):
        self.params = params
        self.max_depth = params.max_depth
        self.now_fn = now_fn
        self.on_shed = on_shed
        self.stats = AdmissionStats()
        self._queues: list["DualQueue"] = []

    # -- wiring ---------------------------------------------------------

    def attach(self, queue: "DualQueue") -> None:
        """Install this controller on ``queue``."""
        queue.admission = self
        self._queues.append(queue)

    @property
    def deferred_tasks(self) -> int:
        """Tasks currently parked in deferred lanes (spill depth gauge)."""
        return sum(len(q._deferred) for q in self._queues)

    # -- the gate -------------------------------------------------------

    def offer(self, queue: "DualQueue", task: "Task") -> None:
        """Admit, defer, or shed a new staged ``task`` for ``queue``."""
        stats = self.stats
        stats.offered += 1
        depth = queue.pending_len + queue.staged_len
        if self.max_depth is None or depth < self.max_depth:
            queue._staged.append(task)
            stats.admitted += 1
            if depth + 1 > stats.peak_depth:
                stats.peak_depth = depth + 1
            return
        policy = self.params.policy
        if policy == "shed":
            victim = self._lowest_priority_staged(queue, task)
            if victim is None:
                self._shed(task, depth)
            else:
                queue._staged.remove(victim)
                queue._staged.append(task)
                stats.admitted += 1
                self._shed(victim, depth)
            return
        queue._deferred.append((task, self.now_fn()))
        if policy == "spill":
            stats.spilled += 1
        else:
            stats.blocked += 1

    def note_pending_push(self, queue: "DualQueue") -> None:
        """Track depth after an (always admitted) pending push."""
        depth = queue.pending_len + queue.staged_len
        if depth > self.stats.peak_depth:
            self.stats.peak_depth = depth

    def drain(self, queue: "DualQueue") -> None:
        """Re-admit deferred tasks while ``queue`` has headroom.

        Called from the queue's pop paths, so any worker touching the
        queue (including stealers) pulls cold work back in as soon as
        depth recovers.
        """
        deferred = queue._deferred
        if not deferred:
            return
        stats = self.stats
        meter_wait = self.params.policy == "block"
        now = None
        while deferred:
            depth = queue.pending_len + queue.staged_len
            if self.max_depth is not None and depth >= self.max_depth:
                return
            task, since = deferred.popleft()
            queue._staged.append(task)
            stats.admitted += 1
            stats.readmitted += 1
            if depth + 1 > stats.peak_depth:
                stats.peak_depth = depth + 1
            if meter_wait:
                if now is None:
                    now = self.now_fn()
                stats.backpressure_wait_ns += now - since

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _shed_key(task: "Task") -> tuple[int, int, int]:
        """Composite eviction-resistance key; lower keys are shed first.

        Queue priority dominates (preserving pre-QoS behaviour exactly for
        unclassed workloads), then QoS standing among equal priorities: a
        shed-ineligible class outranks every eligible one, and within the
        eligible a higher class ``rank`` resists eviction longer.  Tasks
        without a QoS class tie with an eligible rank-0 class.
        """
        qos = task.qos
        if qos is None:
            return (int(task.priority), 0, 0)
        return (int(task.priority), 0 if qos.shed_eligible else 1, qos.rank)

    def _lowest_priority_staged(
        self, queue: "DualQueue", incoming: "Task"
    ) -> "Task | None":
        """The staged task to evict in favour of ``incoming``, if any.

        Picks the staged task with the minimum :meth:`_shed_key` (queue
        priority, then QoS class standing), newest among ties, but only if
        its key is *strictly* lower than ``incoming``'s — ties shed the
        newcomer, preserving arrival-order fairness within a class.
        """
        victim = None
        victim_key = None
        for task in reversed(queue._staged):
            key = self._shed_key(task)
            if victim_key is None or key < victim_key:
                victim, victim_key = task, key
        if victim is not None and victim_key < self._shed_key(incoming):
            return victim
        return None

    def _shed(self, task: "Task", depth: int) -> None:
        self.stats.shed += 1
        hook = self.on_shed
        if hook is not None:
            bound = self.max_depth if self.max_depth is not None else 0
            hook(task, TaskShedError(task.name, queue_depth=depth, max_depth=bound))
