"""Aggregate configuration for the overload-control layers.

Everything defaults to ``None``/off: a runtime built without an
:class:`OverloadConfig` (or with an empty one) is bit-identical to the
pre-overload behaviour — no extra events, no extra counters on the hot
paths.  Each layer is enabled independently:

* ``admission`` bounds scheduler queue depth (:mod:`repro.overload.admission`),
* ``credits`` bounds per-destination in-flight parcels,
* ``breaker`` adds per-link circuit breakers
  (:mod:`repro.overload.breaker`).

``credits`` and ``breaker`` both ride on the positive-ack transport, so
:class:`~repro.dist.runtime.DistConfig` validation requires ``retry``
when either is set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overload.admission import AdmissionParams
from repro.overload.breaker import BreakerParams

__all__ = ["CreditParams", "OverloadConfig"]


@dataclass(frozen=True)
class CreditParams:
    """Credit-based flow control: a sender window per destination.

    At most ``window`` distinct unacked parcels may be in flight to any
    one destination; further sends park (in simulated time) until an ack
    or a declared loss returns a credit.  Retransmissions do not consume
    additional credits — a parcel holds its credit from first wire copy
    to ack or loss.
    """

    window: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"credit window must be >= 1, got {self.window}")


@dataclass(frozen=True)
class OverloadConfig:
    """Opt-in overload control; all layers default to off."""

    admission: AdmissionParams | None = None
    credits: CreditParams | None = None
    breaker: BreakerParams | None = None

    @property
    def is_active(self) -> bool:
        return (
            self.admission is not None
            or self.credits is not None
            or self.breaker is not None
        )
