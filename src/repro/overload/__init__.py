"""Overload control: keep the simulated runtime stable under offered
load it cannot absorb.

Four layers, each strictly opt-in (defaults reproduce pre-overload
behaviour bit-for-bit):

- :mod:`repro.overload.admission` — bounded scheduler queues with
  ``block`` / ``shed`` / ``spill`` overflow policies;
- credit-based flow control on the parcelport
  (:class:`~repro.overload.config.CreditParams`);
- :mod:`repro.overload.breaker` — per-link circuit breakers over the
  retry transport;
- :mod:`repro.overload.governor` — the graceful-degradation controller.

The open-loop load source lives in :mod:`repro.overload.workload`
(imported on demand; it depends on the runtime facade).  See
``docs/overload.md`` for the counter catalogue and the conservation
identity figO asserts.
"""

from repro.overload.admission import AdmissionControl, AdmissionParams, AdmissionStats
from repro.overload.breaker import BreakerParams, BreakerState, CircuitBreaker
from repro.overload.config import CreditParams, OverloadConfig
from repro.overload.errors import CircuitOpenError, OverloadError, TaskShedError
from repro.overload.governor import (
    GovernorAction,
    GovernorParams,
    GovernorSignals,
    OverloadGovernor,
)

__all__ = [
    "AdmissionControl",
    "AdmissionParams",
    "AdmissionStats",
    "BreakerParams",
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "CreditParams",
    "GovernorAction",
    "GovernorParams",
    "GovernorSignals",
    "OverloadConfig",
    "OverloadError",
    "OverloadGovernor",
    "TaskShedError",
]
