"""Typed failures raised by the overload-control layer.

Overload control turns silent collapse into *explicit, typed* outcomes:
a task rejected by admission control fails its future with
:class:`TaskShedError`; a send refused by an open circuit breaker (when
the breaker is configured to fail fast) raises :class:`CircuitOpenError`.
Both carry enough context to name the victim and the reason, following
the convention set by :mod:`repro.faults.errors`.
"""

from __future__ import annotations

__all__ = ["OverloadError", "TaskShedError", "CircuitOpenError"]


class OverloadError(RuntimeError):
    """Base class for failures caused by overload-control decisions."""


class TaskShedError(OverloadError):
    """A task was rejected by admission control under the ``shed`` policy.

    The task never ran: its future carries this exception instead of a
    value, so consumers observe load shedding as an ordinary failed
    dependency rather than a hang.
    """

    def __init__(self, task_name: str, *, queue_depth: int, max_depth: int):
        self.task_name = task_name
        self.queue_depth = queue_depth
        self.max_depth = max_depth
        super().__init__(
            f"task {task_name!r} shed by admission control "
            f"(queue depth {queue_depth} at bound {max_depth})"
        )


class CircuitOpenError(OverloadError):
    """A send was refused because the circuit breaker for the link is open.

    Only raised when the breaker is configured with ``fail_fast=True``;
    the default behaviour parks the send until the link recovers.
    """

    def __init__(
        self,
        source: int,
        destination: int,
        *,
        opened_at_ns: int,
        consecutive_failures: int,
    ):
        self.source = source
        self.destination = destination
        self.opened_at_ns = opened_at_ns
        self.consecutive_failures = consecutive_failures
        super().__init__(
            f"circuit breaker for link {source}->{destination} is open "
            f"(opened at t={opened_at_ns}ns after "
            f"{consecutive_failures} consecutive failures)"
        )
