"""Sample statistics as used in the paper's methodology (Sec. II / IV).

The paper runs each experiment multiple times and reports the mean, standard
deviation, and coefficient of variation (COV = stddev / mean) of execution
times and event counts, noting that COVs stay below 10% for most
configurations.  :class:`SampleStats` packages exactly those quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean. Raises ``ValueError`` on an empty sequence."""
    if not samples:
        raise ValueError("mean() of empty sequence")
    return math.fsum(samples) / len(samples)


def stddev(samples: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for fewer than two samples."""
    n = len(samples)
    if n == 0:
        raise ValueError("stddev() of empty sequence")
    if n == 1:
        return 0.0
    m = mean(samples)
    var = math.fsum((x - m) ** 2 for x in samples) / (n - 1)
    return math.sqrt(var)


def cov(samples: Sequence[float]) -> float:
    """Coefficient of variation: stddev / |mean|.

    Returns 0.0 when the mean is zero (all-zero samples), matching how the
    paper treats event counts that never fire.
    """
    m = mean(samples)
    if m == 0:
        return 0.0
    return stddev(samples) / abs(m)


@dataclass(frozen=True)
class SampleStats:
    """Mean / stddev / COV summary of a repeated measurement."""

    n: int
    mean: float
    stddev: float
    cov: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "SampleStats":
        xs = list(samples)
        if not xs:
            raise ValueError("SampleStats.from_samples() of empty sequence")
        return cls(
            n=len(xs),
            mean=mean(xs),
            stddev=stddev(xs),
            cov=cov(xs),
            minimum=min(xs),
            maximum=max(xs),
        )

    def within_stddev(self, value: float) -> bool:
        """True when ``value`` lies within one standard deviation of the mean.

        The paper uses this criterion to argue that a threshold-selected grain
        size is statistically indistinguishable from the best one (Sec. IV-A).
        """
        return abs(value - self.mean) <= self.stddev


def describe(samples: Sequence[float]) -> SampleStats:
    """Convenience wrapper for :meth:`SampleStats.from_samples`."""
    return SampleStats.from_samples(samples)
