"""Sample statistics as used in the paper's methodology (Sec. II / IV).

The paper runs each experiment multiple times and reports the mean, standard
deviation, and coefficient of variation (COV = stddev / mean) of execution
times and event counts, noting that COVs stay below 10% for most
configurations.  :class:`SampleStats` packages exactly those quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean. Raises ``ValueError`` on an empty sequence."""
    if not samples:
        raise ValueError("mean() of empty sequence")
    return math.fsum(samples) / len(samples)


def stddev(samples: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for fewer than two samples."""
    n = len(samples)
    if n == 0:
        raise ValueError("stddev() of empty sequence")
    if n == 1:
        return 0.0
    m = mean(samples)
    var = math.fsum((x - m) ** 2 for x in samples) / (n - 1)
    return math.sqrt(var)


def cov(samples: Sequence[float]) -> float:
    """Coefficient of variation: stddev / |mean|.

    Returns 0.0 when the mean is zero (all-zero samples), matching how the
    paper treats event counts that never fire.
    """
    m = mean(samples)
    if m == 0:
        return 0.0
    return stddev(samples) / abs(m)


@dataclass(frozen=True)
class SampleStats:
    """Mean / stddev / COV summary of a repeated measurement."""

    n: int
    mean: float
    stddev: float
    cov: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "SampleStats":
        xs = list(samples)
        if not xs:
            raise ValueError("SampleStats.from_samples() of empty sequence")
        return cls(
            n=len(xs),
            mean=mean(xs),
            stddev=stddev(xs),
            cov=cov(xs),
            minimum=min(xs),
            maximum=max(xs),
        )

    def within_stddev(self, value: float) -> bool:
        """True when ``value`` lies within one standard deviation of the mean.

        The paper uses this criterion to argue that a threshold-selected grain
        size is statistically indistinguishable from the best one (Sec. IV-A).
        """
        return abs(value - self.mean) <= self.stddev


def describe(samples: Sequence[float]) -> SampleStats:
    """Convenience wrapper for :meth:`SampleStats.from_samples`."""
    return SampleStats.from_samples(samples)


def quantile(samples: Sequence[float], q: float) -> float:
    """Exact nearest-rank quantile: the smallest sample x such that at
    least ``ceil(q * n)`` samples are <= x.

    No interpolation: the result is always an element of ``samples``, so
    a reported p99 is a latency some request actually experienced — the
    convention tail-latency SLOs are written against.  ``q`` must lie in
    (0, 1]; ``q=1.0`` is the maximum, and any ``q <= 1/n`` the minimum.
    Raises :class:`ValueError` on an empty sequence or out-of-range ``q``.
    """
    if not samples:
        raise ValueError("quantile() of empty sequence")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile q must be in (0, 1], got {q}")
    ordered = sorted(samples)
    return ordered[_nearest_rank(q, len(ordered)) - 1]


def _nearest_rank(q: float, n: int) -> int:
    """1-based nearest rank ``ceil(q * n)``, robust to float noise.

    ``0.999 * 1000`` is ``999.0000000000001`` in binary, whose plain ceil
    (1000) would silently turn a p999 into the maximum; the epsilon
    restores the mathematically intended rank.
    """
    return max(1, math.ceil(q * n - 1e-9))


def percentiles(
    samples: Sequence[float], ps: Iterable[float] = (50.0, 99.0, 99.9)
) -> dict[float, float]:
    """Nearest-rank percentiles keyed by the requested percentile.

    ``ps`` are percentages in (0, 100]; the default triple is the
    p50/p99/p999 set the QoS layer reports per tenant.  One sort is
    shared across all requested points.
    """
    pts = list(ps)
    if not samples:
        raise ValueError("percentiles() of empty sequence")
    ordered = sorted(samples)
    n = len(ordered)
    out: dict[float, float] = {}
    for p in pts:
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        out[p] = ordered[_nearest_rank(p / 100.0, n) - 1]
    return out
