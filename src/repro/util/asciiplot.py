"""Minimal ASCII line plots for experiment output.

The paper's figures are log-x line charts (execution time, idle-rate, queue
accesses vs. partition size).  :func:`plot_series` renders the same series as
a character grid so a terminal-only reproduction can still show the *shape*
of each curve — the quantity the reproduction is judged on.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def _log10(x: float) -> float:
    return math.log10(x) if x > 0 else 0.0


def plot_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 18,
    logx: bool = True,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series on one shared-axis ASCII grid.

    Each series gets a distinct marker; the legend maps markers to names.
    ``logx=True`` mirrors the paper's log-scale partition-size axis.
    """
    points = [(x, y) for pts in series.values() for (x, y) in pts]
    if not points:
        return "(no data)"
    xs = [(_log10(x) if logx else x) for x, _ in points]
    ys = [y for _, y in points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            gx = _log10(x) if logx else x
            col = int((gx - xmin) / (xmax - xmin) * (width - 1))
            row = int((y - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {ylabel}  [{ymin:.4g} .. {ymax:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    if logx:
        lines.append(
            f"x: {xlabel} (log10) [{10 ** xmin:.4g} .. {10 ** xmax:.4g}]"
        )
    else:
        lines.append(f"x: {xlabel} [{xmin:.4g} .. {xmax:.4g}]")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
