"""Shared utilities: statistics, table rendering, ASCII plotting, time units.

These helpers are deliberately dependency-light (numpy only) so that every
other subpackage can use them without import cycles.
"""

from repro.util.stats import SampleStats, cov, describe, mean, stddev
from repro.util.tables import format_table
from repro.util.timeunits import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    format_ns,
    ns_to_seconds,
    seconds_to_ns,
)

__all__ = [
    "SampleStats",
    "cov",
    "describe",
    "mean",
    "stddev",
    "format_table",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "format_ns",
    "ns_to_seconds",
    "seconds_to_ns",
]
