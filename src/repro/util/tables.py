"""Plain-text table rendering for experiment reports.

Every benchmark harness prints its series as an aligned ASCII table so the
reproduced rows can be eyeballed against the paper's figures without any
plotting dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[j]) for j, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
