"""Time-unit helpers.

The simulator keeps time as integer nanoseconds so that event ordering is
exact and runs are bit-reproducible; floats appear only at the reporting
boundary.  The paper reports execution times in seconds and task durations in
microseconds/milliseconds, so formatting helpers cover that whole range.
"""

from __future__ import annotations

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000


def seconds_to_ns(seconds: float) -> int:
    """Convert (possibly fractional) seconds to integer nanoseconds."""
    return int(round(seconds * SECOND))


def ns_to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / SECOND


def format_ns(ns: float) -> str:
    """Render a nanosecond quantity with a human-appropriate unit.

    >>> format_ns(2_500)
    '2.500us'
    >>> format_ns(3_200_000_000)
    '3.200s'
    """
    absns = abs(ns)
    if absns >= SECOND:
        return f"{ns / SECOND:.3f}s"
    if absns >= MILLISECOND:
        return f"{ns / MILLISECOND:.3f}ms"
    if absns >= MICROSECOND:
        return f"{ns / MICROSECOND:.3f}us"
    return f"{ns:.0f}ns"
