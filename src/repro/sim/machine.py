"""Machine topology: cores grouped into NUMA domains.

HPX's thread manager "captures the machine topology at creation time" and its
Priority Local scheduler searches for work NUMA-domain by NUMA-domain
(Fig. 1).  The :class:`Machine` gives the scheduler the same information: for
every core, which cores share its NUMA domain and in what order the remaining
domains should be scanned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.platforms import PlatformSpec


@dataclass(frozen=True)
class Core:
    """One physical core; ``index`` is global, ``domain`` is its NUMA node."""

    index: int
    domain: int


@dataclass(frozen=True)
class NumaDomain:
    """A NUMA domain and the global indices of its cores."""

    index: int
    core_indices: tuple[int, ...]


@dataclass
class Machine:
    """Topology view used by the scheduler and the cost model.

    ``num_cores`` may be smaller than the platform's core count — the paper's
    strong-scaling experiments run the same node restricted to 1..N cores.
    Cores are taken domain-contiguously (cores 0..k-1 from domain 0 first),
    matching how HPX binds worker threads by default.
    """

    platform: PlatformSpec
    num_cores: int
    cores: list[Core] = field(init=False)
    domains: list[NumaDomain] = field(init=False)

    def __post_init__(self) -> None:
        if not 1 <= self.num_cores <= self.platform.cores:
            raise ValueError(
                f"num_cores={self.num_cores} outside 1..{self.platform.cores} "
                f"for {self.platform.name}"
            )
        per_domain = self.platform.cores // self.platform.numa_domains
        cores = []
        for i in range(self.num_cores):
            cores.append(Core(index=i, domain=min(i // per_domain, self.platform.numa_domains - 1)))
        self.cores = cores
        domains: dict[int, list[int]] = {}
        for core in cores:
            domains.setdefault(core.domain, []).append(core.index)
        self.domains = [
            NumaDomain(index=d, core_indices=tuple(ixs))
            for d, ixs in sorted(domains.items())
        ]

    @property
    def num_domains(self) -> int:
        """Number of NUMA domains that actually have active cores."""
        return len(self.domains)

    def domain_of(self, core_index: int) -> int:
        return self.cores[core_index].domain

    def same_domain_cores(self, core_index: int) -> tuple[int, ...]:
        """Other active cores in ``core_index``'s NUMA domain, ascending."""
        d = self.domain_of(core_index)
        return tuple(
            i for i in self.domains_by_index(d).core_indices if i != core_index
        )

    def remote_domain_cores(self, core_index: int) -> tuple[int, ...]:
        """Active cores in all other domains, nearest domain first."""
        own = self.domain_of(core_index)
        out: list[int] = []
        for domain in self.domains:
            if domain.index == own:
                continue
            out.extend(domain.core_indices)
        return tuple(out)

    def domains_by_index(self, index: int) -> NumaDomain:
        for domain in self.domains:
            if domain.index == index:
                return domain
        raise KeyError(f"no active NUMA domain {index}")
