"""Deterministic discrete-event engine.

Design constraints:

- **Determinism** — events at equal virtual times fire in scheduling order
  (a monotone sequence number breaks ties), so a run is a pure function of
  its inputs and seed.  The paper's COV analysis is reproduced by perturbing
  the cost model with a seeded RNG, not by nondeterministic execution.
- **Throughput** — a fine-grained sweep executes hundreds of thousands of
  simulated tasks; the hot path is ``heapq`` push/pop of plain tuples with no
  allocation beyond the tuple itself (guides: profile first, keep the inner
  loop allocation-light).
"""

from __future__ import annotations

import heapq
from typing import Callable


class Event:
    """Handle for a scheduled callback; allows O(1) logical cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it is skipped (and dropped) when popped."""
        self.cancelled = True


class Simulator:
    """Virtual-time event loop.

    Time is integer nanoseconds.  ``run()`` drains the heap; ``run_until``
    stops the clock at a deadline (events beyond it stay queued).
    """

    __slots__ = ("now", "_heap", "_seq")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq: int = 0

    def schedule(self, delay_ns: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError(f"negative delay {delay_ns}")
        return self.schedule_at(self.now + delay_ns, callback)

    def schedule_at(self, time_ns: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ns} < now {self.now}"
            )
        self._seq += 1
        event = Event(time_ns, self._seq, callback)
        heapq.heappush(self._heap, (time_ns, self._seq, event))
        return event

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events.

        Counts by scanning the heap (cancellation is logical, so the queue
        may hold dead entries); diagnostic use only, not a hot path.
        """
        return sum(1 for _t, _s, e in self._heap if not e.cancelled)

    def step(self) -> bool:
        """Fire the single next event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time_ns, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = time_ns
            event.callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Drain the event heap; returns the number of events fired.

        ``max_events`` guards against runaway polling loops in tests.
        """
        heap = self._heap
        fired = 0
        while heap:
            time_ns, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = time_ns
            event.callback()
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def run_until(self, deadline_ns: int) -> int:
        """Fire events with time <= deadline, then set the clock to it."""
        heap = self._heap
        fired = 0
        while heap and heap[0][0] <= deadline_ns:
            time_ns, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = time_ns
            event.callback()
            fired += 1
        if deadline_ns > self.now:
            self.now = deadline_ns
        return fired
