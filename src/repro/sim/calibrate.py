"""Cost-model calibration from measurable anchors.

The shipped :mod:`repro.sim.platforms` constants were derived by hand from
the paper's text (per-point time from "12,500 grid points take 21 µs",
bandwidth from the strong-scaling ceiling, contention from the fine-grain
idle-rates).  This module makes that derivation a function, so a user can
point the simulator at a *new* machine by supplying the same three anchors
measured on it:

1. **single-core kernel anchor** — one partition size and its measured
   single-core task duration → ``per_point_ns``;
2. **strong-scaling anchor** — the speedup observed at ``n`` cores in the
   medium-grain region → effective memory bandwidth (by inverting the
   bandwidth-inflation formula);
3. **fine-grain idle anchor** — the idle-rate observed at ``n`` cores for a
   known small grain → the convex contention coefficient (by inverting the
   management-cost scaling).

The round-trip property (a platform calibrated from anchors reproduces
those anchors in simulation) is tested in ``tests/test_calibrate.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.costmodel import CostModel
from repro.sim.platforms import PlatformSpec


@dataclass(frozen=True)
class KernelAnchor:
    """Measured single-core duration of one stencil partition update."""

    points: int
    duration_ns: float

    def __post_init__(self) -> None:
        if self.points < 1 or self.duration_ns <= 0:
            raise ValueError("need points >= 1 and duration_ns > 0")


@dataclass(frozen=True)
class ScalingAnchor:
    """Observed medium-grain strong-scaling: ``speedup`` at ``cores``."""

    cores: int
    speedup: float

    def __post_init__(self) -> None:
        if self.cores < 2:
            raise ValueError("scaling anchor needs >= 2 cores")
        if not 1.0 <= self.speedup <= self.cores:
            raise ValueError(
                f"speedup must lie in [1, cores]; got {self.speedup} at "
                f"{self.cores} cores"
            )


@dataclass(frozen=True)
class ContentionAnchor:
    """Observed fine-grain idle-rate at ``cores`` for ``grain_points``."""

    cores: int
    grain_points: int
    idle_rate: float

    def __post_init__(self) -> None:
        if self.cores < 2:
            raise ValueError("contention anchor needs >= 2 cores")
        if not 0.0 < self.idle_rate < 1.0:
            raise ValueError("idle_rate must be in (0, 1)")


def calibrate(
    base: PlatformSpec,
    kernel: KernelAnchor,
    scaling: ScalingAnchor | None = None,
    contention: ContentionAnchor | None = None,
) -> PlatformSpec:
    """A copy of ``base`` whose cost constants satisfy the anchors.

    Anchors are applied independently: omitted ones leave the corresponding
    base constants untouched.  The kernel anchor is solved exactly
    (accounting for the cache tier the anchor partition occupies and the
    single-core housekeeping interference); the scaling and contention
    anchors invert the closed-form inflation formulas.
    """
    params = base.costs

    # 1. per-point time: duration = points * per_point * cache_factor *
    #    (1 + solo_interference) on one fully-busy core.
    probe = CostModel(base, 1, seed=0)
    factor = probe.cache_factor(kernel.points)
    per_point = kernel.duration_ns / (
        kernel.points * factor * (1.0 + params.solo_interference_frac)
    )
    params = replace(params, per_point_ns=per_point)

    # 2. bandwidth from the strong-scaling ceiling: at saturation,
    #    speedup = cores / inflation and
    #    inflation = 1 + mem_bound * (demand_ratio - 1).
    if scaling is not None:
        inflation = scaling.cores / scaling.speedup
        if inflation > 1.0 + 1e-9:
            ratio = 1.0 + (inflation - 1.0) / params.mem_bound_frac
            demand = params.bytes_per_point / per_point  # bytes/ns/core
            bandwidth = demand * scaling.cores / ratio
            params = replace(params, mem_bandwidth_bytes_per_ns=bandwidth)
        # speedup == cores: never saturates at this count; keep base value.

    # 3. contention from the fine-grain idle-rate: with n_t >> cores and
    #    negligible bandwidth pressure (duty-cycled), idle ~= to / (to + td)
    #    where to = task_overhead * (1 + coef * (cores-1)^exp) + timer.
    if contention is not None:
        td = (
            contention.grain_points
            * per_point
            * probe.cache_factor(contention.grain_points)
        )
        needed_to = contention.idle_rate / (1.0 - contention.idle_rate) * td
        # Timing counters are on in the paper's measurements.
        base_to = params.task_overhead_ns + params.timer_overhead_ns
        scale = needed_to / base_to
        if scale > 1.0:
            coef = (scale - 1.0) / (
                (contention.cores - 1) ** params.contention_exp
            )
            params = replace(params, contention_coef=coef)

    return replace(base, costs=params)
