"""Execution tracing: an OTF2/APEX-lite event record for simulated runs.

The paper's methodology aggregates counters; debugging *why* a grain size
misbehaves needs the underlying schedule.  The tracer records, in virtual
time:

- per task-phase: worker, task id/name, dispatch time, management time,
  execution interval;
- per steal: thief, victim provenance (same-domain or remote);
- per idle interval: worker and duration (from backoff accounting).

Tracing is opt-in (``Runtime(..., trace=True)`` via config or by attaching
a :class:`ExecutionTrace` to the executor) and adds one append per event, so
traced runs remain cheap.  :mod:`repro.core.timeline` consumes traces for
utilization profiles, wave analysis, and an ASCII Gantt rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, slots=True)
class PhaseRecord:
    """One executed task phase."""

    task_id: int
    task_name: str
    worker: int
    phase: int
    #: when the worker picked the task up (before management costs)
    dispatch_ns: int
    #: management time paid before execution began
    mgmt_ns: int
    #: execution interval [start_ns, end_ns)
    start_ns: int
    end_ns: int
    #: provenance: "local", "numa", "remote", "high-priority", "low-priority"
    source: str

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True, slots=True)
class StealRecord:
    """One successful steal."""

    thief: int
    time_ns: int
    same_domain: bool
    staged: bool


@dataclass(frozen=True, slots=True)
class SpawnRecord:
    """One task creation, with parentage.

    ``parent_task_id`` is the task in whose execution context the spawn
    happened (dataflow continuations, nested asyncs), or ``None`` for
    top-level spawns from the driver.  The parentage edges are what
    :func:`repro.analysis.graph.graph_from_trace` reconstructs the task
    graph from.
    """

    parent_task_id: int | None
    child_task_id: int
    child_name: str
    time_ns: int


@dataclass
class ExecutionTrace:
    """Accumulates the event record of one simulated run."""

    phases: list[PhaseRecord] = field(default_factory=list)
    steals: list[StealRecord] = field(default_factory=list)
    spawns: list[SpawnRecord] = field(default_factory=list)
    num_workers: int = 0
    finish_ns: int = 0

    # -- recording (called by the executor) ----------------------------------------

    def record_phase(self, record: PhaseRecord) -> None:
        self.phases.append(record)

    def record_steal(self, record: StealRecord) -> None:
        self.steals.append(record)

    def record_spawn(self, record: SpawnRecord) -> None:
        self.spawns.append(record)

    # -- queries ----------------------------------------------------------------------

    def phases_of_worker(self, worker: int) -> Iterator[PhaseRecord]:
        return (p for p in self.phases if p.worker == worker)

    def phases_of_task(self, task_id: int) -> list[PhaseRecord]:
        return [p for p in self.phases if p.task_id == task_id]

    @property
    def task_count(self) -> int:
        return len({p.task_id for p in self.phases})

    def busy_ns_of_worker(self, worker: int) -> int:
        """Execution plus management time of one worker."""
        return sum(
            p.duration_ns + p.mgmt_ns for p in self.phases_of_worker(worker)
        )

    def validate(self) -> list[str]:
        """Internal-consistency check; returns violations (empty = clean).

        Invariants: phase intervals are well-formed, a worker never runs two
        phases at once, and management precedes execution.
        """
        problems: list[str] = []
        by_worker: dict[int, list[PhaseRecord]] = {}
        for p in self.phases:
            if p.end_ns < p.start_ns:
                problems.append(f"task {p.task_id}: negative duration")
            if p.start_ns < p.dispatch_ns:
                problems.append(f"task {p.task_id}: runs before dispatch")
            if p.start_ns - p.dispatch_ns != p.mgmt_ns:
                problems.append(
                    f"task {p.task_id}: mgmt gap {p.start_ns - p.dispatch_ns} "
                    f"!= recorded {p.mgmt_ns}"
                )
            by_worker.setdefault(p.worker, []).append(p)
        for worker, phases in by_worker.items():
            phases.sort(key=lambda p: p.dispatch_ns)
            for a, b in zip(phases, phases[1:]):
                if b.dispatch_ns < a.end_ns:
                    problems.append(
                        f"worker {worker}: phases overlap "
                        f"({a.task_id} ends {a.end_ns}, {b.task_id} dispatched "
                        f"{b.dispatch_ns})"
                    )
        return problems
