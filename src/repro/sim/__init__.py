"""Discrete-event simulation substrate.

The paper measures a C++ runtime on real hardware; a faithful Python
re-measurement is impossible at fine grain because the GIL serializes workers
and distorts exactly the overheads under study.  Instead, the scheduler runs
*for real* (same queues, same steal order, same counters) while the passage
of time is simulated by this package:

- :mod:`repro.sim.engine` — deterministic event loop with a virtual
  nanosecond clock;
- :mod:`repro.sim.machine` — cores grouped into NUMA domains;
- :mod:`repro.sim.platforms` — the four Table I platforms plus calibration
  constants;
- :mod:`repro.sim.costmodel` — the cost mechanisms the paper names: per-task
  management cost, context switches, steal penalties, cache-capacity effects,
  and memory-bandwidth contention (the source of "wait time").
"""

from repro.sim.calibrate import (
    ContentionAnchor,
    KernelAnchor,
    ScalingAnchor,
    calibrate,
)
from repro.sim.engine import Event, Simulator
from repro.sim.machine import Core, Machine, NumaDomain
from repro.sim.costmodel import CostModel, TaskCosts
from repro.sim.platforms import (
    HASWELL,
    IVY_BRIDGE,
    PLATFORMS,
    SANDY_BRIDGE,
    XEON_PHI,
    PlatformSpec,
    get_platform,
)

__all__ = [
    "ContentionAnchor",
    "KernelAnchor",
    "ScalingAnchor",
    "calibrate",
    "Event",
    "Simulator",
    "Core",
    "Machine",
    "NumaDomain",
    "CostModel",
    "TaskCosts",
    "PlatformSpec",
    "PLATFORMS",
    "SANDY_BRIDGE",
    "IVY_BRIDGE",
    "HASWELL",
    "XEON_PHI",
    "get_platform",
]
