"""Cost model: where virtual time comes from.

The paper attributes the shape of every measured curve to four mechanisms;
each has one term here, so the reproduced shapes *emerge* from the same
causes rather than being curve-fit:

1. **Task-management cost** (fine-grain wall, Fig. 3/4/7) — every HPX-thread
   pays creation, staged→pending conversion and context-switch costs.  With
   millions of tiny tasks these dominate: idle-rate approaches 90 %
   (Sec. IV-A).  Queue contention grows the cost slightly with core count.
2. **Memory-bandwidth contention → wait time** (mid-grain region, Fig. 6/7/8)
   — the stencil streams ~24 bytes/point, so running on many cores saturates
   the node's bandwidth and inflates each task's duration.  The paper
   measures this inflation as *wait time* (Eq. 5); here it appears because
   :meth:`CostModel.compute_ns` scales the memory-bound fraction of a task by
   the oversubscription ratio of the bandwidth.
3. **Cache capacity** — a partition's working set moves from L1 through L2
   and shared LLC to DRAM as it grows, bending the per-point time; this is
   why the single-core curve is not flat in partition size.
4. **Starvation** (coarse-grain wall, Fig. 3/4/9) — too few tasks to feed the
   cores; workers spin polling empty queues.  The polling cost itself is
   here; the *idleness* emerges from the scheduler simulation.

Negative wait time: with very coarse grain the paper observes t_d < t_d1 and
credits caching/housekeeping effects on the single-core reference run
(Sec. II-A).  We model the real component of that: when every core is busy
(the 1-core case by definition), runtime housekeeping (timers, the main
driver thread, OS ticks) interferes with task execution, inflating long tasks
by ``solo_interference_frac``; with idle cores present the interference lands
there instead.

All randomness is a seeded multiplicative jitter so that repeated runs have
realistic COVs (the paper reports <10 % for most configurations) while the
whole experiment stays reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.platforms import CostParams, PlatformSpec


@dataclass(frozen=True)
class TaskCosts:
    """Per-task management costs in virtual nanoseconds (pre-jitter)."""

    create_ns: int
    convert_ns: int
    switch_ns: int

    @property
    def total_ns(self) -> int:
        return self.create_ns + self.convert_ns + self.switch_ns


class CostModel:
    """Maps (work descriptor, machine state) to virtual durations.

    One instance per simulated run; owns a private seeded RNG so concurrent
    runs never share state.
    """

    def __init__(
        self,
        platform: PlatformSpec,
        num_cores: int,
        *,
        seed: int = 0,
        timer_counters_enabled: bool = True,
    ) -> None:
        self.platform = platform
        self.params: CostParams = platform.costs
        self.num_cores = num_cores
        self.timer_counters_enabled = timer_counters_enabled
        self._rng = random.Random(seed ^ 0x5EED_C0DE)
        p = self.params
        # Fixed split of the per-task management budget.
        self._base_costs = TaskCosts(
            create_ns=int(p.task_overhead_ns * p.create_frac),
            convert_ns=int(p.task_overhead_ns * p.convert_frac),
            switch_ns=int(p.task_overhead_ns * p.switch_frac),
        )
        # Bandwidth demand of one core running the stencil flat out, in
        # bytes per nanosecond (== GB/s).
        self._per_core_demand = p.bytes_per_point / p.per_point_ns
        # Run-level perturbation of the management budget: one draw per run
        # (per seed), with a half-width that grows with core count.  This is
        # the systemic OS/allocator noise behind the paper's COV structure;
        # per-task jitter alone would average away over thousands of tasks.
        half_width = min(
            p.run_jitter_cap,
            p.run_jitter_base + p.run_jitter_per_core2 * (num_cores - 1) ** 2,
        )
        self._run_overhead_factor = 1.0 + self._rng.uniform(
            -half_width, half_width
        )

    # -- management costs ---------------------------------------------------

    def task_costs(self, active_cores: int) -> TaskCosts:
        """Management costs with queue-contention scaling.

        ``active_cores`` is the number of workers currently competing for the
        scheduler's shared structures; contention grows the cost convexly
        (quadratically by default), per mechanism 1 above — negligible on a
        few cores, an order of magnitude on a full Haswell node, which is
        what the paper's 90 % fine-grain idle-rates imply.
        """
        p = self.params
        scale = 1.0 + p.contention_coef * max(0, active_cores - 1) ** p.contention_exp
        scale *= self._run_overhead_factor
        if self.timer_counters_enabled:
            timer = p.timer_overhead_ns
        else:
            timer = 0.0
        base = self._base_costs
        return TaskCosts(
            create_ns=int(base.create_ns * scale),
            convert_ns=int(base.convert_ns * scale),
            switch_ns=int(base.switch_ns * scale + timer),
        )

    def poll_cost_ns(self) -> int:
        """Cost of one queue inspection (hit or miss)."""
        return int(self.params.poll_cost_ns)

    def lock_cost_ns(self) -> int:
        """Cost of one shared-resource acquisition (repro.rt critical
        sections); charged to the acquiring subtask so lock traffic moves
        the simulated clock, not just the counters."""
        return int(self.params.lock_overhead_ns)

    def steal_cost_ns(self, *, same_domain: bool) -> int:
        """Extra cost of acquiring work from another worker's queues."""
        if same_domain:
            return int(self.params.steal_cost_ns)
        return int(self.params.numa_steal_cost_ns)

    def idle_backoff_ns(self, consecutive_misses: int) -> int:
        """Exponential backoff for a worker that found no work anywhere.

        HPX spins; simulating every spin iteration would swamp the event
        queue, so the model coalesces spins into a backoff that doubles from
        1 us to a 64 us cap.  The queue-access counters are charged for the
        coalesced polls so Fig. 9/10's access counts stay faithful.
        """
        exp = min(consecutive_misses, 6)
        return 1_000 << exp

    # -- compute durations ----------------------------------------------------

    def cache_factor(self, points: int) -> float:
        """Relative per-point cost for a partition of ``points`` points.

        The stencil touches three arrays (read-previous, read-neighbours,
        write-next), so the per-task working set is ``3 * 8 * points`` bytes.
        """
        p = self.params
        working_set = 3 * 8 * points
        if working_set <= self.platform.l1_bytes:
            return 1.0 - p.l1_bonus
        if working_set <= self.platform.l2_bytes:
            return 1.0
        llc = self.platform.shared_l3_bytes
        if llc is not None and working_set <= llc:
            return 1.0 + p.llc_penalty
        return 1.0 + p.dram_penalty

    def bandwidth_inflation(self, effective_cores: float) -> float:
        """Duration multiplier from bandwidth oversubscription (mechanism 2).

        1.0 while the demanding cores' combined traffic fits in the node's
        sustained bandwidth; beyond that, the memory-bound fraction of the
        task is stretched by the oversubscription ratio.

        ``effective_cores`` may be fractional: a core that spends most of
        its time in task management issues correspondingly less memory
        traffic, so fine-grained (overhead-bound) populations do not
        saturate the memory system — consistent with the paper's fine-grain
        region, where task durations stay near their single-core values
        while idle-rate explodes.
        """
        p = self.params
        demand = self._per_core_demand * max(1.0, effective_cores)
        ratio = demand / p.mem_bandwidth_bytes_per_ns
        if ratio <= 1.0:
            return 1.0
        return 1.0 + p.mem_bound_frac * (ratio - 1.0)

    def compute_ns(
        self,
        points: int,
        *,
        active_cores: int,
        idle_cores: int,
        mgmt_ns: int = 0,
        jitter: bool = True,
    ) -> int:
        """Virtual duration of the stencil kernel over ``points`` points.

        ``active_cores`` — workers concurrently executing tasks (including
        this one); drives bandwidth contention.
        ``idle_cores`` — workers with nothing to do; when zero, runtime
        housekeeping interferes with the task (negative-wait mechanism).
        ``mgmt_ns`` — management time paid around this task; sets the duty
        cycle with which active cores actually demand bandwidth.
        """
        p = self.params
        base = points * p.per_point_ns * self.cache_factor(points)
        duty = base / (base + mgmt_ns) if mgmt_ns > 0 else 1.0
        effective = 1.0 + (max(1, active_cores) - 1) * duty
        base *= self.bandwidth_inflation(effective)
        if idle_cores == 0:
            base *= 1.0 + p.solo_interference_frac
        if jitter and p.jitter_frac > 0.0:
            base *= 1.0 + self._rng.uniform(-p.jitter_frac, p.jitter_frac)
        return max(1, int(base))

    def uniform_work_ns(self, nominal_ns: int, *, jitter: bool = True) -> int:
        """Duration for a fixed-size (non-stencil) work item.

        Used by the micro-benchmarks and the graph application, which specify
        task sizes directly in nanoseconds rather than in grid points.
        """
        base = float(nominal_ns)
        if jitter and self.params.jitter_frac > 0.0:
            base *= 1.0 + self._rng.uniform(
                -self.params.jitter_frac, self.params.jitter_frac
            )
        return max(1, int(base))
