"""Experimental platforms (paper Table I) and their cost-model calibration.

The four nodes of the paper's evaluation — Sandy Bridge, Ivy Bridge, Haswell
and the Xeon Phi (Knights Corner) coprocessor — are described here both by
their published specifications (Table I) and by the calibration constants the
cost model needs.

Calibration anchors taken from the paper's own text rather than invented:

- Haswell: "the average task duration for computing 12,500 grid points using
  one core is 21 microseconds" (Sec. IV-A) -> ~1.7 ns/point; the in-text
  78,125-point partition has a 99 us average duration -> ~1.27 ns/point once
  partly out of L2.  Serial execution of 100M points x 50 steps at that rate
  is ~6.5-8.5 s, matching Fig. 3c's single-core curve.
- Xeon Phi: 12,500 points take 1.1 ms on one core -> ~88 ns/point, matching
  Fig. 3d's much taller curves (5 time steps instead of 50).
- The strong-scaling ceiling on Haswell (28 cores only ~4-5x faster than 1)
  implies the stencil is bandwidth-bound; the per-core demand implied by the
  per-point time (~24 streamed bytes/point) against a ~100 GB/s node gives
  exactly that saturation, which is what the paper measures as *wait time*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class CostParams:
    """Calibration constants consumed by :class:`repro.sim.costmodel.CostModel`.

    All times are nanoseconds of virtual time.
    """

    #: compute time per grid point, single core, data resident in L2
    per_point_ns: float
    #: total thread-management time per task (create + stage->pend + switch)
    task_overhead_ns: float
    #: fraction of task_overhead_ns paid at hpx::async time (creation/staging)
    create_frac: float = 0.35
    #: fraction paid when a staged thread is converted to pending
    convert_frac: float = 0.35
    #: fraction paid as the context switch into the running task
    switch_frac: float = 0.30
    #: cost of one look into a queue (hit or miss)
    poll_cost_ns: float = 40.0
    #: cost of taking a shared-resource lock (the critical-section entry of
    #: the RT scenario pack, repro.rt); an uncontended atomic plus the
    #: bookkeeping HPX spends on a mutex fast path
    lock_overhead_ns: float = 60.0
    #: extra cost of taking work from another worker in the same NUMA domain
    steal_cost_ns: float = 250.0
    #: extra cost of taking work from a remote NUMA domain
    numa_steal_cost_ns: float = 700.0
    #: coefficient of the convex queue/allocator-contention growth of the
    #: per-task management cost: scale = 1 + coef * (active_cores - 1)^exp.
    #: The paper's fine-grain data implies strongly superlinear growth
    #: (~1 us/task on 1 core vs >10 us/task on 28 cores; see Sec. IV-A's
    #: 90% idle-rates), hence the quadratic default.
    contention_coef: float = 0.020
    contention_exp: float = 2.0
    #: sustained node memory bandwidth available to the stencil (bytes/ns)
    mem_bandwidth_bytes_per_ns: float = 95.0
    #: bytes of memory traffic per grid point: three streamed 8 B arrays plus
    #: the read-for-ownership on the written line and imperfect prefetch
    bytes_per_point: float = 38.0
    #: fraction of compute time that is memory-stalled (subject to inflation)
    mem_bound_frac: float = 0.80
    #: relative slowdown of data in shared LLC instead of private L2
    llc_penalty: float = 0.08
    #: relative slowdown of streaming from DRAM instead of cache
    dram_penalty: float = 0.18
    #: relative speedup of data resident in L1
    l1_bonus: float = 0.08
    #: runtime-housekeeping interference on task durations when no idle core
    #: exists to absorb it (the source of negative wait time, Sec. II-A/IV-C)
    solo_interference_frac: float = 0.06
    #: cost of the timestamp pair taken per task for the timing counters;
    #: the paper found this insignificant except for sub-4us tasks on 1 core
    timer_overhead_ns: float = 30.0
    #: multiplicative jitter half-width applied per task (seeded RNG)
    jitter_frac: float = 0.02
    #: run-level jitter of the management-cost budget: base half-width ...
    run_jitter_base: float = 0.02
    #: ... plus a quadratic-in-cores term (OS/allocator noise grows with
    #: concurrency; reproduces the paper's COV structure: "less than 10%
    #: (most less than 3%) for experiments using less than 16 cores",
    #: "up to 21%" at >16 cores and partitions under 32,000 (Sec. IV)
    run_jitter_per_core2: float = 1.6e-4
    #: cap on the run-level jitter half-width
    run_jitter_cap: float = 0.20


@dataclass(frozen=True)
class PlatformSpec:
    """One row of Table I plus topology and calibration data."""

    name: str
    microarchitecture: str
    processor: str
    clock_ghz: float
    turbo_ghz: float | None
    cores: int
    numa_domains: int
    hardware_threads_per_core: int
    hardware_threading_active: bool
    l1_bytes: int
    l2_bytes: int
    shared_l3_bytes: int | None
    ram_bytes: int
    costs: CostParams = field(repr=False, default_factory=lambda: CostParams(1.3, 900.0))
    #: core counts plotted for this platform in Fig. 3
    fig3_core_counts: tuple[int, ...] = ()
    #: time steps used by the paper on this platform (50, or 5 on the Phi)
    paper_time_steps: int = 50

    @property
    def l2_per_core_bytes(self) -> int:
        return self.l2_bytes

    def cache_string(self) -> str:
        """Human-readable cache summary in Table I's format."""
        parts = [
            f"32 KB L1(D,I)",
            f"{self.l2_bytes // KB} KB L2",
        ]
        if self.shared_l3_bytes:
            parts.append(f"{self.shared_l3_bytes // MB} MB shared")
        return ", ".join(parts)


SANDY_BRIDGE = PlatformSpec(
    name="Sandy Bridge (SB)",
    microarchitecture="Sandy Bridge",
    processor="Intel Xeon E5 2690",
    clock_ghz=2.9,
    turbo_ghz=3.8,
    cores=16,
    numa_domains=2,
    hardware_threads_per_core=2,
    hardware_threading_active=False,
    l1_bytes=32 * KB,
    l2_bytes=256 * KB,
    shared_l3_bytes=20 * MB,
    ram_bytes=64 * GB,
    costs=CostParams(
        per_point_ns=1.05,
        task_overhead_ns=800.0,
        mem_bandwidth_bytes_per_ns=90.0,
    ),
    fig3_core_counts=(1, 2, 4, 8, 12, 16),
)

IVY_BRIDGE = PlatformSpec(
    name="Ivy Bridge (IB)",
    microarchitecture="Ivy Bridge",
    processor="Intel Xeon E5-2679 v2",
    clock_ghz=2.3,
    turbo_ghz=3.3,
    cores=20,
    numa_domains=2,
    hardware_threads_per_core=2,
    hardware_threading_active=False,
    l1_bytes=32 * KB,
    l2_bytes=256 * KB,
    shared_l3_bytes=35 * MB,
    ram_bytes=128 * GB,
    costs=CostParams(
        per_point_ns=1.22,
        task_overhead_ns=850.0,
        mem_bandwidth_bytes_per_ns=90.0,
    ),
    fig3_core_counts=(1, 2, 4, 8, 16, 20),
)

HASWELL = PlatformSpec(
    name="Haswell (HW)",
    microarchitecture="Haswell",
    processor="Intel Xeon E5-2695 v3",
    clock_ghz=2.3,
    turbo_ghz=3.3,
    cores=28,
    numa_domains=2,
    hardware_threads_per_core=2,
    hardware_threading_active=False,
    l1_bytes=32 * KB,
    l2_bytes=256 * KB,
    shared_l3_bytes=35 * MB,
    ram_bytes=128 * GB,
    costs=CostParams(
        per_point_ns=1.27,
        task_overhead_ns=900.0,
        mem_bandwidth_bytes_per_ns=95.0,
    ),
    fig3_core_counts=(1, 2, 4, 8, 16, 28),
)

XEON_PHI = PlatformSpec(
    name="Xeon Phi",
    microarchitecture="Xeon Phi (Knights Corner)",
    processor="Intel Xeon Phi",
    clock_ghz=1.2,
    turbo_ghz=None,
    cores=61,
    numa_domains=1,
    hardware_threads_per_core=4,
    hardware_threading_active=True,
    l1_bytes=32 * KB,
    l2_bytes=512 * KB,
    shared_l3_bytes=None,
    ram_bytes=8 * GB,
    costs=CostParams(
        per_point_ns=88.0,
        task_overhead_ns=4500.0,
        poll_cost_ns=150.0,
        steal_cost_ns=900.0,
        numa_steal_cost_ns=900.0,
        # KNC cores extract little bandwidth individually; this is the
        # effective figure for non-prefetched stencil streams.
        mem_bandwidth_bytes_per_ns=7.0,
        contention_coef=0.018,
        contention_exp=2.0,
        timer_overhead_ns=120.0,
    ),
    # The paper runs 1..60 cores (one thread/core; extra threads gave no
    # benefit) and 5 time steps.
    fig3_core_counts=(1, 2, 4, 8, 16, 32, 60),
    paper_time_steps=5,
)

PLATFORMS: dict[str, PlatformSpec] = {
    "sandy-bridge": SANDY_BRIDGE,
    "ivy-bridge": IVY_BRIDGE,
    "haswell": HASWELL,
    "xeon-phi": XEON_PHI,
}

#: Aliases accepted by :func:`get_platform`.
_ALIASES = {
    "sb": "sandy-bridge",
    "ib": "ivy-bridge",
    "hw": "haswell",
    "knc": "xeon-phi",
    "phi": "xeon-phi",
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by key or alias (case-insensitive)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return PLATFORMS[key]
    except KeyError:
        valid = sorted(set(PLATFORMS) | set(_ALIASES))
        raise KeyError(f"unknown platform {name!r}; expected one of {valid}") from None
