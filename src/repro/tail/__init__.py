"""Tail tolerance for gray failures: slow-but-alive localities and links.

Public surface:

- :class:`repro.tail.config.TailConfig` — every knob, frozen;
- :class:`repro.tail.sketch.QuantileSketch` — bounded response-time window;
- :class:`repro.tail.manager.TailManager` — detector + speculation + fencing,
  one per :class:`repro.dist.DistRuntime` when ``DistConfig.tail`` is set.

Hedged parcels live in :mod:`repro.dist.parcel` (the parcelport owns the
retry ledger the hedge rides on); the typed fence error lives with the rest
of the failure hierarchy in :mod:`repro.faults.errors`.
"""

from repro.tail.config import TailConfig
from repro.tail.manager import TailManager
from repro.tail.sketch import QuantileSketch

__all__ = ["TailConfig", "TailManager", "QuantileSketch"]
