"""Configuration of the tail-tolerance layer (detector, hedging, speculation).

One frozen dataclass holds every knob of :mod:`repro.tail`.  Passed as
``DistConfig(tail=TailConfig(...))``; ``None`` (the default) leaves the
distributed runtime bit-identical to the pre-tail code — no sketches, no
hedge timers, no spawn hooks, no extra counters.

The central calibration is ``degraded_factor``: gray failure is *defined*
relative to it.  A locality whose observed heartbeat gaps (or a link whose
ack round-trips) reach that multiple of nominal is flagged ``degraded`` — a
third state between healthy and crashed that arms hedging and speculation
but never feeds :mod:`repro.recovery`'s crash quorum.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TailConfig:
    """Tuning of gray-failure detection, hedged parcels, and speculation."""

    #: a locality (or link) is degraded once its observed response ratio —
    #: heartbeat gap over nominal period, or ack RTT over the healthy
    #: baseline — reaches this multiple; also the ongoing-silence threshold
    degraded_factor: float = 3.0
    #: sketch observations required before a quantile is trusted (below it
    #: the detector stays quiet and no hedge is armed)
    min_samples: int = 4
    #: ring capacity of each response-time sketch (recent-window quantiles)
    sketch_capacity: int = 64
    #: cadence of the detector sweep that re-evaluates ``degraded`` flags
    #: and launches speculative clones
    check_interval_ns: int = 100_000
    #: arm a second wire copy of an unacked parcel after the hedging delay
    hedge: bool = True
    #: the hedging delay derives from this quantile of the link's ack-RTT
    #: sketch...
    hedge_quantile: float = 0.9
    #: ...times this multiplier — deterministic transfer times put the
    #: quantile at the healthy RTT itself, so the multiplier is what keeps
    #: healthy links from hedging every send
    hedge_multiplier: float = 2.0
    #: floor of the hedging delay (never hedge faster than this)
    hedge_min_delay_ns: int = 20_000
    #: clone not-yet-ready tasks of a degraded locality onto a healthy one
    speculate: bool = True
    #: work-amplification budget: clones may not exceed this fraction of
    #: the tasks completed so far (floored at one clone)
    max_speculation_frac: float = 0.5
    #: epoch-fence declared localities so their stale in-flight parcels are
    #: rejected on arrival instead of committing results
    fencing: bool = True

    def __post_init__(self) -> None:
        if self.degraded_factor < 1.0:
            raise ValueError("degraded_factor must be >= 1 (a degradation)")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.sketch_capacity < 2:
            raise ValueError("sketch_capacity must be >= 2")
        if self.check_interval_ns <= 0:
            raise ValueError("check_interval_ns must be positive")
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise ValueError("hedge_quantile must be in (0, 1]")
        if self.hedge_multiplier < 1.0:
            raise ValueError("hedge_multiplier must be >= 1")
        if self.hedge_min_delay_ns < 0:
            raise ValueError("hedge_min_delay_ns must be >= 0")
        if self.max_speculation_frac <= 0.0:
            raise ValueError("max_speculation_frac must be positive")
