"""A bounded response-time sketch with nearest-rank quantiles.

The gray-failure detector keeps one :class:`QuantileSketch` per monitored
locality (heartbeat gap ratios) and per link (ack round-trips).  A plain
ring buffer is the right structure here: the detector wants *recent*
behaviour — a locality that was slow ten thousand observations ago but is
healthy now should read healthy — and the windows are small enough
(:attr:`repro.tail.config.TailConfig.sketch_capacity`, default 64) that
sorting a copy on each quantile query is cheaper than maintaining any
clever summary.  Everything is deterministic: no sampling, no hashing.
"""

from __future__ import annotations


class QuantileSketch:
    """Last-``capacity`` observations, with nearest-rank quantile queries."""

    __slots__ = ("_ring", "_capacity", "_next", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._ring: list[float] = []
        self._next = 0
        self._count = 0

    def add(self, value: float) -> None:
        """Record one observation, evicting the oldest when full."""
        if len(self._ring) < self._capacity:
            self._ring.append(value)
        else:
            self._ring[self._next] = value
            self._next = (self._next + 1) % self._capacity
        self._count += 1

    def __len__(self) -> int:
        """Observations currently in the window (not lifetime count)."""
        return len(self._ring)

    @property
    def total_observations(self) -> int:
        """Lifetime observation count, evicted ones included."""
        return self._count

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-quantile of the current window.

        Raises on an empty sketch — callers gate on ``len(sketch)`` against
        their ``min_samples`` threshold before trusting any quantile.
        """
        if not self._ring:
            raise ValueError("quantile of an empty sketch")
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        ordered = sorted(self._ring)
        rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
        return ordered[rank]

    def median(self) -> float:
        return self.quantile(0.5)
